//! Binary decision trees on numeric features.
//!
//! The tree grows CART-style with information-gain splitting. For speed on
//! the attack's large sample sets, candidate thresholds are drawn from
//! per-feature quantile bins computed once per tree (histogram splitting);
//! with the default 256 bins this is statistically indistinguishable from
//! exhaustive threshold scanning on the attack's feature distributions.
//!
//! Every node stores the positive/negative counts of the training samples
//! that reached it. Leaf counts implement the paper's Eq. (1): the
//! probability a sample is positive is `P / (P + N)` of its leaf.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::binned::{BinnedDataset, HistPool};
use crate::data::Dataset;
use crate::error::TrainError;

/// Sentinel feature id marking a leaf node.
const LEAF: i32 = -1;

/// Which split-finding implementation [`Tree::fit`] runs.
///
/// Both backends grow *bit-identical* trees: the binned kernel reuses the
/// same quantile thresholds, assigns every sample the same bin, accumulates
/// counts in the same order and evaluates the gain expression with the same
/// operand order as the reference scan — it only replaces the per-node
/// binary search with a direct `u16` bin-code lookup and derives the larger
/// sibling's histogram by parent-minus-smaller-child subtraction. The
/// reference path is the seed implementation kept verbatim as the oracle
/// for the parity suites, mirroring the scoring side's
/// `Kernel::{Compiled, Reference}` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TreeBackend {
    /// Histogram kernel over pre-binned `u16` codes (default).
    #[default]
    Binned,
    /// The original per-node binary-search scan, kept as the oracle.
    Reference,
}

/// Error for unrecognized [`TreeBackend`] names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTreeBackendError(String);

impl std::fmt::Display for ParseTreeBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown tree backend `{}` (expected `binned` or `reference`)",
            self.0
        )
    }
}

impl std::error::Error for ParseTreeBackendError {}

impl std::str::FromStr for TreeBackend {
    type Err = ParseTreeBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "binned" => Ok(TreeBackend::Binned),
            "reference" | "ref" => Ok(TreeBackend::Reference),
            other => Err(ParseTreeBackendError(other.to_string())),
        }
    }
}

impl std::fmt::Display for TreeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TreeBackend::Binned => "binned",
            TreeBackend::Reference => "reference",
        })
    }
}

/// Growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node (Weka `minNum`).
    pub min_samples_split: usize,
    /// If set, consider only this many randomly chosen features per node
    /// (RandomTree behaviour); `None` considers all features.
    pub feature_subset: Option<usize>,
    /// Number of quantile bins per feature for candidate thresholds.
    pub bins: usize,
    /// Split-finding implementation; both grow bit-identical trees.
    pub backend: TreeBackend,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 60,
            min_samples_split: 2,
            feature_subset: None,
            bins: 256,
            backend: TreeBackend::default(),
        }
    }
}

/// Per-tree candidate-feature scratch. The full `0..m` order is built once
/// per tree; nodes that need a random subset (RandomTree) shuffle a copy,
/// nodes that consider every feature borrow the stable order directly —
/// no per-node allocation either way.
struct FeatureOrder {
    full: Vec<usize>,
    shuffled: Vec<usize>,
}

impl FeatureOrder {
    fn new(m: usize) -> Self {
        FeatureOrder {
            full: (0..m).collect(),
            shuffled: (0..m).collect(),
        }
    }

    /// Candidate features for one node. Consumes RNG exactly like the seed
    /// implementation: a shuffle of a fresh `(0..m)` vector happens if and
    /// only if `feature_subset` is `Some`.
    fn candidates<R: Rng>(&mut self, feature_subset: Option<usize>, rng: &mut R) -> &[usize] {
        match feature_subset {
            Some(k) => {
                let m = self.full.len();
                self.shuffled.copy_from_slice(&self.full);
                self.shuffled.shuffle(rng);
                &self.shuffled[..k.clamp(1, m)]
            }
            None => &self.full,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Node {
    /// Splitting feature, or [`LEAF`].
    pub(crate) feature: i32,
    /// Split threshold: `x[feature] <= threshold` goes left.
    pub(crate) threshold: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    /// Positive training samples that reached this node.
    pub(crate) pos: u32,
    /// Negative training samples that reached this node.
    pub(crate) neg: u32,
}

impl Node {
    fn leaf(pos: u32, neg: u32) -> Self {
        Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            pos,
            neg,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.feature == LEAF
    }

    /// The leaf probability of Eq. (1): `P / (P + N)`, or `0.5` for a leaf
    /// no training sample reached. Only meaningful on leaves; the compiled
    /// kernel bakes this value into its node table so the division happens
    /// once at compile time instead of once per scored pair.
    pub(crate) fn leaf_proba(&self) -> f64 {
        let total = self.pos + self.neg;
        if total == 0 {
            0.5
        } else {
            f64::from(self.pos) / f64::from(total)
        }
    }

    fn majority(&self) -> bool {
        self.pos >= self.neg
    }
}

/// A trained decision tree.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sm_ml::data::Dataset;
/// use sm_ml::tree::{Tree, TreeParams};
///
/// let mut ds = Dataset::new(1);
/// for i in 0..100 {
///     ds.push(&[i as f64], i >= 50)?;
/// }
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let tree = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng)?;
/// assert!(tree.predict(&[99.0]));
/// assert!(!tree.predict(&[3.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl Tree {
    /// Fits a tree on the samples selected by `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] if `idx` is empty. A
    /// single-class index set yields a single-leaf tree rather than an
    /// error (bootstrap resamples can legitimately be one-class).
    pub fn fit<R: Rng>(
        data: &Dataset,
        idx: &[u32],
        params: TreeParams,
        rng: &mut R,
    ) -> Result<Self, TrainError> {
        if idx.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let thresholds = quantile_thresholds(data, idx, params.bins);
        let mut tree = Tree {
            nodes: Vec::new(),
            num_features: data.num_features(),
        };
        let mut scratch = idx.to_vec();
        let mut order = FeatureOrder::new(data.num_features());
        match params.backend {
            TreeBackend::Reference => {
                tree.build(data, &mut scratch, &thresholds, &params, 0, rng, &mut order);
            }
            TreeBackend::Binned => match BinnedDataset::encode(data, thresholds) {
                Ok(binned) => {
                    let mut pool = HistPool::new(binned.hist_len());
                    // REPTree-style all-feature nodes thread a full histogram
                    // down the recursion so each larger sibling comes from a
                    // subtraction; the RandomTree subset path accumulates only
                    // the node's candidate features instead.
                    let root_hist = if params.feature_subset.is_none() {
                        let mut h = pool.acquire();
                        binned.accumulate(data.labels(), &scratch, &mut h);
                        Some(h)
                    } else {
                        None
                    };
                    tree.build_binned(
                        data,
                        &binned,
                        &mut scratch,
                        &params,
                        0,
                        rng,
                        &mut order,
                        &mut pool,
                        root_hist,
                    );
                }
                // More distinct thresholds than a u16 code can address:
                // fall back to the (bit-identical) reference scan.
                Err(thresholds) => {
                    tree.build(data, &mut scratch, &thresholds, &params, 0, rng, &mut order);
                }
            },
        }
        Ok(tree)
    }

    #[allow(clippy::too_many_arguments)]
    fn build<R: Rng>(
        &mut self,
        data: &Dataset,
        idx: &mut [u32],
        thresholds: &[Vec<f64>],
        params: &TreeParams,
        depth: usize,
        rng: &mut R,
        order: &mut FeatureOrder,
    ) -> u32 {
        let (pos, neg) = count_labels(data, idx);
        let me = self.nodes.len() as u32;
        self.nodes.push(Node::leaf(pos, neg));
        if pos == 0 || neg == 0 || idx.len() < params.min_samples_split || depth >= params.max_depth
        {
            return me;
        }

        // Candidate features: all, or a random subset (RandomTree).
        let best = {
            let candidates = order.candidates(params.feature_subset, rng);
            best_split(data, idx, thresholds, candidates, pos, neg)
        };
        let Some((feature, threshold, gain)) = best else {
            return me;
        };
        if gain <= 1e-12 {
            return me;
        }

        // In-place partition: `x[feature] <= threshold` to the front.
        let cut = partition(idx, |&i| data.feature(i as usize, feature) <= threshold);
        if cut == 0 || cut == idx.len() {
            return me; // numeric degeneracy: no progress
        }
        let (left_idx, right_idx) = idx.split_at_mut(cut);
        let left = self.build(data, left_idx, thresholds, params, depth + 1, rng, order);
        let right = self.build(data, right_idx, thresholds, params, depth + 1, rng, order);
        let node = &mut self.nodes[me as usize];
        node.feature = feature as i32;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        me
    }

    /// Histogram-kernel twin of [`Tree::build`]. Stop conditions, candidate
    /// order, gain operands and the raw-`f64` partition predicate are all
    /// identical to the reference path, so the grown tree is bit-identical.
    ///
    /// `hist` is the node's full (pos, neg)-per-bin histogram on the
    /// all-feature path, `None` on the random-subset path. Buffers are
    /// recycled through `pool`, so at most `O(depth)` histograms are live.
    #[allow(clippy::too_many_arguments)]
    fn build_binned<R: Rng>(
        &mut self,
        data: &Dataset,
        binned: &BinnedDataset,
        idx: &mut [u32],
        params: &TreeParams,
        depth: usize,
        rng: &mut R,
        order: &mut FeatureOrder,
        pool: &mut HistPool,
        hist: Option<Vec<u32>>,
    ) -> u32 {
        let (pos, neg) = count_labels(data, idx);
        let me = self.nodes.len() as u32;
        self.nodes.push(Node::leaf(pos, neg));
        if pos == 0 || neg == 0 || idx.len() < params.min_samples_split || depth >= params.max_depth
        {
            release_node_hist(pool, binned, idx, hist);
            return me;
        }

        // Find the best split from histograms: either the one threaded down
        // from the parent (all-feature path) or a fresh accumulation of just
        // this node's random candidates (subset path).
        let (best, hist) = match hist {
            Some(h) => {
                let candidates = order.candidates(params.feature_subset, rng);
                let best = best_split_binned(binned, &h, candidates, pos, neg);
                (best, Some(h))
            }
            None => {
                let candidates = order.candidates(params.feature_subset, rng);
                let mut h = pool.acquire();
                for &j in candidates {
                    binned.accumulate_feature(j, data.labels(), idx, &mut h);
                }
                let best = best_split_binned(binned, &h, candidates, pos, neg);
                for &j in candidates {
                    binned.zero_feature(j, &mut h);
                }
                pool.release_zeroed(h);
                (best, None)
            }
        };
        let Some((feature, threshold, gain)) = best else {
            release_node_hist(pool, binned, idx, hist);
            return me;
        };
        if gain <= 1e-12 {
            release_node_hist(pool, binned, idx, hist);
            return me;
        }

        // In-place partition over the *raw* feature values — same predicate
        // as the reference path, so even NaN rows land on the same side.
        let cut = partition(idx, |&i| data.feature(i as usize, feature) <= threshold);
        if cut == 0 || cut == idx.len() {
            release_node_hist(pool, binned, idx, hist);
            return me; // numeric degeneracy: no progress
        }
        let (left_idx, right_idx) = idx.split_at_mut(cut);

        // Two exact ways to derive the child histograms; pick the cheaper.
        // Sibling subtraction accumulates only the smaller child and derives
        // the larger as parent − smaller (O(|small|·m) plus an O(hist_len)
        // subtraction). For small nodes it is cheaper to accumulate both
        // children fresh and sparse-zero the parent for reuse (O(|node|·m)
        // each way). Counts are exact u32 sums under either derivation, so
        // the histograms — and therefore the tree — are identical.
        let (left_hist, right_hist) = match hist {
            Some(mut parent) => {
                let small_is_left = left_idx.len() <= right_idx.len();
                let (small, large): (&[u32], &[u32]) = if small_is_left {
                    (left_idx, right_idx)
                } else {
                    (right_idx, left_idx)
                };
                let m = binned.num_features();
                let n_node = small.len() + large.len();
                let mut small_hist = pool.acquire();
                binned.accumulate(data.labels(), small, &mut small_hist);
                let large_hist = if 2 * n_node * m < small.len() * m + parent.len() {
                    let mut fresh = pool.acquire();
                    binned.accumulate(data.labels(), large, &mut fresh);
                    binned.zero_samples(small, &mut parent);
                    binned.zero_samples(large, &mut parent);
                    pool.release_zeroed(parent);
                    fresh
                } else {
                    subtract_hist(&mut parent, &small_hist);
                    parent
                };
                if small_is_left {
                    (Some(small_hist), Some(large_hist))
                } else {
                    (Some(large_hist), Some(small_hist))
                }
            }
            None => (None, None),
        };
        let left = self.build_binned(
            data,
            binned,
            left_idx,
            params,
            depth + 1,
            rng,
            order,
            pool,
            left_hist,
        );
        let right = self.build_binned(
            data,
            binned,
            right_idx,
            params,
            depth + 1,
            rng,
            order,
            pool,
            right_hist,
        );
        let node = &mut self.nodes[me as usize];
        node.feature = feature as i32;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        me
    }

    /// Index of the leaf `x` routes to.
    fn leaf_of(&self, x: &[f64]) -> usize {
        let mut at = 0usize;
        loop {
            let n = &self.nodes[at];
            if n.is_leaf() {
                return at;
            }
            at = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Probability that `x` is positive: `P / (P + N)` of its leaf
    /// (Eq. (1) of the paper); `0.5` for a leaf no training sample reached.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the tree was trained on.
    pub fn proba(&self, x: &[f64]) -> f64 {
        self.nodes[self.leaf_of(x)].leaf_proba()
    }

    /// Hard classification at the default 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.proba(x) >= 0.5
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum root-to-leaf depth.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            let n = &nodes[at];
            if n.is_leaf() {
                0
            } else {
                1 + walk(nodes, n.left as usize).max(walk(nodes, n.right as usize))
            }
        }
        walk(&self.nodes, 0)
    }

    /// Features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Raw node table, for the compiled kernel's flattening pass.
    pub(crate) fn raw_nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reduced-error pruning against a held-out index set: any subtree whose
    /// majority-label error on the held-out samples is no better than the
    /// error of a single leaf is collapsed.
    pub(crate) fn prune_with(&mut self, data: &Dataset, held: &[u32]) {
        let mut scratch = held.to_vec();
        self.prune_node(data, 0, &mut scratch);
        self.compact();
    }

    /// Returns the held-out error of the (possibly pruned) subtree at `at`.
    fn prune_node(&mut self, data: &Dataset, at: usize, held: &mut [u32]) -> usize {
        let node = self.nodes[at];
        let leaf_err = held
            .iter()
            .filter(|&&i| data.label(i as usize) != node.majority())
            .count();
        if node.is_leaf() {
            return leaf_err;
        }
        let feature = node.feature as usize;
        let threshold = node.threshold;
        let cut = partition(held, |&i| data.feature(i as usize, feature) <= threshold);
        let (lh, rh) = held.split_at_mut(cut);
        let subtree_err = self.prune_node(data, node.left as usize, lh)
            + self.prune_node(data, node.right as usize, rh);
        if leaf_err <= subtree_err {
            // Collapse: children become unreachable and are swept later.
            let n = &mut self.nodes[at];
            n.feature = LEAF;
            n.left = 0;
            n.right = 0;
            leaf_err
        } else {
            subtree_err
        }
    }

    /// Re-derives every node's counts from the given samples (the paper's
    /// Eq. (1) counts come from the *full* training set after pruning).
    pub(crate) fn backfit(&mut self, data: &Dataset, idx: &[u32]) {
        for n in &mut self.nodes {
            n.pos = 0;
            n.neg = 0;
        }
        for &i in idx {
            let x = data.row(i as usize);
            let label = data.label(i as usize);
            let mut at = 0usize;
            loop {
                let n = &mut self.nodes[at];
                if label {
                    n.pos += 1;
                } else {
                    n.neg += 1;
                }
                if n.is_leaf() {
                    break;
                }
                at = if x[n.feature as usize] <= n.threshold {
                    n.left as usize
                } else {
                    n.right as usize
                };
            }
        }
    }

    /// Drops nodes unreachable after pruning and renumbers children.
    fn compact(&mut self) {
        let mut keep = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(at) = stack.pop() {
            keep[at] = true;
            let n = &self.nodes[at];
            if !n.is_leaf() {
                stack.push(n.left as usize);
                stack.push(n.right as usize);
            }
        }
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut out = Vec::with_capacity(keep.iter().filter(|k| **k).count());
        for (i, node) in self.nodes.iter().enumerate() {
            if keep[i] {
                remap[i] = out.len() as u32;
                out.push(*node);
            }
        }
        for n in &mut out {
            if !n.is_leaf() {
                n.left = remap[n.left as usize];
                n.right = remap[n.right as usize];
            }
        }
        self.nodes = out;
    }
}

/// Stable-enough in-place partition: elements satisfying `pred` move to the
/// front; returns the number that satisfy it.
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0usize;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

fn count_labels(data: &Dataset, idx: &[u32]) -> (u32, u32) {
    let mut pos = 0u32;
    let mut neg = 0u32;
    for &i in idx {
        if data.label(i as usize) {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    (pos, neg)
}

/// Binary entropy of a (pos, neg) count pair, in nats.
fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 || pos == 0.0 || neg == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    let q = neg / n;
    -(p * p.ln() + q * q.ln())
}

/// Per-feature candidate thresholds: midpoints between adjacent distinct
/// quantile values of the training samples.
///
/// Values sort by [`f64::total_cmp`], which is a total order even in the
/// presence of NaN (NaNs collect at the end instead of silently misordering
/// the column the way `partial_cmp(..).unwrap_or(Equal)` did). `-0.0` sorts
/// before `0.0` under `total_cmp`, but the `dedup()` right after compares
/// with `==` (where `-0.0 == 0.0`), so exactly one representative of the
/// pair survives — and since any midpoint computed from either compares
/// identically against every sample, the chosen representative does not
/// affect the grown tree.
pub(crate) fn quantile_thresholds(data: &Dataset, idx: &[u32], bins: usize) -> Vec<Vec<f64>> {
    let m = data.num_features();
    let mut out = Vec::with_capacity(m);
    let mut vals: Vec<f64> = Vec::with_capacity(idx.len());
    for j in 0..m {
        vals.clear();
        vals.extend(idx.iter().map(|&i| data.feature(i as usize, j)));
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        let mut ts = Vec::new();
        if vals.len() > 1 {
            if vals.len() <= bins {
                for w in vals.windows(2) {
                    ts.push((w[0] + w[1]) / 2.0);
                }
            } else {
                for k in 1..bins {
                    let q0 = vals[(k - 1) * (vals.len() - 1) / (bins - 1)];
                    let q1 = vals[k * (vals.len() - 1) / (bins - 1)];
                    if q1 > q0 {
                        ts.push((q0 + q1) / 2.0);
                    }
                }
                ts.dedup();
            }
        }
        out.push(ts);
    }
    out
}

/// Best (feature, threshold, information gain) over the candidate features.
fn best_split(
    data: &Dataset,
    idx: &[u32],
    thresholds: &[Vec<f64>],
    candidates: &[usize],
    pos: u32,
    neg: u32,
) -> Option<(usize, f64, f64)> {
    let parent = entropy(f64::from(pos), f64::from(neg));
    let n = idx.len() as f64;
    let mut best: Option<(usize, f64, f64)> = None;
    // Histogram scratch: (pos, neg) per bin.
    let mut hist: Vec<(u32, u32)> = Vec::new();
    for &j in candidates {
        let ts = &thresholds[j];
        if ts.is_empty() {
            continue;
        }
        hist.clear();
        hist.resize(ts.len() + 1, (0, 0));
        for &i in idx {
            let v = data.feature(i as usize, j);
            let bin = ts.partition_point(|t| *t < v);
            let e = &mut hist[bin];
            if data.label(i as usize) {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let mut lp = 0u32;
        let mut ln = 0u32;
        for (k, &(hp, hn)) in hist[..ts.len()].iter().enumerate() {
            lp += hp;
            ln += hn;
            let l = f64::from(lp + ln);
            let r = n - l;
            if l == 0.0 || r == 0.0 {
                continue;
            }
            let gain = parent
                - (l / n) * entropy(f64::from(lp), f64::from(ln))
                - (r / n) * entropy(f64::from(pos - lp), f64::from(neg - ln));
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((j, ts[k], gain));
            }
        }
    }
    best
}

/// [`best_split`]'s gain scan over a pre-accumulated flat histogram. The
/// candidate iteration order, the left/right accumulators and every operand
/// of the gain expression mirror the reference loop exactly — only the
/// per-sample binning (already folded into `hist`) differs.
fn best_split_binned(
    binned: &BinnedDataset,
    hist: &[u32],
    candidates: &[usize],
    pos: u32,
    neg: u32,
) -> Option<(usize, f64, f64)> {
    let parent = entropy(f64::from(pos), f64::from(neg));
    let n = f64::from(pos + neg);
    let mut best: Option<(usize, f64, f64)> = None;
    for &j in candidates {
        let ts = binned.thresholds(j);
        if ts.is_empty() {
            continue;
        }
        let h = binned.feature_hist(j, hist);
        let mut lp = 0u32;
        let mut ln = 0u32;
        for (k, t) in ts.iter().enumerate() {
            let (hp, hn) = (h[2 * k], h[2 * k + 1]);
            // An empty bin leaves (lp, ln) unchanged, so its gain is
            // bit-identical to the previous bin's — which either already
            // updated `best` or failed the strict `>` — and a leading empty
            // bin has `l == 0`. Skipping it can never change the winner,
            // and at deep nodes most bins are empty.
            if hp == 0 && hn == 0 {
                continue;
            }
            lp += hp;
            ln += hn;
            let l = f64::from(lp + ln);
            let r = n - l;
            if l == 0.0 || r == 0.0 {
                continue;
            }
            let gain = parent
                - (l / n) * entropy(f64::from(lp), f64::from(ln))
                - (r / n) * entropy(f64::from(pos - lp), f64::from(neg - ln));
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((j, *t, gain));
            }
        }
    }
    best
}

/// Returns a node's histogram to the pool, zeroing it the cheaper way:
/// sparse (only the slots this node's samples can have touched) when the
/// node is small, wholesale `fill(0)` otherwise.
fn release_node_hist(
    pool: &mut HistPool,
    binned: &BinnedDataset,
    idx: &[u32],
    hist: Option<Vec<u32>>,
) {
    if let Some(mut h) = hist {
        if 2 * idx.len() * binned.num_features() < h.len() {
            binned.zero_samples(idx, &mut h);
            pool.release_zeroed(h);
        } else {
            pool.release(h);
        }
    }
}

/// In-place `parent -= child`, element-wise. Counts are exact `u32`s, so the
/// remainder is exactly the other sibling's histogram.
pub(crate) fn subtract_hist(parent: &mut [u32], child: &[u32]) {
    debug_assert_eq!(parent.len(), child.len());
    for (p, &c) in parent.iter_mut().zip(child) {
        *p -= c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    /// XOR-ish dataset: not linearly separable, trivially tree-separable.
    fn xor_data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..n {
            let a: f64 = r.gen_range(0.0..1.0);
            let b: f64 = r.gen_range(0.0..1.0);
            ds.push(&[a, b], (a > 0.5) != (b > 0.5))
                .expect("2 features");
        }
        ds
    }

    #[test]
    fn learns_xor_exactly() {
        let ds = xor_data(400);
        let t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng()).expect("fit");
        assert!(t.predict(&[0.9, 0.1]));
        assert!(t.predict(&[0.1, 0.9]));
        assert!(!t.predict(&[0.9, 0.9]));
        assert!(!t.predict(&[0.1, 0.1]));
    }

    #[test]
    fn single_class_index_set_yields_one_leaf() {
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(&[i as f64], true).expect("ok");
        }
        let t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng()).expect("fit");
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.proba(&[5.0]), 1.0);
    }

    #[test]
    fn empty_index_set_is_an_error() {
        let ds = xor_data(10);
        assert_eq!(
            Tree::fit(&ds, &[], TreeParams::default(), &mut rng()).unwrap_err(),
            TrainError::EmptyDataset
        );
    }

    #[test]
    fn max_depth_caps_tree() {
        let ds = xor_data(400);
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        assert!(t.depth() <= 1);
        assert!(t.num_nodes() <= 3);
    }

    #[test]
    fn proba_matches_leaf_purity() {
        // 80/20 mix below the split, pure above.
        let mut ds = Dataset::new(1);
        for i in 0..100 {
            ds.push(&[0.0], i < 80).expect("ok");
        }
        for _ in 0..100 {
            ds.push(&[10.0], false).expect("ok");
        }
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        assert!((t.proba(&[0.0]) - 0.8).abs() < 1e-9);
        assert!(t.proba(&[10.0]) < 1e-9);
    }

    #[test]
    fn pruning_shrinks_noisy_trees_without_hurting_signal() {
        // Signal in feature 0; feature 1 is pure noise the unpruned tree
        // will overfit to.
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..600 {
            let a: f64 = r.gen_range(0.0..1.0);
            let noise: f64 = r.gen_range(0.0..1.0);
            let label = if r.gen_bool(0.15) { a <= 0.5 } else { a > 0.5 };
            ds.push(&[a, noise], label).expect("ok");
        }
        let mut r2 = rng();
        let (grow, held) = ds.split_indices(2.0 / 3.0, &mut r2);
        let mut t = Tree::fit(&ds, &grow, TreeParams::default(), &mut r2).expect("fit");
        let before = t.num_nodes();
        t.prune_with(&ds, &held);
        t.backfit(&ds, &ds.all_indices());
        assert!(t.num_nodes() < before, "pruning should remove noise splits");
        // Signal preserved.
        assert!(t.predict(&[0.9, 0.5]));
        assert!(!t.predict(&[0.1, 0.5]));
    }

    #[test]
    fn backfit_counts_sum_to_dataset() {
        let ds = xor_data(200);
        let mut r = rng();
        let mut t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut r).expect("fit");
        t.backfit(&ds, &ds.all_indices());
        let (leaf_pos, leaf_neg) = t
            .nodes
            .iter()
            .filter(|n| n.is_leaf())
            .fold((0u32, 0u32), |(p, q), n| (p + n.pos, q + n.neg));
        assert_eq!((leaf_pos + leaf_neg) as usize, ds.len());
        assert_eq!(leaf_pos as usize, ds.num_positive());
    }

    #[test]
    fn feature_subset_still_learns() {
        let ds = xor_data(600);
        let params = TreeParams {
            feature_subset: Some(1),
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        // With one random feature per node the tree is bigger but still
        // separates XOR reasonably.
        let acc = (0..ds.len())
            .filter(|&i| t.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.9, "subset tree accuracy {acc}");
    }

    #[test]
    fn compact_preserves_predictions() {
        let ds = xor_data(300);
        let mut r = rng();
        let (grow, held) = ds.split_indices(2.0 / 3.0, &mut r);
        let mut t = Tree::fit(&ds, &grow, TreeParams::default(), &mut r).expect("fit");
        let mut pruned = t.clone();
        pruned.prune_node(&ds, 0, &mut held.clone());
        t.prune_with(&ds, &held); // prune + compact
        for i in 0..ds.len() {
            assert_eq!(t.predict(ds.row(i)), pruned.predict(ds.row(i)));
        }
        assert!(t.num_nodes() <= pruned.num_nodes());
    }

    /// Fit the same data/params/seed under both backends.
    fn fit_both(ds: &Dataset, params: TreeParams) -> (Tree, Tree) {
        let reference = Tree::fit(
            ds,
            &ds.all_indices(),
            TreeParams {
                backend: TreeBackend::Reference,
                ..params
            },
            &mut rng(),
        )
        .expect("reference fit");
        let binned = Tree::fit(
            ds,
            &ds.all_indices(),
            TreeParams {
                backend: TreeBackend::Binned,
                ..params
            },
            &mut rng(),
        )
        .expect("binned fit");
        (reference, binned)
    }

    #[test]
    fn binned_backend_is_bit_identical_on_xor() {
        let ds = xor_data(400);
        let (reference, binned) = fit_both(&ds, TreeParams::default());
        assert_eq!(reference, binned);
    }

    #[test]
    fn binned_backend_is_bit_identical_with_feature_subset() {
        let ds = xor_data(400);
        let params = TreeParams {
            feature_subset: Some(1),
            ..TreeParams::default()
        };
        let (reference, binned) = fit_both(&ds, params);
        assert_eq!(reference, binned);
    }

    /// Regression for the NaN-hostile `partial_cmp(..).unwrap_or(Equal)`
    /// sort: a NaN-bearing column must not poison threshold selection, and
    /// both backends must still agree bit-for-bit.
    #[test]
    fn nan_feature_column_is_handled_consistently() {
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for i in 0..200 {
            let a: f64 = r.gen_range(0.0..1.0);
            let b = if i % 7 == 0 { f64::NAN } else { a * 2.0 };
            ds.push(&[a, b], a > 0.5).expect("2 features");
        }
        let ts = quantile_thresholds(&ds, &ds.all_indices(), 256);
        // total_cmp puts NaNs at the tail; the finite prefix of each
        // threshold list must be strictly increasing.
        for col in &ts {
            let finite: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
            assert!(finite.windows(2).all(|w| w[0] < w[1]), "misordered {col:?}");
        }
        let (reference, binned) = fit_both(&ds, TreeParams::default());
        assert_eq!(reference, binned);
        // The clean feature fully determines the label, so NaNs in the
        // noisy twin column must not break learning.
        assert!(reference.predict(&[0.9, f64::NAN]));
        assert!(!reference.predict(&[0.1, f64::NAN]));
    }

    /// -0.0 and 0.0 compare equal, so `dedup()` keeps one representative
    /// and any midpoint built from it splits samples identically.
    #[test]
    fn negative_zero_dedups_to_one_threshold_value() {
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(&[if i % 2 == 0 { -0.0 } else { 0.0 }], i < 5)
                .expect("1 feature");
        }
        let ts = quantile_thresholds(&ds, &ds.all_indices(), 256);
        assert!(ts[0].is_empty(), "single distinct value → no thresholds");
    }

    #[test]
    fn partition_is_correct() {
        let mut xs = vec![5, 1, 4, 2, 3];
        let cut = partition(&mut xs, |&x| x <= 2);
        assert_eq!(cut, 2);
        let (l, r) = xs.split_at(cut);
        assert!(l.iter().all(|&x| x <= 2));
        assert!(r.iter().all(|&x| x > 2));
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(0.0, 0.0), 0.0);
        assert_eq!(entropy(10.0, 0.0), 0.0);
        assert!((entropy(5.0, 5.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
