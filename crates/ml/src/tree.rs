//! Binary decision trees on numeric features.
//!
//! The tree grows CART-style with information-gain splitting. For speed on
//! the attack's large sample sets, candidate thresholds are drawn from
//! per-feature quantile bins computed once per tree (histogram splitting);
//! with the default 256 bins this is statistically indistinguishable from
//! exhaustive threshold scanning on the attack's feature distributions.
//!
//! Every node stores the positive/negative counts of the training samples
//! that reached it. Leaf counts implement the paper's Eq. (1): the
//! probability a sample is positive is `P / (P + N)` of its leaf.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;

/// Sentinel feature id marking a leaf node.
const LEAF: i32 = -1;

/// Growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node (Weka `minNum`).
    pub min_samples_split: usize,
    /// If set, consider only this many randomly chosen features per node
    /// (RandomTree behaviour); `None` considers all features.
    pub feature_subset: Option<usize>,
    /// Number of quantile bins per feature for candidate thresholds.
    pub bins: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 60,
            min_samples_split: 2,
            feature_subset: None,
            bins: 256,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Node {
    /// Splitting feature, or [`LEAF`].
    pub(crate) feature: i32,
    /// Split threshold: `x[feature] <= threshold` goes left.
    pub(crate) threshold: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    /// Positive training samples that reached this node.
    pub(crate) pos: u32,
    /// Negative training samples that reached this node.
    pub(crate) neg: u32,
}

impl Node {
    fn leaf(pos: u32, neg: u32) -> Self {
        Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            pos,
            neg,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.feature == LEAF
    }

    /// The leaf probability of Eq. (1): `P / (P + N)`, or `0.5` for a leaf
    /// no training sample reached. Only meaningful on leaves; the compiled
    /// kernel bakes this value into its node table so the division happens
    /// once at compile time instead of once per scored pair.
    pub(crate) fn leaf_proba(&self) -> f64 {
        let total = self.pos + self.neg;
        if total == 0 {
            0.5
        } else {
            f64::from(self.pos) / f64::from(total)
        }
    }

    fn majority(&self) -> bool {
        self.pos >= self.neg
    }
}

/// A trained decision tree.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sm_ml::data::Dataset;
/// use sm_ml::tree::{Tree, TreeParams};
///
/// let mut ds = Dataset::new(1);
/// for i in 0..100 {
///     ds.push(&[i as f64], i >= 50)?;
/// }
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let tree = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng)?;
/// assert!(tree.predict(&[99.0]));
/// assert!(!tree.predict(&[3.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl Tree {
    /// Fits a tree on the samples selected by `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] if `idx` is empty. A
    /// single-class index set yields a single-leaf tree rather than an
    /// error (bootstrap resamples can legitimately be one-class).
    pub fn fit<R: Rng>(
        data: &Dataset,
        idx: &[u32],
        params: TreeParams,
        rng: &mut R,
    ) -> Result<Self, TrainError> {
        if idx.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let thresholds = quantile_thresholds(data, idx, params.bins);
        let mut tree = Tree {
            nodes: Vec::new(),
            num_features: data.num_features(),
        };
        let mut scratch = idx.to_vec();
        tree.build(data, &mut scratch, &thresholds, &params, 0, rng);
        Ok(tree)
    }

    fn build<R: Rng>(
        &mut self,
        data: &Dataset,
        idx: &mut [u32],
        thresholds: &[Vec<f64>],
        params: &TreeParams,
        depth: usize,
        rng: &mut R,
    ) -> u32 {
        let (pos, neg) = count_labels(data, idx);
        let me = self.nodes.len() as u32;
        self.nodes.push(Node::leaf(pos, neg));
        if pos == 0 || neg == 0 || idx.len() < params.min_samples_split || depth >= params.max_depth
        {
            return me;
        }

        // Candidate features: all, or a random subset (RandomTree).
        let m = data.num_features();
        let mut order: Vec<usize> = (0..m).collect();
        let candidates: &[usize] = match params.feature_subset {
            Some(k) => {
                order.shuffle(rng);
                &order[..k.clamp(1, m)]
            }
            None => &order,
        };

        let Some((feature, threshold, gain)) =
            best_split(data, idx, thresholds, candidates, pos, neg)
        else {
            return me;
        };
        if gain <= 1e-12 {
            return me;
        }

        // In-place partition: `x[feature] <= threshold` to the front.
        let cut = partition(idx, |&i| data.feature(i as usize, feature) <= threshold);
        if cut == 0 || cut == idx.len() {
            return me; // numeric degeneracy: no progress
        }
        let (left_idx, right_idx) = idx.split_at_mut(cut);
        let left = self.build(data, left_idx, thresholds, params, depth + 1, rng);
        let right = self.build(data, right_idx, thresholds, params, depth + 1, rng);
        let node = &mut self.nodes[me as usize];
        node.feature = feature as i32;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        me
    }

    /// Index of the leaf `x` routes to.
    fn leaf_of(&self, x: &[f64]) -> usize {
        let mut at = 0usize;
        loop {
            let n = &self.nodes[at];
            if n.is_leaf() {
                return at;
            }
            at = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// Probability that `x` is positive: `P / (P + N)` of its leaf
    /// (Eq. (1) of the paper); `0.5` for a leaf no training sample reached.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the tree was trained on.
    pub fn proba(&self, x: &[f64]) -> f64 {
        self.nodes[self.leaf_of(x)].leaf_proba()
    }

    /// Hard classification at the default 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.proba(x) >= 0.5
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum root-to-leaf depth.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            let n = &nodes[at];
            if n.is_leaf() {
                0
            } else {
                1 + walk(nodes, n.left as usize).max(walk(nodes, n.right as usize))
            }
        }
        walk(&self.nodes, 0)
    }

    /// Features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Raw node table, for the compiled kernel's flattening pass.
    pub(crate) fn raw_nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reduced-error pruning against a held-out index set: any subtree whose
    /// majority-label error on the held-out samples is no better than the
    /// error of a single leaf is collapsed.
    pub(crate) fn prune_with(&mut self, data: &Dataset, held: &[u32]) {
        let mut scratch = held.to_vec();
        self.prune_node(data, 0, &mut scratch);
        self.compact();
    }

    /// Returns the held-out error of the (possibly pruned) subtree at `at`.
    fn prune_node(&mut self, data: &Dataset, at: usize, held: &mut [u32]) -> usize {
        let node = self.nodes[at];
        let leaf_err = held
            .iter()
            .filter(|&&i| data.label(i as usize) != node.majority())
            .count();
        if node.is_leaf() {
            return leaf_err;
        }
        let feature = node.feature as usize;
        let threshold = node.threshold;
        let cut = partition(held, |&i| data.feature(i as usize, feature) <= threshold);
        let (lh, rh) = held.split_at_mut(cut);
        let subtree_err = self.prune_node(data, node.left as usize, lh)
            + self.prune_node(data, node.right as usize, rh);
        if leaf_err <= subtree_err {
            // Collapse: children become unreachable and are swept later.
            let n = &mut self.nodes[at];
            n.feature = LEAF;
            n.left = 0;
            n.right = 0;
            leaf_err
        } else {
            subtree_err
        }
    }

    /// Re-derives every node's counts from the given samples (the paper's
    /// Eq. (1) counts come from the *full* training set after pruning).
    pub(crate) fn backfit(&mut self, data: &Dataset, idx: &[u32]) {
        for n in &mut self.nodes {
            n.pos = 0;
            n.neg = 0;
        }
        for &i in idx {
            let x = data.row(i as usize);
            let label = data.label(i as usize);
            let mut at = 0usize;
            loop {
                let n = &mut self.nodes[at];
                if label {
                    n.pos += 1;
                } else {
                    n.neg += 1;
                }
                if n.is_leaf() {
                    break;
                }
                at = if x[n.feature as usize] <= n.threshold {
                    n.left as usize
                } else {
                    n.right as usize
                };
            }
        }
    }

    /// Drops nodes unreachable after pruning and renumbers children.
    fn compact(&mut self) {
        let mut keep = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        while let Some(at) = stack.pop() {
            keep[at] = true;
            let n = &self.nodes[at];
            if !n.is_leaf() {
                stack.push(n.left as usize);
                stack.push(n.right as usize);
            }
        }
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut out = Vec::with_capacity(keep.iter().filter(|k| **k).count());
        for (i, node) in self.nodes.iter().enumerate() {
            if keep[i] {
                remap[i] = out.len() as u32;
                out.push(*node);
            }
        }
        for n in &mut out {
            if !n.is_leaf() {
                n.left = remap[n.left as usize];
                n.right = remap[n.right as usize];
            }
        }
        self.nodes = out;
    }
}

/// Stable-enough in-place partition: elements satisfying `pred` move to the
/// front; returns the number that satisfy it.
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut store = 0usize;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

fn count_labels(data: &Dataset, idx: &[u32]) -> (u32, u32) {
    let mut pos = 0u32;
    let mut neg = 0u32;
    for &i in idx {
        if data.label(i as usize) {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    (pos, neg)
}

/// Binary entropy of a (pos, neg) count pair, in nats.
fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 || pos == 0.0 || neg == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    let q = neg / n;
    -(p * p.ln() + q * q.ln())
}

/// Per-feature candidate thresholds: midpoints between adjacent distinct
/// quantile values of the training samples.
fn quantile_thresholds(data: &Dataset, idx: &[u32], bins: usize) -> Vec<Vec<f64>> {
    let m = data.num_features();
    let mut out = Vec::with_capacity(m);
    let mut vals: Vec<f64> = Vec::with_capacity(idx.len());
    for j in 0..m {
        vals.clear();
        vals.extend(idx.iter().map(|&i| data.feature(i as usize, j)));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup();
        let mut ts = Vec::new();
        if vals.len() > 1 {
            if vals.len() <= bins {
                for w in vals.windows(2) {
                    ts.push((w[0] + w[1]) / 2.0);
                }
            } else {
                for k in 1..bins {
                    let q0 = vals[(k - 1) * (vals.len() - 1) / (bins - 1)];
                    let q1 = vals[k * (vals.len() - 1) / (bins - 1)];
                    if q1 > q0 {
                        ts.push((q0 + q1) / 2.0);
                    }
                }
                ts.dedup();
            }
        }
        out.push(ts);
    }
    out
}

/// Best (feature, threshold, information gain) over the candidate features.
fn best_split(
    data: &Dataset,
    idx: &[u32],
    thresholds: &[Vec<f64>],
    candidates: &[usize],
    pos: u32,
    neg: u32,
) -> Option<(usize, f64, f64)> {
    let parent = entropy(f64::from(pos), f64::from(neg));
    let n = idx.len() as f64;
    let mut best: Option<(usize, f64, f64)> = None;
    // Histogram scratch: (pos, neg) per bin.
    let mut hist: Vec<(u32, u32)> = Vec::new();
    for &j in candidates {
        let ts = &thresholds[j];
        if ts.is_empty() {
            continue;
        }
        hist.clear();
        hist.resize(ts.len() + 1, (0, 0));
        for &i in idx {
            let v = data.feature(i as usize, j);
            let bin = ts.partition_point(|t| *t < v);
            let e = &mut hist[bin];
            if data.label(i as usize) {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let mut lp = 0u32;
        let mut ln = 0u32;
        for (k, &(hp, hn)) in hist[..ts.len()].iter().enumerate() {
            lp += hp;
            ln += hn;
            let l = f64::from(lp + ln);
            let r = n - l;
            if l == 0.0 || r == 0.0 {
                continue;
            }
            let gain = parent
                - (l / n) * entropy(f64::from(lp), f64::from(ln))
                - (r / n) * entropy(f64::from(pos - lp), f64::from(neg - ln));
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((j, ts[k], gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    /// XOR-ish dataset: not linearly separable, trivially tree-separable.
    fn xor_data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..n {
            let a: f64 = r.gen_range(0.0..1.0);
            let b: f64 = r.gen_range(0.0..1.0);
            ds.push(&[a, b], (a > 0.5) != (b > 0.5))
                .expect("2 features");
        }
        ds
    }

    #[test]
    fn learns_xor_exactly() {
        let ds = xor_data(400);
        let t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng()).expect("fit");
        assert!(t.predict(&[0.9, 0.1]));
        assert!(t.predict(&[0.1, 0.9]));
        assert!(!t.predict(&[0.9, 0.9]));
        assert!(!t.predict(&[0.1, 0.1]));
    }

    #[test]
    fn single_class_index_set_yields_one_leaf() {
        let mut ds = Dataset::new(1);
        for i in 0..10 {
            ds.push(&[i as f64], true).expect("ok");
        }
        let t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng()).expect("fit");
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.proba(&[5.0]), 1.0);
    }

    #[test]
    fn empty_index_set_is_an_error() {
        let ds = xor_data(10);
        assert_eq!(
            Tree::fit(&ds, &[], TreeParams::default(), &mut rng()).unwrap_err(),
            TrainError::EmptyDataset
        );
    }

    #[test]
    fn max_depth_caps_tree() {
        let ds = xor_data(400);
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        assert!(t.depth() <= 1);
        assert!(t.num_nodes() <= 3);
    }

    #[test]
    fn proba_matches_leaf_purity() {
        // 80/20 mix below the split, pure above.
        let mut ds = Dataset::new(1);
        for i in 0..100 {
            ds.push(&[0.0], i < 80).expect("ok");
        }
        for _ in 0..100 {
            ds.push(&[10.0], false).expect("ok");
        }
        let params = TreeParams {
            max_depth: 1,
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        assert!((t.proba(&[0.0]) - 0.8).abs() < 1e-9);
        assert!(t.proba(&[10.0]) < 1e-9);
    }

    #[test]
    fn pruning_shrinks_noisy_trees_without_hurting_signal() {
        // Signal in feature 0; feature 1 is pure noise the unpruned tree
        // will overfit to.
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..600 {
            let a: f64 = r.gen_range(0.0..1.0);
            let noise: f64 = r.gen_range(0.0..1.0);
            let label = if r.gen_bool(0.15) { a <= 0.5 } else { a > 0.5 };
            ds.push(&[a, noise], label).expect("ok");
        }
        let mut r2 = rng();
        let (grow, held) = ds.split_indices(2.0 / 3.0, &mut r2);
        let mut t = Tree::fit(&ds, &grow, TreeParams::default(), &mut r2).expect("fit");
        let before = t.num_nodes();
        t.prune_with(&ds, &held);
        t.backfit(&ds, &ds.all_indices());
        assert!(t.num_nodes() < before, "pruning should remove noise splits");
        // Signal preserved.
        assert!(t.predict(&[0.9, 0.5]));
        assert!(!t.predict(&[0.1, 0.5]));
    }

    #[test]
    fn backfit_counts_sum_to_dataset() {
        let ds = xor_data(200);
        let mut r = rng();
        let mut t = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut r).expect("fit");
        t.backfit(&ds, &ds.all_indices());
        let (leaf_pos, leaf_neg) = t
            .nodes
            .iter()
            .filter(|n| n.is_leaf())
            .fold((0u32, 0u32), |(p, q), n| (p + n.pos, q + n.neg));
        assert_eq!((leaf_pos + leaf_neg) as usize, ds.len());
        assert_eq!(leaf_pos as usize, ds.num_positive());
    }

    #[test]
    fn feature_subset_still_learns() {
        let ds = xor_data(600);
        let params = TreeParams {
            feature_subset: Some(1),
            ..TreeParams::default()
        };
        let t = Tree::fit(&ds, &ds.all_indices(), params, &mut rng()).expect("fit");
        // With one random feature per node the tree is bigger but still
        // separates XOR reasonably.
        let acc = (0..ds.len())
            .filter(|&i| t.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.9, "subset tree accuracy {acc}");
    }

    #[test]
    fn compact_preserves_predictions() {
        let ds = xor_data(300);
        let mut r = rng();
        let (grow, held) = ds.split_indices(2.0 / 3.0, &mut r);
        let mut t = Tree::fit(&ds, &grow, TreeParams::default(), &mut r).expect("fit");
        let mut pruned = t.clone();
        pruned.prune_node(&ds, 0, &mut held.clone());
        t.prune_with(&ds, &held); // prune + compact
        for i in 0..ds.len() {
            assert_eq!(t.predict(ds.row(i)), pruned.predict(ds.row(i)));
        }
        assert!(t.num_nodes() <= pruned.num_nodes());
    }

    #[test]
    fn partition_is_correct() {
        let mut xs = vec![5, 1, 4, 2, 3];
        let cut = partition(&mut xs, |&x| x <= 2);
        assert_eq!(cut, 2);
        let (l, r) = xs.split_at(cut);
        assert!(l.iter().all(|&x| x <= 2));
        assert!(r.iter().all(|&x| x > 2));
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(0.0, 0.0), 0.0);
        assert_eq!(entropy(10.0, 0.0), 0.0);
        assert!((entropy(5.0, 5.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
