//! Base learners: `REPTree` and `RandomTree`, mirroring their Weka
//! namesakes.
//!
//! The paper's key engineering change (Section III-C) is swapping the
//! Bagging ensemble's base classifier from `RandomTree` (unpruned, used by
//! `RandomForest` in the earlier conference version) to `REPTree`
//! (reduced-error pruned), cutting runtime by ~10× at equal attack quality
//! (Table II). Both are provided here behind one [`TreeLearner`] trait so
//! the ensemble code is shared.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;
use crate::tree::{Tree, TreeBackend, TreeParams};

/// A strategy for fitting one decision tree on an index subset.
///
/// Implementations must be deterministic given the RNG state.
pub trait TreeLearner {
    /// Fits one tree on the samples selected by `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] if `idx` is empty.
    fn fit_tree(
        &self,
        data: &Dataset,
        idx: &[u32],
        rng: &mut ChaCha8Rng,
    ) -> Result<Tree, TrainError>;
}

/// Reduced-Error-Pruning tree (Weka `REPTree`).
///
/// Grows on `grow_fraction` of the index set, prunes any subtree that does
/// not beat a single leaf on the held-out remainder, then backfits Eq. (1)
/// leaf counts from the full index set. Pruned trees are smaller and
/// generalise better, which is what lets Bagging get away with 10 of them
/// where RandomForest needs 100 RandomTrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepTreeLearner {
    /// Fraction of samples used for growing (the rest prune). Weka's
    /// default `numFolds = 3` corresponds to `2/3`.
    pub grow_fraction: f64,
    /// Growth parameters.
    pub params: TreeParams,
}

impl Default for RepTreeLearner {
    fn default() -> Self {
        Self {
            grow_fraction: 2.0 / 3.0,
            params: TreeParams {
                min_samples_split: 2,
                ..TreeParams::default()
            },
        }
    }
}

impl RepTreeLearner {
    /// The default learner with an explicit split-finding backend.
    pub fn with_backend(backend: TreeBackend) -> Self {
        let mut learner = Self::default();
        learner.params.backend = backend;
        learner
    }
}

impl TreeLearner for RepTreeLearner {
    fn fit_tree(
        &self,
        data: &Dataset,
        idx: &[u32],
        rng: &mut ChaCha8Rng,
    ) -> Result<Tree, TrainError> {
        if idx.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        if idx.len() < 4 {
            // Too small to hold anything out; grow unpruned.
            return Tree::fit(data, idx, self.params, rng);
        }
        let (grow, held) = split_indices(idx, self.grow_fraction, rng);
        let mut tree = Tree::fit(data, &grow, self.params, rng)?;
        tree.prune_with(data, &held);
        tree.backfit(data, idx);
        Ok(tree)
    }
}

/// Unpruned randomized tree (Weka `RandomTree`): `K` random candidate
/// features per node, grown to purity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomTreeLearner {
    /// Candidate features per node; `None` uses Weka's default
    /// `⌊log₂ m⌋ + 1`.
    pub k: Option<usize>,
    /// Growth parameters (the feature subset is filled in per fit).
    pub params: TreeParams,
}

impl Default for RandomTreeLearner {
    fn default() -> Self {
        Self {
            k: None,
            params: TreeParams {
                min_samples_split: 2,
                ..TreeParams::default()
            },
        }
    }
}

impl RandomTreeLearner {
    /// The default learner with an explicit split-finding backend.
    pub fn with_backend(backend: TreeBackend) -> Self {
        let mut learner = Self::default();
        learner.params.backend = backend;
        learner
    }
}

impl TreeLearner for RandomTreeLearner {
    fn fit_tree(
        &self,
        data: &Dataset,
        idx: &[u32],
        rng: &mut ChaCha8Rng,
    ) -> Result<Tree, TrainError> {
        let m = data.num_features().max(1);
        let k = self
            .k
            .unwrap_or_else(|| (m as f64).log2().floor() as usize + 1)
            .clamp(1, m);
        let params = TreeParams {
            feature_subset: Some(k),
            ..self.params
        };
        Tree::fit(data, idx, params, rng)
    }
}

/// Shuffle-free split of an explicit index slice (unlike
/// [`Dataset::split_indices`] this works on a subset, e.g. a bootstrap
/// resample).
fn split_indices(idx: &[u32], frac: f64, rng: &mut ChaCha8Rng) -> (Vec<u32>, Vec<u32>) {
    let mut shuffled = idx.to_vec();
    // Fisher–Yates on the copy.
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    let cut = ((shuffled.len() as f64) * frac).round() as usize;
    let cut = cut.clamp(1, shuffled.len() - 1);
    let held = shuffled.split_off(cut);
    (shuffled, held)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn noisy_step(n: usize) -> Dataset {
        let mut ds = Dataset::new(3);
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..n {
            let a: f64 = r.gen_range(0.0..1.0);
            let n1: f64 = r.gen_range(0.0..1.0);
            let n2: f64 = r.gen_range(0.0..1.0);
            let label = if r.gen_bool(0.1) { a <= 0.4 } else { a > 0.4 };
            ds.push(&[a, n1, n2], label).expect("ok");
        }
        ds
    }

    #[test]
    fn rep_tree_is_smaller_than_unpruned() {
        let ds = noisy_step(900);
        let rep = RepTreeLearner::default()
            .fit_tree(&ds, &ds.all_indices(), &mut rng())
            .expect("fit");
        let unpruned =
            Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng()).expect("fit");
        assert!(
            rep.num_nodes() < unpruned.num_nodes(),
            "REP {} vs unpruned {}",
            rep.num_nodes(),
            unpruned.num_nodes()
        );
    }

    #[test]
    fn rep_tree_keeps_the_signal() {
        let ds = noisy_step(900);
        let rep = RepTreeLearner::default()
            .fit_tree(&ds, &ds.all_indices(), &mut rng())
            .expect("fit");
        assert!(rep.predict(&[0.9, 0.5, 0.5]));
        assert!(!rep.predict(&[0.1, 0.5, 0.5]));
    }

    #[test]
    fn rep_tree_handles_tiny_sets() {
        let mut ds = Dataset::new(1);
        ds.push(&[0.0], false).expect("ok");
        ds.push(&[1.0], true).expect("ok");
        let t = RepTreeLearner::default()
            .fit_tree(&ds, &ds.all_indices(), &mut rng())
            .expect("fit");
        assert!(t.num_nodes() >= 1);
    }

    #[test]
    fn random_tree_uses_default_k() {
        let ds = noisy_step(400);
        let t = RandomTreeLearner::default()
            .fit_tree(&ds, &ds.all_indices(), &mut rng())
            .expect("fit");
        // Unpruned randomized trees are large.
        assert!(t.num_nodes() > 10);
    }

    #[test]
    fn learners_are_deterministic_per_seed() {
        let ds = noisy_step(300);
        let a = RepTreeLearner::default().fit_tree(&ds, &ds.all_indices(), &mut rng());
        let b = RepTreeLearner::default().fit_tree(&ds, &ds.all_indices(), &mut rng());
        assert_eq!(a.expect("fit"), b.expect("fit"));
    }

    #[test]
    fn empty_index_set_is_rejected() {
        let ds = noisy_step(10);
        assert!(RepTreeLearner::default()
            .fit_tree(&ds, &[], &mut rng())
            .is_err());
        assert!(RandomTreeLearner::default()
            .fit_tree(&ds, &[], &mut rng())
            .is_err());
    }

    #[test]
    fn split_indices_partitions_subset() {
        let idx: Vec<u32> = (10..40).collect();
        let (a, b) = split_indices(&idx, 2.0 / 3.0, &mut rng());
        assert_eq!(a.len(), 20);
        assert_eq!(b.len(), 10);
        let mut all: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, idx);
    }
}
