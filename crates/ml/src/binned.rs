//! Pre-binned datasets for the histogram training kernel.
//!
//! [`Tree::fit`](crate::tree::Tree::fit) with the default
//! [`TreeBackend::Binned`](crate::tree::TreeBackend) encodes every sample's
//! feature values into `u16` bin codes once per tree, after which node
//! split-finding never touches raw `f64` features again: per-node work is a
//! direct-indexed `(pos, neg)` count accumulation instead of a binary search
//! per sample per feature. Codes are laid out column-major (one contiguous
//! `u16` column per feature) so the accumulation loop streams each column
//! linearly.
//!
//! Bin code `c` for feature `j` is `ts.partition_point(|t| *t < v)` over
//! that feature's candidate thresholds `ts` — the *same* expression the
//! reference `best_split` evaluates per node — so for the strictly
//! increasing `ts` produced by `quantile_thresholds`, `code <= k` holds iff
//! `v <= ts[k]`. That makes the histogram scan's split counts, and
//! therefore the grown tree, bit-identical to the reference backend.
//!
//! Histogram buffers come from a [`HistPool`] so a tree fit allocates
//! `O(depth)` buffers total rather than one per node, and each larger
//! sibling's histogram is derived by parent-minus-smaller-child subtraction
//! (exact on `u32` counts) instead of a second pass over the samples.

use crate::data::Dataset;

/// A dataset's feature values quantized to per-feature `u16` bin codes.
///
/// Built once per tree fit from the tree's own quantile thresholds. All
/// rows of the backing dataset are encoded (nodes index into the columns by
/// sample id), and the per-feature histogram regions are packed into one
/// flat layout: feature `j` owns `bins(j) = thresholds[j].len() + 1` bins,
/// each bin two `u32` slots (`pos`, `neg`), starting at `2 * offsets[j]`.
#[derive(Debug)]
pub(crate) struct BinnedDataset {
    thresholds: Vec<Vec<f64>>,
    /// Column-major codes: feature `j`, row `i` at `codes[j * n_rows + i]`.
    codes: Vec<u16>,
    /// Per-feature bin offsets (in bins, not slots); `offsets[m]` = total.
    offsets: Vec<usize>,
    n_rows: usize,
}

impl BinnedDataset {
    /// Encodes every row of `data` against `thresholds`. Returns the
    /// thresholds back as the error value if any feature has more distinct
    /// thresholds than a `u16` code can address, so the caller can fall
    /// back to the reference build path.
    pub(crate) fn encode(data: &Dataset, thresholds: Vec<Vec<f64>>) -> Result<Self, Vec<Vec<f64>>> {
        if thresholds.iter().any(|ts| ts.len() > usize::from(u16::MAX)) {
            return Err(thresholds);
        }
        let n = data.len();
        let m = data.num_features();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut total = 0usize;
        for ts in &thresholds {
            offsets.push(total);
            total += ts.len() + 1;
        }
        offsets.push(total);
        let mut codes = vec![0u16; m * n];
        for (j, ts) in thresholds.iter().enumerate() {
            if ts.is_empty() {
                continue; // all-zero codes; the column is never scanned
            }
            let col = &mut codes[j * n..(j + 1) * n];
            for (i, code) in col.iter_mut().enumerate() {
                let v = data.feature(i, j);
                *code = ts.partition_point(|t| *t < v) as u16;
            }
        }
        Ok(BinnedDataset {
            thresholds,
            codes,
            offsets,
            n_rows: n,
        })
    }

    /// Candidate thresholds for feature `j` (strictly increasing).
    pub(crate) fn thresholds(&self, j: usize) -> &[f64] {
        &self.thresholds[j]
    }

    /// Length in `u32` slots of a full flat histogram.
    pub(crate) fn hist_len(&self) -> usize {
        2 * self.offsets[self.offsets.len() - 1]
    }

    /// Feature `j`'s region of a flat histogram: `2 * bins(j)` slots,
    /// `(pos, neg)` interleaved per bin.
    pub(crate) fn feature_hist<'h>(&self, j: usize, hist: &'h [u32]) -> &'h [u32] {
        &hist[2 * self.offsets[j]..2 * self.offsets[j + 1]]
    }

    /// Accumulates the `(pos, neg)` counts of the rows in `idx` into every
    /// feature's region of `hist`. Features without thresholds are skipped —
    /// the reference scan never histograms them either.
    pub(crate) fn accumulate(&self, labels: &[bool], idx: &[u32], hist: &mut [u32]) {
        for j in 0..self.thresholds.len() {
            if self.thresholds[j].is_empty() {
                continue;
            }
            self.accumulate_feature(j, labels, idx, hist);
        }
    }

    /// Accumulates one feature's counts (used by the random-subset path).
    pub(crate) fn accumulate_feature(
        &self,
        j: usize,
        labels: &[bool],
        idx: &[u32],
        hist: &mut [u32],
    ) {
        let col = &self.codes[j * self.n_rows..(j + 1) * self.n_rows];
        let region = &mut hist[2 * self.offsets[j]..2 * self.offsets[j + 1]];
        for &i in idx {
            let i = i as usize;
            region[2 * usize::from(col[i]) + usize::from(!labels[i])] += 1;
        }
    }

    /// Zeroes one feature's region of `hist` (cheaper than a full clear when
    /// only a few candidate features were touched).
    pub(crate) fn zero_feature(&self, j: usize, hist: &mut [u32]) {
        hist[2 * self.offsets[j]..2 * self.offsets[j + 1]].fill(0);
    }

    /// Zeroes exactly the slots the rows in `idx` can have touched: a
    /// histogram accumulated from (or subtracted down to) a node's sample
    /// set is nonzero only in those slots, so this restores the all-zero
    /// state in `O(|idx| * m)` instead of `O(hist_len)` — the win that
    /// makes recycling cheap for small, deep nodes.
    pub(crate) fn zero_samples(&self, idx: &[u32], hist: &mut [u32]) {
        for j in 0..self.thresholds.len() {
            if self.thresholds[j].is_empty() {
                continue;
            }
            let col = &self.codes[j * self.n_rows..(j + 1) * self.n_rows];
            let region = &mut hist[2 * self.offsets[j]..2 * self.offsets[j + 1]];
            for &i in idx {
                let slot = 2 * usize::from(col[i as usize]);
                region[slot] = 0;
                region[slot + 1] = 0;
            }
        }
    }

    /// Number of features (threshold columns).
    pub(crate) fn num_features(&self) -> usize {
        self.thresholds.len()
    }
}

/// Recycles flat histogram buffers across the nodes of a tree fit.
///
/// Invariant: every buffer in the free list is all-zero, so `acquire`
/// never clears.
pub(crate) struct HistPool {
    len: usize,
    free: Vec<Vec<u32>>,
}

impl HistPool {
    pub(crate) fn new(len: usize) -> Self {
        HistPool {
            len,
            free: Vec::new(),
        }
    }

    /// A zeroed buffer of `hist_len` slots.
    pub(crate) fn acquire(&mut self) -> Vec<u32> {
        self.free.pop().unwrap_or_else(|| vec![0; self.len])
    }

    /// Returns a buffer of unknown content; it is cleared here.
    pub(crate) fn release(&mut self, mut hist: Vec<u32>) {
        hist.fill(0);
        self.free.push(hist);
    }

    /// Returns a buffer the caller has already zeroed (e.g. by
    /// [`BinnedDataset::zero_feature`] over exactly the touched regions).
    pub(crate) fn release_zeroed(&mut self, hist: Vec<u32>) {
        debug_assert!(hist.iter().all(|&c| c == 0));
        self.free.push(hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new(2);
        for (i, &(a, b)) in [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]
            .iter()
            .enumerate()
        {
            ds.push(&[a, b], i % 2 == 0).expect("2 features");
        }
        ds
    }

    #[test]
    fn codes_match_partition_point_binning() {
        let ds = tiny_dataset();
        let thresholds = vec![vec![0.5, 1.5, 2.5], vec![]];
        let binned = BinnedDataset::encode(&ds, thresholds.clone()).expect("fits in u16");
        for i in 0..ds.len() {
            for (j, ts) in thresholds.iter().enumerate() {
                let v = ds.feature(i, j);
                let expect = ts.partition_point(|t| *t < v) as u16;
                assert_eq!(
                    binned.codes[j * ds.len() + i],
                    expect,
                    "row {i} feature {j}"
                );
            }
        }
        // Constant column: no thresholds, one bin, all-zero codes.
        assert_eq!(binned.hist_len(), 2 * (4 + 1));
    }

    #[test]
    fn accumulate_and_subtract_are_exact() {
        let ds = tiny_dataset();
        let binned =
            BinnedDataset::encode(&ds, vec![vec![0.5, 1.5, 2.5], vec![]]).expect("fits in u16");
        let mut pool = HistPool::new(binned.hist_len());
        let mut parent = pool.acquire();
        binned.accumulate(ds.labels(), &[0, 1, 2, 3], &mut parent);
        let f0 = binned.feature_hist(0, &parent);
        // One sample per bin; labels alternate pos/neg.
        assert_eq!(f0, &[1, 0, 0, 1, 1, 0, 0, 1]);

        let mut left = pool.acquire();
        binned.accumulate(ds.labels(), &[0, 1], &mut left);
        let mut derived_right = parent;
        crate::tree::subtract_hist(&mut derived_right, &left);
        let mut right = pool.acquire();
        binned.accumulate(ds.labels(), &[2, 3], &mut right);
        assert_eq!(derived_right, right);
        pool.release(left);
        pool.release(right);
        pool.release(derived_right);
        assert_eq!(pool.acquire(), vec![0u32; binned.hist_len()]);
    }

    #[test]
    fn encode_rejects_thresholds_beyond_u16() {
        let ds = tiny_dataset();
        let too_many: Vec<f64> = (0..=usize::from(u16::MAX)).map(|k| k as f64).collect();
        let thresholds = vec![too_many.clone(), vec![]];
        let err = BinnedDataset::encode(&ds, thresholds).expect_err("must reject");
        assert_eq!(err[0], too_many);
    }
}
