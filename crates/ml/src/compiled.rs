//! Compiled inference kernel: a [`Bagging`] ensemble lowered into one
//! contiguous structure-of-arrays node table.
//!
//! The reference path ([`Bagging::proba`]) walks per-tree `Vec<Node>`
//! allocations through an enum-free but pointer-chasing loop, and divides
//! leaf counts (`P / (P + N)`, Eq. (1)) on every visit. The compiled path
//! re-emits every tree in depth-first preorder into three flat arrays —
//! `i32` split feature, `f64` threshold, `u32` skip offset — with the leaf
//! probability *precomputed at compile time* and stored in the threshold
//! slot. A node's left child is always the next table entry, so descending
//! left is a `+1` and descending right adds the skip offset: no child
//! pointers, no per-tree indirection, no division in the hot loop.
//!
//! Compilation is a pure lowering: [`CompiledEnsemble::proba`] and
//! [`CompiledEnsemble::proba_batch`] are **bit-for-bit identical** to
//! [`Bagging::proba`] — the leaf division uses the same operands, member
//! probabilities are summed in the same tree order, and the final division
//! by the tree count is unchanged. Model artifacts keep storing the
//! trained trees; compilation happens at load, so the artifact format is
//! untouched by kernel-layout changes.

use crate::bagging::Bagging;
use crate::tree::Tree;

/// Sentinel in [`CompiledEnsemble`]'s feature column marking a leaf.
const COMPILED_LEAF: i32 = -1;

/// A [`Bagging`] ensemble flattened into one SoA node table for batched
/// inference.
///
/// # Examples
///
/// ```
/// use sm_ml::bagging::Bagging;
/// use sm_ml::compiled::CompiledEnsemble;
/// use sm_ml::data::Dataset;
/// use sm_ml::learners::RepTreeLearner;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..200 {
///     ds.push(&[i as f64], i >= 100)?;
/// }
/// let model = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 42)?;
/// let compiled = CompiledEnsemble::compile(&model);
/// let x = [150.0];
/// assert_eq!(compiled.proba(&x).to_bits(), model.proba(&x).to_bits());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledEnsemble {
    /// Split feature per node, or [`COMPILED_LEAF`].
    feat: Vec<i32>,
    /// Split threshold per internal node; precomputed leaf probability
    /// (Eq. (1), empty-leaf fallback 0.5 baked in) per leaf.
    thr: Vec<f64>,
    /// Offset from an internal node to its right child (left child is the
    /// next entry). One on leaves — never read, but a self-loop keeps every
    /// entry a valid in-tree index.
    skip: Vec<u32>,
    /// Flat index of each member tree's root, in ensemble order.
    roots: Vec<u32>,
    /// Features the ensemble was trained on.
    num_features: usize,
}

impl CompiledEnsemble {
    /// Lowers a trained ensemble into the flat SoA layout.
    ///
    /// Each tree is re-emitted in depth-first preorder regardless of how
    /// its nodes happened to be stored (pruning compaction preserves
    /// preorder today, but the kernel must not depend on that).
    pub fn compile(model: &Bagging) -> Self {
        let total: usize = model.trees().iter().map(Tree::num_nodes).sum();
        let mut out = Self {
            feat: Vec::with_capacity(total),
            thr: Vec::with_capacity(total),
            skip: Vec::with_capacity(total),
            roots: Vec::with_capacity(model.num_trees()),
            num_features: model.trees().first().map_or(0, |t| t.num_features()),
        };
        for tree in model.trees() {
            let root = out.feat.len() as u32;
            out.roots.push(root);
            out.emit(tree, 0);
        }
        out
    }

    /// Emits the subtree rooted at `at` in preorder; returns its flat index.
    fn emit(&mut self, tree: &Tree, at: usize) -> usize {
        let node = tree.raw_nodes()[at];
        let me = self.feat.len();
        if node.is_leaf() {
            self.feat.push(COMPILED_LEAF);
            self.thr.push(node.leaf_proba());
            self.skip.push(1);
            return me;
        }
        self.feat.push(node.feature);
        self.thr.push(node.threshold);
        self.skip.push(0); // patched below once the left subtree's size is known
        let left = self.emit(tree, node.left as usize);
        debug_assert_eq!(left, me + 1, "left child must be the next entry");
        let right = self.emit(tree, node.right as usize);
        self.skip[me] = (right - me) as u32;
        me
    }

    /// Number of member trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes in the flat table.
    pub fn num_nodes(&self) -> usize {
        self.feat.len()
    }

    /// Features the ensemble was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Ensemble probability for one row — bit-identical to
    /// [`Bagging::proba`] on the source model.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the ensemble was trained on.
    pub fn proba(&self, x: &[f64]) -> f64 {
        let mut sum = 0.0f64;
        for &root in &self.roots {
            sum += self.walk(root as usize, x);
        }
        sum / self.roots.len() as f64
    }

    /// Ensemble probabilities for a row-major batch: `rows` holds
    /// `out.len()` consecutive rows of `stride` values each (a row may use
    /// only its first [`Self::num_features`] columns; the rest is padding).
    ///
    /// Each output is bit-identical to [`Bagging::proba`] on that row: the
    /// member sum runs in tree order per row, exactly like the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() < out.len() * stride` or if `stride` is
    /// smaller than the trained feature count.
    pub fn proba_batch(&self, rows: &[f64], stride: usize, out: &mut [f64]) {
        assert!(
            stride >= self.num_features,
            "row stride {stride} smaller than feature count {}",
            self.num_features
        );
        assert!(
            rows.len() >= out.len() * stride,
            "row buffer holds {} values, need {} rows x stride {stride}",
            rows.len(),
            out.len()
        );
        // Row-outer over the shared flat table: all ten trees' nodes sit in
        // one contiguous allocation that stays hot in L1 across the whole
        // batch, and per-row state is just a table index — no per-tree Vec
        // dereference, no leaf-count division (probabilities were baked in
        // at compile time). Branchless lane variants were measured slower
        // here: the ensemble's pruned trees are tiny and their splits
        // well-predicted, so the plain walk wins.
        //
        // Bit parity: members are summed in tree order per row exactly like
        // [`Self::proba`], then divided by the same tree count. Identical
        // operands in identical order, identical bits.
        let n_trees = self.roots.len() as f64;
        for (r, slot) in out.iter_mut().enumerate() {
            let x = &rows[r * stride..r * stride + stride];
            let mut sum = 0.0f64;
            for &root in &self.roots {
                sum += self.walk(root as usize, x);
            }
            *slot = sum / n_trees;
        }
    }

    /// Descends from `at` to a leaf and returns its baked-in probability.
    #[inline]
    fn walk(&self, mut at: usize, x: &[f64]) -> f64 {
        loop {
            let f = self.feat[at];
            if f < 0 {
                return self.thr[at];
            }
            at = if x[f as usize] <= self.thr[at] {
                at + 1
            } else {
                at + self.skip[at] as usize
            };
        }
    }
}

impl Bagging {
    /// Lowers this ensemble into a [`CompiledEnsemble`] — the batched
    /// inference kernel used by the attack's scoring hot loop.
    pub fn compile(&self) -> CompiledEnsemble {
        CompiledEnsemble::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::learners::{RandomTreeLearner, RepTreeLearner};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn noisy(n: usize, m: usize, seed: u64) -> Dataset {
        let mut ds = Dataset::new(m);
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n {
            let row: Vec<f64> = (0..m).map(|_| r.gen_range(0.0..1.0)).collect();
            let label = if r.gen_bool(0.15) {
                row[0] <= 0.5
            } else {
                row[0] > 0.5
            };
            ds.push(&row, label).expect("push");
        }
        ds
    }

    #[test]
    fn compiled_matches_reference_bit_for_bit() {
        let ds = noisy(400, 3, 11);
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for n_trees in [1usize, 7, 10] {
            let model = Bagging::fit(&ds, &RepTreeLearner::default(), n_trees, 3).expect("fit");
            let compiled = model.compile();
            for _ in 0..200 {
                let x: Vec<f64> = (0..3).map(|_| r.gen_range(-0.5..1.5)).collect();
                assert_eq!(
                    compiled.proba(&x).to_bits(),
                    model.proba(&x).to_bits(),
                    "{n_trees} trees, x = {x:?}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_with_padding_stride() {
        let ds = noisy(300, 2, 23);
        let model = Bagging::fit(&ds, &RandomTreeLearner::default(), 6, 9).expect("fit");
        let compiled = model.compile();
        let mut r = ChaCha8Rng::seed_from_u64(31);
        for stride in [2usize, 5] {
            let k = 37;
            let mut rows = vec![0.0f64; k * stride];
            for row in rows.chunks_mut(stride) {
                for v in row.iter_mut() {
                    *v = r.gen_range(0.0..1.0);
                }
            }
            let mut probs = vec![0.0f64; k];
            compiled.proba_batch(&rows, stride, &mut probs);
            for (i, p) in probs.iter().enumerate() {
                let x = &rows[i * stride..i * stride + stride];
                assert_eq!(p.to_bits(), model.proba(x).to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn node_table_is_one_contiguous_preorder() {
        let ds = noisy(500, 2, 7);
        let model = Bagging::fit(&ds, &RepTreeLearner::default(), 5, 1).expect("fit");
        let compiled = model.compile();
        assert_eq!(compiled.num_trees(), 5);
        assert_eq!(compiled.num_nodes(), model.total_nodes());
        // Every internal node's right child stays inside its own tree.
        let mut bounds = compiled.roots.clone();
        bounds.push(compiled.num_nodes() as u32);
        for t in 0..compiled.num_trees() {
            let (lo, hi) = (bounds[t] as usize, bounds[t + 1] as usize);
            for at in lo..hi {
                if compiled.feat[at] >= 0 {
                    let right = at + compiled.skip[at] as usize;
                    assert!(right > at + 1 && right < hi, "node {at}: right {right}");
                } else {
                    assert!((0.0..=1.0).contains(&compiled.thr[at]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn batch_rejects_short_stride() {
        let ds = noisy(100, 3, 2);
        let model = Bagging::fit(&ds, &RepTreeLearner::default(), 2, 0).expect("fit");
        let mut out = [0.0];
        model.compile().proba_batch(&[0.0, 0.0], 2, &mut out);
    }
}
