//! Gaussian naive Bayes — one of the simple classifiers the conference
//! version [18] reports trying before settling on tree ensembles.
//!
//! Models each feature as class-conditionally Gaussian. Fast, calibrated
//! on unimodal data, but blind to the feature interactions (e.g. "small
//! ManhattanVpin *and* plausible DiffArea") that make the pair problem
//! tree-shaped.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;

/// A fitted Gaussian naive Bayes classifier.
///
/// # Examples
///
/// ```
/// use sm_ml::bayes::GaussianNaiveBayes;
/// use sm_ml::data::Dataset;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..100 {
///     ds.push(&[f64::from(i)], i >= 50)?;
/// }
/// let model = GaussianNaiveBayes::fit(&ds)?;
/// assert!(model.predict(&[90.0]));
/// assert!(!model.predict(&[5.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    prior_pos: f64,
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
}

impl GaussianNaiveBayes {
    /// Fits per-class feature means and variances.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] / [`TrainError::SingleClass`]
    /// for untrainable data.
    pub fn fit(data: &Dataset) -> Result<Self, TrainError> {
        data.check_trainable()?;
        let m = data.num_features();
        let mut mean = [vec![0.0; m], vec![0.0; m]];
        let mut var = [vec![0.0; m], vec![0.0; m]];
        let mut count = [0usize; 2];
        for i in 0..data.len() {
            let c = usize::from(data.label(i));
            count[c] += 1;
            for (j, mu) in mean[c].iter_mut().enumerate() {
                *mu += data.feature(i, j);
            }
        }
        for c in 0..2 {
            for mu in &mut mean[c] {
                *mu /= count[c] as f64;
            }
        }
        for i in 0..data.len() {
            let c = usize::from(data.label(i));
            for j in 0..m {
                let d = data.feature(i, j) - mean[c][j];
                var[c][j] += d * d;
            }
        }
        // Variance floor keeps degenerate features from producing infinite
        // likelihood ratios.
        for c in 0..2 {
            for v in &mut var[c] {
                *v = (*v / count[c] as f64).max(1e-9);
            }
        }
        Ok(Self {
            prior_pos: count[1] as f64 / data.len() as f64,
            mean,
            var,
        })
    }

    /// Posterior probability that `x` is positive.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the trained feature count.
    pub fn proba(&self, x: &[f64]) -> f64 {
        let mut log_odds = (self.prior_pos / (1.0 - self.prior_pos)).ln();
        for (j, &v) in x.iter().enumerate().take(self.mean[0].len()) {
            log_odds += log_gauss(v, self.mean[1][j], self.var[1][j])
                - log_gauss(v, self.mean[0][j], self.var[0][j]);
        }
        1.0 / (1.0 + (-log_odds).exp())
    }

    /// Hard classification at 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.proba(x) >= 0.5
    }
}

fn log_gauss(x: f64, mean: f64, var: f64) -> f64 {
    let d = x - mean;
    -0.5 * (d * d / var + var.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn separates_shifted_gaussians() {
        let mut ds = Dataset::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..500 {
            let label = rng.gen_bool(0.5);
            let shift = if label { 2.0 } else { -2.0 };
            let a: f64 = rng.gen_range(-1.0..1.0) + shift;
            let b: f64 = rng.gen_range(-1.0..1.0) + shift;
            ds.push(&[a, b], label).expect("2 features");
        }
        let m = GaussianNaiveBayes::fit(&ds).expect("fit");
        let acc = (0..ds.len())
            .filter(|&i| m.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_bounded_and_monotone_along_the_axis() {
        let mut ds = Dataset::new(1);
        for i in 0..200 {
            ds.push(&[f64::from(i)], i >= 100).expect("1 feature");
        }
        let m = GaussianNaiveBayes::fit(&ds).expect("fit");
        let p_low = m.proba(&[10.0]);
        let p_mid = m.proba(&[99.0]);
        let p_high = m.proba(&[190.0]);
        assert!(p_low < p_mid && p_mid < p_high);
        for p in [p_low, p_mid, p_high] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn variance_floor_prevents_nan() {
        let mut ds = Dataset::new(2);
        // Feature 1 is constant within each class.
        for i in 0..50 {
            ds.push(&[f64::from(i), 3.0], i >= 25).expect("2 features");
        }
        let m = GaussianNaiveBayes::fit(&ds).expect("fit");
        assert!(m.proba(&[40.0, 3.0]).is_finite());
    }

    #[test]
    fn prior_shifts_the_boundary() {
        // Identical class-conditional distributions, 9:1 class imbalance:
        // the posterior must follow the prior.
        let mut ds = Dataset::new(1);
        for i in 0..90 {
            ds.push(&[f64::from(i % 10)], true).expect("1 feature");
        }
        for i in 0..10 {
            ds.push(&[f64::from(i)], false).expect("1 feature");
        }
        let m = GaussianNaiveBayes::fit(&ds).expect("fit");
        assert!(m.proba(&[4.5]) > 0.7, "prior favours the majority class");
    }

    #[test]
    fn rejects_untrainable_data() {
        assert!(GaussianNaiveBayes::fit(&Dataset::new(3)).is_err());
    }
}
