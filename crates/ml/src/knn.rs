//! k-nearest-neighbours — the remaining classical classifier of the
//! "classifiers we experimented" comparison in [18].
//!
//! Standardised Euclidean distance, distance-weighted voting, brute-force
//! search (the comparison uses training sets small enough that an index is
//! unnecessary; inference cost is the point the comparison makes).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;

/// A fitted (memorised) k-NN classifier.
///
/// # Examples
///
/// ```
/// use sm_ml::data::Dataset;
/// use sm_ml::knn::KNearest;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..100 {
///     ds.push(&[f64::from(i)], i >= 50)?;
/// }
/// let model = KNearest::fit(&ds, 5)?;
/// assert!(model.predict(&[80.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KNearest {
    k: usize,
    x: Vec<f64>,
    y: Vec<bool>,
    num_features: usize,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl KNearest {
    /// Memorises the training set with per-feature standardisation.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] / [`TrainError::SingleClass`]
    /// for untrainable data.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Result<Self, TrainError> {
        assert!(k > 0, "k must be positive");
        data.check_trainable()?;
        let m = data.num_features();
        let n = data.len();
        let mut mean = vec![0.0; m];
        let mut std = vec![0.0; m];
        for i in 0..n {
            for (j, mu) in mean.iter_mut().enumerate() {
                *mu += data.feature(i, j);
            }
        }
        for mu in &mut mean {
            *mu /= n as f64;
        }
        for i in 0..n {
            for j in 0..m {
                let d = data.feature(i, j) - mean[j];
                std[j] += d * d;
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let mut x = Vec::with_capacity(n * m);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            for j in 0..m {
                x.push((data.feature(i, j) - mean[j]) / std[j]);
            }
            y.push(data.label(i));
        }
        Ok(Self {
            k: k.min(n),
            x,
            y,
            num_features: m,
            mean,
            std,
        })
    }

    /// Distance-weighted positive vote among the k nearest neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `q` is shorter than the trained feature count.
    pub fn proba(&self, q: &[f64]) -> f64 {
        let m = self.num_features;
        let qs: Vec<f64> = (0..m)
            .map(|j| (q[j] - self.mean[j]) / self.std[j])
            .collect();
        // Max-heap of (distance², index) keeping the k smallest.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(self.k + 1);
        for i in 0..self.y.len() {
            let mut d2 = 0.0;
            for (xv, qv) in self.x[i * m..(i + 1) * m].iter().zip(&qs) {
                let d = xv - qv;
                d2 += d * d;
            }
            if heap.len() < self.k {
                heap.push((d2, i));
                if heap.len() == self.k {
                    heap.sort_by(|a, b| b.0.total_cmp(&a.0)); // max first
                }
            } else if d2 < heap[0].0 {
                heap[0] = (d2, i);
                let mut p = 0;
                while p + 1 < heap.len() && heap[p].0 < heap[p + 1].0 {
                    heap.swap(p, p + 1);
                    p += 1;
                }
            }
        }
        let mut wp = 0.0;
        let mut wt = 0.0;
        for &(d2, i) in &heap {
            let w = 1.0 / (d2.sqrt() + 1e-9);
            wt += w;
            if self.y[i] {
                wp += w;
            }
        }
        if wt == 0.0 {
            0.5
        } else {
            wp / wt
        }
    }

    /// Hard classification at 0.5.
    pub fn predict(&self, q: &[f64]) -> bool {
        self.proba(q) >= 0.5
    }

    /// The configured k.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn blobs(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let s = if label { 1.0 } else { -1.0 };
            ds.push(
                &[s + rng.gen_range(-0.5..0.5), s + rng.gen_range(-0.5..0.5)],
                label,
            )
            .expect("2 features");
        }
        ds
    }

    #[test]
    fn classifies_separated_blobs() {
        let ds = blobs(400);
        let m = KNearest::fit(&ds, 7).expect("fit");
        assert!(m.predict(&[1.0, 1.0]));
        assert!(!m.predict(&[-1.0, -1.0]));
    }

    #[test]
    fn k_is_capped_at_dataset_size() {
        let mut ds = Dataset::new(1);
        ds.push(&[0.0], false).expect("ok");
        ds.push(&[1.0], true).expect("ok");
        let m = KNearest::fit(&ds, 100).expect("fit");
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn exact_memorisation_with_k1() {
        let ds = blobs(100);
        let m = KNearest::fit(&ds, 1).expect("fit");
        for i in 0..ds.len() {
            assert_eq!(
                m.predict(ds.row(i)),
                ds.label(i),
                "k=1 memorises training data"
            );
        }
    }

    #[test]
    fn proba_is_bounded() {
        let ds = blobs(50);
        let m = KNearest::fit(&ds, 5).expect("fit");
        for q in [[-3.0, 3.0], [0.0, 0.0], [5.0, 5.0]] {
            let p = m.proba(&q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_is_rejected() {
        let ds = blobs(10);
        let _ = KNearest::fit(&ds, 0);
    }
}
