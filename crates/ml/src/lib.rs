//! # sm-ml — decision-tree machine learning substrate
//!
//! A from-scratch reimplementation of the Weka components the paper's
//! attack depends on: [`tree::Tree`] (CART-style decision tree),
//! [`learners::RepTreeLearner`] (reduced-error pruning, Weka `REPTree`),
//! [`learners::RandomTreeLearner`] (Weka `RandomTree`),
//! [`bagging::Bagging`] (bootstrap aggregation with soft voting, Eq. (1)–(3)
//! of the paper), [`forest::RandomForest`], and the feature-importance
//! metrics of Section IV-A ([`metrics`]).
//!
//! ## Quick start
//!
//! ```
//! use sm_ml::bagging::Bagging;
//! use sm_ml::data::Dataset;
//! use sm_ml::learners::RepTreeLearner;
//!
//! let mut ds = Dataset::new(2);
//! for i in 0..300 {
//!     let x = f64::from(i % 100);
//!     ds.push(&[x, -x], x > 50.0)?;
//! }
//! let model = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 0)?;
//! let p = model.proba(&[80.0, -80.0]);
//! assert!(p > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bagging;
pub mod bayes;
mod binned;
pub mod compiled;
pub mod data;
pub mod error;
pub mod forest;
pub mod knn;
pub mod learners;
pub mod linear;
pub mod metrics;
pub mod parallel;
pub mod tree;

pub use bagging::{Bagging, DEFAULT_BAGGING_TREES};
pub use bayes::GaussianNaiveBayes;
pub use compiled::CompiledEnsemble;
pub use data::Dataset;
pub use error::TrainError;
pub use forest::RandomForest;
pub use knn::KNearest;
pub use learners::{RandomTreeLearner, RepTreeLearner, TreeLearner};
pub use linear::{LogisticParams, LogisticRegression};
pub use parallel::{par_chunks, par_map, Parallelism, MAX_THREADS};
pub use tree::{ParseTreeBackendError, Tree, TreeBackend, TreeParams};
