//! Error types for the machine-learning substrate.

/// Errors produced while building datasets or training models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrainError {
    /// The training set is empty.
    EmptyDataset,
    /// The training set contains only one class; a discriminative model
    /// cannot be fit.
    SingleClass,
    /// A sample's feature count disagrees with the dataset's.
    FeatureMismatch {
        /// Features the dataset expects per sample.
        expected: usize,
        /// Features the offending sample carried.
        got: usize,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "cannot train on an empty dataset"),
            TrainError::SingleClass => {
                write!(
                    f,
                    "training set contains a single class; nothing to discriminate"
                )
            }
            TrainError::FeatureMismatch { expected, got } => {
                write!(f, "sample has {got} features, dataset expects {expected}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = TrainError::FeatureMismatch {
            expected: 11,
            got: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("11") && msg.contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrainError>();
    }
}
