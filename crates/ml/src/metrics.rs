//! Feature-importance and class-separability metrics (paper Section IV-A).
//!
//! Three statistics rank the attack's 11 layout features:
//!
//! - **Information gain** of the best binary split on the feature with
//!   respect to the label (larger = more important).
//! - **|Pearson correlation|** between the feature and the 0/1 label
//!   (larger = more important).
//! - **Fisher's discriminant ratio** `(μ₊ − μ₋)² / (σ₊² + σ₋²)` (larger =
//!   the classes are more separable on this feature).

use crate::data::Dataset;

/// Information gain (in nats) of the best single threshold on `values`
/// against `labels`.
///
/// # Panics
///
/// Panics if `values` and `labels` have different lengths.
///
/// # Examples
///
/// ```
/// use sm_ml::metrics::information_gain;
///
/// let values = [0.0, 1.0, 2.0, 3.0];
/// let labels = [false, false, true, true];
/// // A perfect split recovers the full label entropy, ln 2.
/// assert!((information_gain(&values, &labels) - std::f64::consts::LN_2).abs() < 1e-9);
/// ```
pub fn information_gain(values: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(values.len(), labels.len(), "one label per value");
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let pos_total = labels.iter().filter(|&&l| l).count() as f64;
    let neg_total = n as f64 - pos_total;
    let h = entropy(pos_total, neg_total);
    let mut best = 0.0f64;
    let mut lp = 0.0f64;
    let mut ln = 0.0f64;
    for w in 0..n - 1 {
        let i = order[w];
        if labels[i] {
            lp += 1.0;
        } else {
            ln += 1.0;
        }
        // Only cut between distinct values.
        if values[order[w]] == values[order[w + 1]] {
            continue;
        }
        let l = lp + ln;
        let r = n as f64 - l;
        let gain = h
            - (l / n as f64) * entropy(lp, ln)
            - (r / n as f64) * entropy(pos_total - lp, neg_total - ln);
        if gain > best {
            best = gain;
        }
    }
    best
}

/// Absolute Pearson correlation between a numeric feature and the 0/1 label.
///
/// Returns 0 when either variable is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(values: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(values.len(), labels.len(), "one label per value");
    let n = values.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let my = labels.iter().filter(|&&l| l).count() as f64 / n;
    let mx = values.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (v, &l) in values.iter().zip(labels) {
        let dx = v - mx;
        let dy = f64::from(u8::from(l)) - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        (sxy / (sxx.sqrt() * syy.sqrt())).abs()
    }
}

/// Fisher's discriminant ratio `(μ₊ − μ₋)² / (σ₊² + σ₋²)`.
///
/// Returns 0 when either class is empty, and `f64::INFINITY` when the class
/// means differ but both variances are zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fisher_ratio(values: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(values.len(), labels.len(), "one label per value");
    let (mut sp, mut np) = (0.0f64, 0.0f64);
    let (mut sn, mut nn) = (0.0f64, 0.0f64);
    for (v, &l) in values.iter().zip(labels) {
        if l {
            sp += v;
            np += 1.0;
        } else {
            sn += v;
            nn += 1.0;
        }
    }
    if np == 0.0 || nn == 0.0 {
        return 0.0;
    }
    let mp = sp / np;
    let mn = sn / nn;
    let mut vp = 0.0f64;
    let mut vn = 0.0f64;
    for (v, &l) in values.iter().zip(labels) {
        if l {
            vp += (v - mp) * (v - mp);
        } else {
            vn += (v - mn) * (v - mn);
        }
    }
    vp /= np;
    vn /= nn;
    let num = (mp - mn) * (mp - mn);
    if vp + vn == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / (vp + vn)
    }
}

/// All three metrics for every feature of a dataset, in feature order.
pub fn rank_features(data: &Dataset) -> Vec<FeatureScore> {
    (0..data.num_features())
        .map(|j| {
            let col = data.column(j);
            FeatureScore {
                feature: j,
                info_gain: information_gain(&col, data.labels()),
                correlation: correlation(&col, data.labels()),
                fisher: fisher_ratio(&col, data.labels()),
            }
        })
        .collect()
}

/// The three importance metrics of one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureScore {
    /// Feature index.
    pub feature: usize,
    /// Best-split information gain (nats).
    pub info_gain: f64,
    /// |Pearson correlation| with the label.
    pub correlation: f64,
    /// Fisher's discriminant ratio.
    pub fisher: f64,
}

/// Fraction of samples a classifier labels correctly.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "one prediction per label");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(actual).filter(|(p, a)| p == a).count() as f64 / predicted.len() as f64
}

fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 || pos == 0.0 || neg == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    let q = neg / n;
    -(p * p.ln() + q * q.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn information_gain_of_uninformative_feature_is_zero() {
        let values = [1.0, 1.0, 1.0, 1.0];
        let labels = [true, false, true, false];
        assert_eq!(information_gain(&values, &labels), 0.0);
    }

    #[test]
    fn information_gain_handles_duplicated_values() {
        let values = [0.0, 0.0, 1.0, 1.0, 1.0];
        let labels = [false, false, true, true, false];
        let g = information_gain(&values, &labels);
        assert!(g > 0.0 && g < std::f64::consts::LN_2);
    }

    #[test]
    fn correlation_of_perfectly_aligned_feature_is_one() {
        let values = [0.0, 0.0, 1.0, 1.0];
        let labels = [false, false, true, true];
        assert!((correlation(&values, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_sign_is_dropped() {
        let values = [3.0, 2.0, 1.0, 0.0];
        let labels = [false, false, true, true];
        assert!(correlation(&values, &labels) > 0.85);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        assert_eq!(correlation(&[5.0, 5.0], &[true, false]), 0.0);
        assert_eq!(correlation(&[1.0, 2.0], &[true, true]), 0.0);
    }

    #[test]
    fn fisher_ratio_orders_separability() {
        // Well separated classes...
        let tight = fisher_ratio(&[0.0, 0.1, 10.0, 10.1], &[false, false, true, true]);
        // ... vs heavily overlapping ones.
        let loose = fisher_ratio(&[0.0, 5.0, 4.0, 9.0], &[false, false, true, true]);
        assert!(tight > loose);
    }

    #[test]
    fn fisher_ratio_degenerate_cases() {
        assert_eq!(fisher_ratio(&[1.0, 2.0], &[true, true]), 0.0);
        assert_eq!(
            fisher_ratio(&[1.0, 1.0, 2.0, 2.0], &[true, true, false, false]),
            f64::INFINITY
        );
        assert_eq!(fisher_ratio(&[1.0, 1.0], &[true, false]), 0.0);
    }

    #[test]
    fn rank_features_identifies_the_signal_column() {
        let mut ds = crate::data::Dataset::new(2);
        for i in 0..100 {
            // Feature 0 carries the label; feature 1 is a constant.
            ds.push(&[i as f64, 7.0], i >= 50).expect("ok");
        }
        let scores = rank_features(&ds);
        assert!(scores[0].info_gain > scores[1].info_gain);
        assert!(scores[0].correlation > scores[1].correlation);
        assert!(scores[0].fisher > scores[1].fisher);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(
            accuracy(&[true, false, true], &[true, true, true]),
            2.0 / 3.0
        );
        assert_eq!(accuracy(&[], &[]), 0.0);
    }
}
