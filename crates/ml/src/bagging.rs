//! Bootstrap aggregation with soft voting — the paper's ensemble.
//!
//! Each of `n` trees is fit on a bootstrap resample. At inference, tree `i`
//! outputs `pᵢ = Pᵢ/(Pᵢ+Nᵢ)` from its leaf counts (Eq. (1)); the ensemble
//! probability is their mean (Eq. (3)); the binary answer thresholds that
//! mean (Eq. (2)). The attack's LoC-size control (Section III-F) comes from
//! exposing the probability and sweeping the threshold instead of fixing it
//! at 0.5.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;
use crate::learners::TreeLearner;
use crate::parallel::{par_map, Parallelism};
use crate::tree::Tree;

/// Default number of REPTrees in Weka's `Bagging` meta-classifier.
pub const DEFAULT_BAGGING_TREES: usize = 10;

/// A trained bagging ensemble.
///
/// # Examples
///
/// ```
/// use sm_ml::bagging::Bagging;
/// use sm_ml::data::Dataset;
/// use sm_ml::learners::RepTreeLearner;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..200 {
///     ds.push(&[i as f64], i >= 100)?;
/// }
/// let model = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 42)?;
/// assert!(model.proba(&[150.0]) > 0.9);
/// assert!(model.proba(&[10.0]) < 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bagging {
    trees: Vec<Tree>,
}

impl Bagging {
    /// Fits `n_trees` trees, each on an independent bootstrap resample of
    /// `data`, using `learner` as the base classifier. `seed` makes the
    /// ensemble fully deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] if `data` is empty and
    /// [`TrainError::SingleClass`] if it contains only one class.
    pub fn fit<L: TreeLearner + Sync>(
        data: &Dataset,
        learner: &L,
        n_trees: usize,
        seed: u64,
    ) -> Result<Self, TrainError> {
        Self::fit_with(data, learner, n_trees, seed, Parallelism::Sequential)
    }

    /// [`Bagging::fit`] with an explicit [`Parallelism`] setting. Each tree
    /// derives its own RNG from `seed` and its tree index, so members are
    /// independent of fit order and the ensemble is bit-identical across
    /// every parallelism setting.
    ///
    /// # Errors
    ///
    /// Same as [`Bagging::fit`].
    pub fn fit_with<L: TreeLearner + Sync>(
        data: &Dataset,
        learner: &L,
        n_trees: usize,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, TrainError> {
        data.check_trainable()?;
        let trees = par_map(parallelism, n_trees, |t| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let idx = data.bootstrap_indices(&mut rng);
            learner.fit_tree(data, &idx, &mut rng)
        })
        .into_iter()
        .collect::<Result<Vec<Tree>, TrainError>>()?;
        Ok(Self { trees })
    }

    /// Ensemble probability that `x` is positive: the soft-vote mean of the
    /// member trees' leaf probabilities (Eq. (3)).
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer features than the ensemble was trained on.
    pub fn proba(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.proba(x)).sum();
        sum / self.trees.len() as f64
    }

    /// Binary answer at threshold `t` (Eq. (2) generalised: the paper's
    /// default corresponds to `t = 0.5`).
    pub fn predict_at(&self, x: &[f64], t: f64) -> bool {
        self.proba(x) >= t
    }

    /// Binary answer at the default 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_at(x, 0.5)
    }

    /// Number of member trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across members (a size/runtime proxy).
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::num_nodes).sum()
    }

    /// The member trees.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learners::{RandomTreeLearner, RepTreeLearner};
    use rand::Rng;
    use rand::SeedableRng;

    fn noisy(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..n {
            let a: f64 = r.gen_range(0.0..1.0);
            let b: f64 = r.gen_range(0.0..1.0);
            let label = if r.gen_bool(0.12) { a <= 0.5 } else { a > 0.5 };
            ds.push(&[a, b], label).expect("ok");
        }
        ds
    }

    #[test]
    fn bagging_rejects_untrainable_data() {
        let empty = Dataset::new(2);
        assert!(Bagging::fit(&empty, &RepTreeLearner::default(), 5, 0).is_err());
        let mut one = Dataset::new(1);
        one.push(&[1.0], true).expect("ok");
        one.push(&[2.0], true).expect("ok");
        assert!(Bagging::fit(&one, &RepTreeLearner::default(), 5, 0).is_err());
    }

    #[test]
    fn soft_vote_is_mean_of_members() {
        let ds = noisy(300);
        let m = Bagging::fit(&ds, &RepTreeLearner::default(), 7, 1).expect("fit");
        let x = [0.7, 0.3];
        let mean: f64 = m.trees().iter().map(|t| t.proba(&x)).sum::<f64>() / 7.0;
        assert!((m.proba(&x) - mean).abs() < 1e-12);
    }

    #[test]
    fn probability_is_monotone_in_threshold() {
        let ds = noisy(300);
        let m = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 2).expect("fit");
        let x = [0.8, 0.5];
        // predict_at must flip from true to false as t rises past proba.
        let p = m.proba(&x);
        assert!(m.predict_at(&x, p - 1e-9));
        assert!(!m.predict_at(&x, p + 1e-9));
    }

    #[test]
    fn ensembles_beat_noise() {
        let ds = noisy(800);
        let m = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 3).expect("fit");
        let test = noisy(800); // same distribution, same seed => same set; accept in-sample here
        let acc = (0..test.len())
            .filter(|&i| m.predict(test.row(i)) == test.label(i))
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.8, "bagging accuracy {acc}");
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_seed() {
        let ds = noisy(200);
        let a = Bagging::fit(&ds, &RepTreeLearner::default(), 5, 9).expect("fit");
        let b = Bagging::fit(&ds, &RepTreeLearner::default(), 5, 9).expect("fit");
        assert_eq!(a, b);
        let c = Bagging::fit(&ds, &RepTreeLearner::default(), 5, 10).expect("fit");
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        let ds = noisy(300);
        for learner_trees in [(5usize, 11u64), (10, 12)] {
            let (n, seed) = learner_trees;
            let seq = Bagging::fit_with(
                &ds,
                &RepTreeLearner::default(),
                n,
                seed,
                Parallelism::Sequential,
            )
            .expect("fit");
            for par in [
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Auto,
            ] {
                let p =
                    Bagging::fit_with(&ds, &RepTreeLearner::default(), n, seed, par).expect("fit");
                assert_eq!(seq, p, "{par:?}");
            }
        }
    }

    #[test]
    fn rep_bagging_is_far_smaller_than_random_tree_bagging() {
        let ds = noisy(600);
        let rep = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 4).expect("fit");
        let rnd = Bagging::fit(&ds, &RandomTreeLearner::default(), 10, 4).expect("fit");
        assert!(
            rep.total_nodes() * 2 < rnd.total_nodes(),
            "REP {} nodes vs RandomTree {} nodes",
            rep.total_nodes(),
            rnd.total_nodes()
        );
    }
}
