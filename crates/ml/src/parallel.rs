//! Deterministic parallel execution primitives shared by the whole
//! pipeline.
//!
//! Every parallel site in this workspace follows the same discipline:
//! work is split into *contiguous index ranges*, each worker computes an
//! independent partial result with no shared mutable state, and partial
//! results are merged *in index order* on the calling thread. Because no
//! computation depends on chunk boundaries and the merge order is fixed,
//! the result is bit-identical for any [`Parallelism`] setting — including
//! floating-point accumulations, which always happen in the same order.
//!
//! [`par_chunks`] is the range-sharded primitive; [`par_map`] is the
//! per-item convenience built on it.

use std::ops::Range;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Upper bound on worker threads, whatever the configuration says.
pub const MAX_THREADS: usize = 64;

/// How much parallelism a pipeline stage may use.
///
/// The setting only affects wall-clock time, never results: all consumers
/// in this workspace are bit-identical across variants (see the module
/// docs). Parses from the strings the CLI's `--threads` flag accepts:
///
/// ```
/// use sm_ml::parallel::Parallelism;
///
/// assert_eq!("auto".parse(), Ok(Parallelism::Auto));
/// assert_eq!("sequential".parse(), Ok(Parallelism::Sequential));
/// assert_eq!("4".parse(), Ok(Parallelism::Threads(4)));
/// assert!("0".parse::<Parallelism>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Single-threaded: run everything on the calling thread.
    Sequential,
    /// Exactly this many worker threads (clamped to [`MAX_THREADS`]).
    Threads(usize),
    /// One worker per available CPU (`std::thread::available_parallelism`).
    #[default]
    Auto,
}

/// Error parsing a [`Parallelism`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError(String);

impl std::fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected 'auto', 'sequential', or a thread count >= 1, got '{}'",
            self.0
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(Parallelism::Auto),
            "seq" | "sequential" => Ok(Parallelism::Sequential),
            other => match other.parse::<usize>() {
                Ok(0) | Err(_) => Err(ParseParallelismError(s.to_owned())),
                Ok(n) => Ok(Parallelism::Threads(n)),
            },
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "sequential"),
            Parallelism::Threads(n) => write!(f, "{n}"),
            Parallelism::Auto => write!(f, "auto"),
        }
    }
}

impl Parallelism {
    /// Number of workers to use for `n_items` independent work items:
    /// the configured count clamped to `[1, MAX_THREADS]` and never more
    /// than the number of items.
    pub fn worker_count(self, n_items: usize) -> usize {
        let configured = match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n,
            Parallelism::Auto => std::thread::available_parallelism().map_or(4, |p| p.get()),
        };
        configured.clamp(1, MAX_THREADS).min(n_items.max(1))
    }
}

/// Splits `0..n_items` into one contiguous range per worker, runs `worker`
/// on each range (in parallel for multi-worker settings), and returns the
/// per-range results in range order.
///
/// Deterministic by construction as long as `worker`'s output for a range
/// does not depend on which other ranges exist — the contract every caller
/// in this workspace upholds.
pub fn par_chunks<R, F>(par: Parallelism, n_items: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if n_items == 0 {
        return Vec::new();
    }
    let workers = par.worker_count(n_items);
    if workers <= 1 {
        return vec![worker(0..n_items)];
    }
    let chunk = n_items.div_ceil(workers);
    let worker = &worker;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..n_items)
            .step_by(chunk)
            .map(|start| {
                let range = start..(start + chunk).min(n_items);
                s.spawn(move |_| worker(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Splits `0..n_items` into consecutive shards of `shard` items (the last
/// one possibly shorter), in index order.
///
/// This is the persistence-boundary counterpart of [`par_chunks`]'s
/// worker split: a resumable driver scores one shard at a time and
/// checkpoints between shards, so the state at a shard boundary is a pure
/// function of which shards completed — independent of parallelism *and*
/// of the shard size itself (a resume may use a different `shard` than
/// the interrupted run). `shard` is clamped to at least 1.
pub fn shard_ranges(n_items: usize, shard: usize) -> impl Iterator<Item = Range<usize>> {
    let shard = shard.max(1);
    (0..n_items)
        .step_by(shard)
        .map(move |start| start..(start + shard).min(n_items))
}

/// Maps `f` over `0..n_items`, returning the results in index order.
/// Parallel per [`par_chunks`]; bit-identical to a sequential map.
pub fn par_map<T, F>(par: Parallelism, n_items: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(n_items);
    for part in par_chunks(par, n_items, |range| range.map(&f).collect::<Vec<T>>()) {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_accepts_the_cli_spellings() {
        assert_eq!("AUTO".parse(), Ok(Parallelism::Auto));
        assert_eq!("Seq".parse(), Ok(Parallelism::Sequential));
        assert_eq!("8".parse(), Ok(Parallelism::Threads(8)));
        assert!("".parse::<Parallelism>().is_err());
        assert!("-2".parse::<Parallelism>().is_err());
        assert!("two".parse::<Parallelism>().is_err());
    }

    #[test]
    fn display_roundtrips_through_fromstr() {
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(3),
            Parallelism::Auto,
        ] {
            assert_eq!(p.to_string().parse(), Ok(p));
        }
    }

    #[test]
    fn worker_count_respects_items_and_bounds() {
        assert_eq!(Parallelism::Sequential.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(100), 4);
        assert_eq!(Parallelism::Threads(4).worker_count(2), 2);
        assert_eq!(Parallelism::Threads(0).worker_count(100), 1);
        assert_eq!(
            Parallelism::Threads(1000).worker_count(usize::MAX),
            MAX_THREADS
        );
        assert_eq!(Parallelism::Threads(4).worker_count(0), 1);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn par_chunks_covers_the_range_in_order() {
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(3),
            Parallelism::Threads(7),
        ] {
            let parts = par_chunks(par, 10, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..10).collect::<Vec<usize>>(), "{par:?}");
        }
    }

    #[test]
    fn par_chunks_empty_input_spawns_nothing() {
        let parts = par_chunks(Parallelism::Threads(4), 0, |r| r.len());
        assert!(parts.is_empty());
    }

    #[test]
    fn shard_ranges_tile_the_index_space_exactly_once() {
        for (n, shard) in [(10, 3), (10, 10), (10, 100), (10, 1), (1, 4), (7, 7)] {
            let ranges: Vec<Range<usize>> = shard_ranges(n, shard).collect();
            let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<usize>>(), "n={n} shard={shard}");
            for r in &ranges {
                assert!(r.len() <= shard, "n={n} shard={shard} range {r:?}");
            }
        }
        assert_eq!(shard_ranges(0, 4).count(), 0);
        // A zero shard is clamped, not an infinite loop.
        assert_eq!(shard_ranges(3, 0).count(), 3);
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let expected: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
        ] {
            let got = par_map(par, 37, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(got, expected, "{par:?}");
        }
    }

    #[test]
    fn float_accumulation_is_bit_identical_across_settings() {
        // Per-chunk sums merged in order reproduce the sequential order of
        // additions only if the caller merges per-item values; par_map
        // guarantees item order, so a fold over its output is exact.
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let seq: f64 = xs.iter().sum();
        for par in [Parallelism::Threads(2), Parallelism::Threads(9)] {
            let mapped = par_map(par, xs.len(), |i| xs[i]);
            let total: f64 = mapped.iter().sum();
            assert_eq!(seq.to_bits(), total.to_bits());
        }
    }
}
