//! Random Forest: Bagging of unpruned `RandomTree`s with Weka defaults.
//!
//! This is the classifier of the conference version [18] that the paper's
//! REPTree-based Bagging replaces; Table II compares the two.

use serde::{Deserialize, Serialize};

use crate::bagging::Bagging;
use crate::data::Dataset;
use crate::error::TrainError;
use crate::learners::RandomTreeLearner;

/// Default number of trees in Weka's `RandomForest`.
pub const DEFAULT_FOREST_TREES: usize = 100;

/// A trained random forest.
///
/// # Examples
///
/// ```
/// use sm_ml::data::Dataset;
/// use sm_ml::forest::RandomForest;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..200 {
///     ds.push(&[i as f64], i >= 100)?;
/// }
/// let model = RandomForest::fit(&ds, 25, 7)?;
/// assert!(model.predict(&[180.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    inner: Bagging,
}

impl RandomForest {
    /// Fits a forest of `n_trees` RandomTrees (default `K = ⌊log₂ m⌋ + 1`
    /// features per node).
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from the underlying [`Bagging::fit`].
    pub fn fit(data: &Dataset, n_trees: usize, seed: u64) -> Result<Self, TrainError> {
        let inner = Bagging::fit(data, &RandomTreeLearner::default(), n_trees, seed)?;
        Ok(Self { inner })
    }

    /// Fits with Weka's default 100 trees.
    ///
    /// # Errors
    ///
    /// Propagates [`TrainError`] from the underlying [`Bagging::fit`].
    pub fn fit_default(data: &Dataset, seed: u64) -> Result<Self, TrainError> {
        Self::fit(data, DEFAULT_FOREST_TREES, seed)
    }

    /// Soft-vote probability that `x` is positive.
    pub fn proba(&self, x: &[f64]) -> f64 {
        self.inner.proba(x)
    }

    /// Binary answer at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.inner.predict(x)
    }

    /// Number of member trees.
    pub fn num_trees(&self) -> usize {
        self.inner.num_trees()
    }

    /// The underlying bagging ensemble.
    pub fn as_bagging(&self) -> &Bagging {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forest_learns_diagonal_boundary() {
        let mut ds = Dataset::new(2);
        let mut r = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..800 {
            let a: f64 = r.gen_range(0.0..1.0);
            let b: f64 = r.gen_range(0.0..1.0);
            ds.push(&[a, b], a + b > 1.0).expect("ok");
        }
        let m = RandomForest::fit(&ds, 30, 1).expect("fit");
        assert!(m.predict(&[0.9, 0.9]));
        assert!(!m.predict(&[0.1, 0.1]));
        // Probability is graded near the boundary.
        let p = m.proba(&[0.5, 0.5]);
        assert!(p > 0.1 && p < 0.9, "boundary probability {p}");
    }

    #[test]
    fn default_tree_count_matches_weka() {
        assert_eq!(DEFAULT_FOREST_TREES, 100);
    }

    #[test]
    fn forest_propagates_training_errors() {
        let empty = Dataset::new(1);
        assert!(RandomForest::fit(&empty, 10, 0).is_err());
    }
}
