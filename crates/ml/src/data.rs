//! Datasets: row-major feature matrices with binary labels.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TrainError;

/// A binary-classification dataset stored row-major for cache-friendly
/// training and inference.
///
/// # Examples
///
/// ```
/// use sm_ml::data::Dataset;
///
/// let mut ds = Dataset::new(2);
/// ds.push(&[1.0, 2.0], true)?;
/// ds.push(&[3.0, 4.0], false)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.row(0), &[1.0, 2.0]);
/// assert!(ds.label(0));
/// # Ok::<(), sm_ml::error::TrainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    num_features: usize,
    x: Vec<f64>,
    y: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset whose samples carry `num_features` features.
    pub fn new(num_features: usize) -> Self {
        Self {
            num_features,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `n` samples.
    pub fn with_capacity(num_features: usize, n: usize) -> Self {
        Self {
            num_features,
            x: Vec::with_capacity(n * num_features),
            y: Vec::with_capacity(n),
        }
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::FeatureMismatch`] if `features.len()` differs
    /// from the dataset's feature count.
    pub fn push(&mut self, features: &[f64], label: bool) -> Result<(), TrainError> {
        if features.len() != self.num_features {
            return Err(TrainError::FeatureMismatch {
                expected: self.num_features,
                got: features.len(),
            });
        }
        self.x.extend_from_slice(features);
        self.y.push(label);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Features per sample.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.num_features..(i + 1) * self.num_features]
    }

    /// Feature `j` of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn feature(&self, i: usize, j: usize) -> f64 {
        assert!(j < self.num_features, "feature index out of range");
        self.x[i * self.num_features + j]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> bool {
        self.y[i]
    }

    /// Count of positive samples.
    pub fn num_positive(&self) -> usize {
        self.y.iter().filter(|&&l| l).count()
    }

    /// Validates that the dataset is trainable (non-empty, two classes).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] or [`TrainError::SingleClass`].
    pub fn check_trainable(&self) -> Result<(), TrainError> {
        if self.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let pos = self.num_positive();
        if pos == 0 || pos == self.len() {
            return Err(TrainError::SingleClass);
        }
        Ok(())
    }

    /// All sample indices (`0..len`), the identity index set trees train on.
    pub fn all_indices(&self) -> Vec<u32> {
        (0..self.len() as u32).collect()
    }

    /// A bootstrap resample of the index set: `len` draws with replacement.
    pub fn bootstrap_indices<R: Rng>(&self, rng: &mut R) -> Vec<u32> {
        let n = self.len();
        (0..n).map(|_| rng.gen_range(0..n as u32)).collect()
    }

    /// Shuffles `0..len` and splits it into a grow set of `frac·len` indices
    /// and a held-out set of the rest (used by reduced-error pruning).
    pub fn split_indices<R: Rng>(&self, frac: f64, rng: &mut R) -> (Vec<u32>, Vec<u32>) {
        let mut idx = self.all_indices();
        idx.shuffle(rng);
        let cut = ((self.len() as f64) * frac).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        let held = idx.split_off(cut.min(idx.len()));
        (idx, held)
    }

    /// Column `j` as an owned vector (used by the feature metrics).
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.len()).map(|i| self.feature(i, j)).collect()
    }

    /// All labels as a slice.
    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    /// Appends every sample of `other`, preserving order (used to assemble
    /// cross-validation folds from per-design sample caches).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::FeatureMismatch`] if the feature counts differ;
    /// `self` is unchanged in that case.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), TrainError> {
        if other.num_features != self.num_features {
            return Err(TrainError::FeatureMismatch {
                expected: self.num_features,
                got: other.num_features,
            });
        }
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        Ok(())
    }
}

impl Extend<(Vec<f64>, bool)> for Dataset {
    /// Extends the dataset, panicking on feature-count mismatch (use
    /// [`Dataset::push`] for fallible insertion).
    fn extend<T: IntoIterator<Item = (Vec<f64>, bool)>>(&mut self, iter: T) {
        for (row, label) in iter {
            self.push(&row, label)
                .expect("extend requires matching feature counts");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_set(n: usize) -> Dataset {
        let mut ds = Dataset::new(3);
        for i in 0..n {
            ds.push(&[i as f64, (i * 2) as f64, -(i as f64)], i % 2 == 0)
                .expect("3 features");
        }
        ds
    }

    #[test]
    fn push_rejects_wrong_arity() {
        let mut ds = Dataset::new(3);
        let err = ds.push(&[1.0], true).expect_err("arity mismatch");
        assert_eq!(
            err,
            TrainError::FeatureMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn rows_and_columns_agree() {
        let ds = sample_set(5);
        assert_eq!(ds.row(2), &[2.0, 4.0, -2.0]);
        assert_eq!(ds.column(1), vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        assert_eq!(ds.feature(3, 2), -3.0);
    }

    #[test]
    fn trainable_checks() {
        assert_eq!(
            Dataset::new(1).check_trainable(),
            Err(TrainError::EmptyDataset)
        );
        let mut one_class = Dataset::new(1);
        one_class.push(&[0.0], true).expect("ok");
        one_class.push(&[1.0], true).expect("ok");
        assert_eq!(one_class.check_trainable(), Err(TrainError::SingleClass));
        assert!(sample_set(4).check_trainable().is_ok());
    }

    #[test]
    fn bootstrap_draws_with_replacement() {
        let ds = sample_set(100);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let idx = ds.bootstrap_indices(&mut rng);
        assert_eq!(idx.len(), 100);
        let distinct: std::collections::HashSet<_> = idx.iter().collect();
        assert!(distinct.len() < 100, "bootstrap should repeat some indices");
        assert!(idx.iter().all(|&i| (i as usize) < 100));
    }

    #[test]
    fn split_partitions_all_indices() {
        let ds = sample_set(30);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (grow, held) = ds.split_indices(2.0 / 3.0, &mut rng);
        assert_eq!(grow.len() + held.len(), 30);
        assert_eq!(grow.len(), 20);
        let mut all: Vec<u32> = grow.iter().chain(held.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn split_never_leaves_either_side_empty_for_n_ge_2() {
        let ds = sample_set(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (grow, held) = ds.split_indices(0.999, &mut rng);
        assert!(!grow.is_empty() && !held.is_empty());
    }

    #[test]
    fn extend_from_concatenates_in_order() {
        let mut a = sample_set(3);
        let b = sample_set(5);
        a.extend_from(&b).expect("same arity");
        assert_eq!(a.len(), 8);
        assert_eq!(a.row(5), b.row(2));
        assert_eq!(a.label(5), b.label(2));
        let mut wrong = Dataset::new(2);
        assert!(wrong.extend_from(&b).is_err());
        assert!(wrong.is_empty(), "failed extend must not mutate");
    }

    #[test]
    fn extend_appends_rows() {
        let mut ds = Dataset::new(2);
        ds.extend(vec![(vec![1.0, 2.0], true), (vec![3.0, 4.0], false)]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_positive(), 1);
    }
}
