//! Logistic regression: the simple linear classifier the tree ensembles
//! are measured against.
//!
//! The prior work [5] modelled match likelihood with plain linear
//! regression; the conference version [18] reports RandomForest as the
//! best of "all classifiers we experimented". This module provides the
//! linear end of that spectrum — useful as a baseline and for showing why
//! the non-linearly-separable pair features (paper Section III-C) need
//! trees.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::error::TrainError;

/// L2-regularised logistic regression trained by mini-batch gradient
/// descent on standardised features.
///
/// # Examples
///
/// ```
/// use sm_ml::data::Dataset;
/// use sm_ml::linear::LogisticRegression;
///
/// let mut ds = Dataset::new(1);
/// for i in 0..200 {
///     ds.push(&[i as f64], i >= 100)?;
/// }
/// let model = LogisticRegression::fit(&ds, &Default::default(), 1)?;
/// assert!(model.proba(&[180.0]) > 0.5);
/// assert!(model.proba(&[20.0]) < 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Weight per (standardised) feature.
    weights: Vec<f64>,
    bias: f64,
    /// Per-feature mean used for standardisation.
    mean: Vec<f64>,
    /// Per-feature standard deviation (1 where degenerate).
    std: Vec<f64>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticParams {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self {
            epochs: 40,
            learning_rate: 0.1,
            l2: 1e-4,
            batch: 256,
        }
    }
}

impl LogisticRegression {
    /// Fits the model.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::EmptyDataset`] / [`TrainError::SingleClass`]
    /// for untrainable data.
    pub fn fit(data: &Dataset, params: &LogisticParams, seed: u64) -> Result<Self, TrainError> {
        data.check_trainable()?;
        let m = data.num_features();
        let n = data.len();

        // Standardise: the pair features span orders of magnitude.
        let mut mean = vec![0.0; m];
        for i in 0..n {
            for (j, mu) in mean.iter_mut().enumerate() {
                *mu += data.feature(i, j);
            }
        }
        for mu in &mut mean {
            *mu /= n as f64;
        }
        let mut std = vec![0.0; m];
        for i in 0..n {
            for j in 0..m {
                let d = data.feature(i, j) - mean[j];
                std[j] += d * d;
            }
        }
        for s in &mut std {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        let mut w = vec![0.0; m];
        let mut b = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut grad = vec![0.0; m];
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(params.batch) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                let mut gb = 0.0;
                for &i in chunk {
                    let mut z = b;
                    for j in 0..m {
                        z += w[j] * (data.feature(i, j) - mean[j]) / std[j];
                    }
                    let p = sigmoid(z);
                    let err = p - f64::from(u8::from(data.label(i)));
                    for (j, g) in grad.iter_mut().enumerate() {
                        *g += err * (data.feature(i, j) - mean[j]) / std[j];
                    }
                    gb += err;
                }
                let scale = params.learning_rate / chunk.len() as f64;
                for j in 0..m {
                    w[j] -= scale * (grad[j] + params.l2 * w[j] * chunk.len() as f64);
                }
                b -= scale * gb;
            }
        }
        Ok(Self {
            weights: w,
            bias: b,
            mean,
            std,
        })
    }

    /// Probability that `x` is positive.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the trained feature count.
    pub fn proba(&self, x: &[f64]) -> f64 {
        let mut z = self.bias;
        for (j, w) in self.weights.iter().enumerate() {
            z += w * (x[j] - self.mean[j]) / self.std[j];
        }
        sigmoid(z)
    }

    /// Hard classification at 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.proba(x) >= 0.5
    }

    /// Fitted weights in standardised space (interpretable importances).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn linear_data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            ds.push(&[a, b], a + b > 0.0).expect("2 features");
        }
        ds
    }

    fn xor_data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            ds.push(&[a, b], (a > 0.5) != (b > 0.5))
                .expect("2 features");
        }
        ds
    }

    fn accuracy(m: &LogisticRegression, ds: &Dataset) -> f64 {
        (0..ds.len())
            .filter(|&i| m.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64
    }

    #[test]
    fn learns_linear_boundaries_well() {
        let ds = linear_data(1_000);
        let m = LogisticRegression::fit(&ds, &LogisticParams::default(), 1).expect("fit");
        assert!(accuracy(&m, &ds) > 0.95);
    }

    #[test]
    fn fails_on_xor_unlike_trees() {
        // The motivating contrast of paper Section III-C: pair data is not
        // linearly separable.
        let ds = xor_data(1_000);
        let m = LogisticRegression::fit(&ds, &LogisticParams::default(), 1).expect("fit");
        assert!(accuracy(&m, &ds) < 0.7, "linear model should fail on XOR");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tree = crate::tree::Tree::fit(
            &ds,
            &ds.all_indices(),
            crate::tree::TreeParams::default(),
            &mut rng,
        )
        .expect("fit");
        let tree_acc = (0..ds.len())
            .filter(|&i| tree.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(tree_acc > 0.95, "the tree handles XOR");
    }

    #[test]
    fn probabilities_are_calibrated_endpoints() {
        let ds = linear_data(500);
        let m = LogisticRegression::fit(&ds, &LogisticParams::default(), 1).expect("fit");
        assert!(m.proba(&[1.0, 1.0]) > 0.9);
        assert!(m.proba(&[-1.0, -1.0]) < 0.1);
        let p = m.proba(&[0.0, 0.0]);
        assert!(
            p > 0.2 && p < 0.8,
            "boundary point should be uncertain, got {p}"
        );
    }

    #[test]
    fn rejects_untrainable_data() {
        let ds = Dataset::new(2);
        assert!(LogisticRegression::fit(&ds, &LogisticParams::default(), 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = linear_data(300);
        let a = LogisticRegression::fit(&ds, &LogisticParams::default(), 7).expect("fit");
        let b = LogisticRegression::fit(&ds, &LogisticParams::default(), 7).expect("fit");
        assert_eq!(a, b);
    }

    #[test]
    fn standardisation_handles_constant_features() {
        let mut ds = Dataset::new(2);
        for i in 0..100 {
            ds.push(&[i as f64, 5.0], i >= 50).expect("2 features");
        }
        let m = LogisticRegression::fit(&ds, &LogisticParams::default(), 1).expect("fit");
        assert!(m.proba(&[99.0, 5.0]).is_finite());
        assert!(m.predict(&[99.0, 5.0]));
    }
}
