//! Serde round-trip tests: trained models and datasets must survive
//! serialisation unchanged (an attacker checkpoints models between the
//! training and testing stages; `serde_json` is a dev-dependency used
//! only to exercise the derives).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_ml::learners::RepTreeLearner as Rep;
use sm_ml::learners::{RepTreeLearner, TreeLearner};
use sm_ml::tree::{Tree, TreeParams};
use sm_ml::{Bagging, Dataset, GaussianNaiveBayes, KNearest};

fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(3);
    for i in 0..n {
        let x = i as f64;
        ds.push(&[x, x * 0.5, -x], i % 3 != 0).expect("3 features");
    }
    ds
}

#[test]
fn dataset_roundtrips() {
    let ds = dataset(50);
    let json = serde_json::to_string(&ds).expect("serialises");
    let back: Dataset = serde_json::from_str(&json).expect("parses");
    assert_eq!(ds, back);
}

#[test]
fn tree_roundtrips_and_predicts_identically() {
    let ds = dataset(200);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let tree = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng).expect("fit");
    let back: Tree =
        serde_json::from_str(&serde_json::to_string(&tree).expect("serialises")).expect("parses");
    assert_eq!(tree, back);
    for i in 0..ds.len() {
        assert_eq!(tree.proba(ds.row(i)), back.proba(ds.row(i)));
    }
}

#[test]
fn bagging_roundtrips_and_predicts_identically() {
    let ds = dataset(300);
    let model = Bagging::fit(&ds, &Rep::default(), 5, 2).expect("fit");
    let back: Bagging =
        serde_json::from_str(&serde_json::to_string(&model).expect("serialises")).expect("parses");
    assert_eq!(model, back);
    for i in (0..ds.len()).step_by(7) {
        assert_eq!(model.proba(ds.row(i)), back.proba(ds.row(i)));
    }
}

#[test]
fn rep_tree_learner_config_roundtrips() {
    let learner = RepTreeLearner::default();
    let back: RepTreeLearner =
        serde_json::from_str(&serde_json::to_string(&learner).expect("serialises"))
            .expect("parses");
    assert_eq!(learner, back);
    // And the restored config trains identically.
    let ds = dataset(120);
    let mut r1 = ChaCha8Rng::seed_from_u64(3);
    let mut r2 = ChaCha8Rng::seed_from_u64(3);
    assert_eq!(
        learner
            .fit_tree(&ds, &ds.all_indices(), &mut r1)
            .expect("fit"),
        back.fit_tree(&ds, &ds.all_indices(), &mut r2).expect("fit")
    );
}

#[test]
fn alternative_classifiers_roundtrip() {
    let ds = dataset(100);
    let nb = GaussianNaiveBayes::fit(&ds).expect("fit");
    let nb_back: GaussianNaiveBayes =
        serde_json::from_str(&serde_json::to_string(&nb).expect("serialises")).expect("parses");
    assert_eq!(nb, nb_back);

    // JSON may perturb the last ULP of standardised floats, so compare
    // k-NN behaviourally rather than structurally.
    let knn = KNearest::fit(&ds, 3).expect("fit");
    let knn_back: KNearest =
        serde_json::from_str(&serde_json::to_string(&knn).expect("serialises")).expect("parses");
    assert_eq!(knn.k(), knn_back.k());
    for i in (0..ds.len()).step_by(9) {
        assert!((knn.proba(ds.row(i)) - knn_back.proba(ds.row(i))).abs() < 1e-9);
    }
}
