//! Property-based tests of the ML substrate: probability bounds, metric
//! ranges, soft-voting arithmetic, and dataset round-trips.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_ml::learners::{RandomTreeLearner, RepTreeLearner, TreeLearner};
use sm_ml::metrics::{correlation, fisher_ratio, information_gain};
use sm_ml::tree::{Tree, TreeBackend, TreeParams};
use sm_ml::{Bagging, Dataset, Parallelism};

/// A random small binary dataset with at least one sample per class.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (prop::collection::vec(-1000.0f64..1000.0, 3), any::<bool>()),
        8..64,
    )
    .prop_map(|rows| {
        let mut ds = Dataset::new(3);
        for (i, (x, y)) in rows.iter().enumerate() {
            // Force both classes to exist.
            let label = if i == 0 {
                true
            } else if i == 1 {
                false
            } else {
                *y
            };
            ds.push(x, label).expect("3 features");
        }
        ds
    })
}

proptest! {
    #[test]
    fn dataset_roundtrips_rows(rows in prop::collection::vec(
        (prop::collection::vec(-1e6f64..1e6, 4), any::<bool>()), 1..50)) {
        let mut ds = Dataset::new(4);
        for (x, y) in &rows {
            ds.push(x, *y).expect("4 features");
        }
        prop_assert_eq!(ds.len(), rows.len());
        for (i, (x, y)) in rows.iter().enumerate() {
            prop_assert_eq!(ds.row(i), x.as_slice());
            prop_assert_eq!(ds.label(i), *y);
        }
        let pos = rows.iter().filter(|(_, y)| *y).count();
        prop_assert_eq!(ds.num_positive(), pos);
    }

    #[test]
    fn tree_probabilities_are_probabilities(ds in arb_dataset(), q in prop::collection::vec(-1000.0f64..1000.0, 3)) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tree = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng)
            .expect("fit");
        let p = tree.proba(&q);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(tree.predict(&q), p >= 0.5);
    }

    #[test]
    fn rep_tree_never_grows_beyond_unpruned(ds in arb_dataset()) {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let unpruned = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng)
            .expect("fit");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rep = RepTreeLearner::default()
            .fit_tree(&ds, &ds.all_indices(), &mut rng)
            .expect("fit");
        // Pruned trees are grown on 2/3 of the data and then collapsed;
        // they cannot exceed the unpruned tree by more than the growth
        // difference allows — sanity-bound the size.
        prop_assert!(rep.num_nodes() <= 2 * unpruned.num_nodes() + 1);
        prop_assert!(rep.num_leaves() >= 1);
        prop_assert!(rep.depth() < 64);
    }

    #[test]
    fn bagging_soft_vote_is_the_tree_mean(ds in arb_dataset(), q in prop::collection::vec(-1000.0f64..1000.0, 3)) {
        if let Ok(m) = Bagging::fit(&ds, &RepTreeLearner::default(), 5, 3) {
            let mean: f64 =
                m.trees().iter().map(|t| t.proba(&q)).sum::<f64>() / m.num_trees() as f64;
            prop_assert!((m.proba(&q) - mean).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&m.proba(&q)));
        }
    }

    #[test]
    fn information_gain_bounded_by_label_entropy(
        values in prop::collection::vec(-100.0f64..100.0, 2..100),
        seed in any::<u64>()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<bool> = (0..values.len()).map(|_| rng.gen_bool(0.5)).collect();
        let pos = labels.iter().filter(|&&l| l).count() as f64;
        let n = labels.len() as f64;
        let h = if pos == 0.0 || pos == n {
            0.0
        } else {
            let p = pos / n;
            -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
        };
        let g = information_gain(&values, &labels);
        prop_assert!(g >= 0.0);
        prop_assert!(g <= h + 1e-9, "gain {g} exceeds entropy {h}");
    }

    #[test]
    fn correlation_is_in_unit_interval(
        values in prop::collection::vec(-1e6f64..1e6, 2..100),
        seed in any::<u64>()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<bool> = (0..values.len()).map(|_| rng.gen_bool(0.4)).collect();
        let c = correlation(&values, &labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    #[test]
    fn fisher_ratio_is_non_negative(
        values in prop::collection::vec(-1e6f64..1e6, 2..100),
        seed in any::<u64>()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let labels: Vec<bool> = (0..values.len()).map(|_| rng.gen_bool(0.6)).collect();
        let f = fisher_ratio(&values, &labels);
        prop_assert!(f >= 0.0);
    }

    #[test]
    fn bootstrap_indices_stay_in_range(n in 1usize..500, seed in any::<u64>()) {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f64], i % 2 == 0).expect("1 feature");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let idx = ds.bootstrap_indices(&mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| (i as usize) < n));
    }

    #[test]
    fn compiled_ensemble_matches_bagging_bitwise(
        ds in arb_dataset(),
        queries in prop::collection::vec(prop::collection::vec(-1000.0f64..1000.0, 3), 1..20),
        n_trees in 1usize..8,
        seed in any::<u64>()
    ) {
        // The tentpole parity property: lowering a trained ensemble into
        // the flattened node table must not change a single probability
        // bit, scalar or batched (same operand order end to end).
        if let Ok(m) = Bagging::fit(&ds, &RepTreeLearner::default(), n_trees, seed) {
            let compiled = m.compile();
            for q in &queries {
                prop_assert_eq!(m.proba(q).to_bits(), compiled.proba(q).to_bits());
            }
            let stride = 3;
            let rows: Vec<f64> = queries.iter().flatten().copied().collect();
            let mut batch = vec![0.0; queries.len()];
            compiled.proba_batch(&rows, stride, &mut batch);
            for (q, b) in queries.iter().zip(&batch) {
                prop_assert_eq!(m.proba(q).to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn binned_tree_matches_reference_bitwise(
        ds in arb_dataset(),
        depth in 1usize..16,
        bins in 2usize..40,
        subset in prop::option::of(1usize..4),
        seed in any::<u64>()
    ) {
        // The training-kernel parity property: the binned histogram build
        // must grow the exact tree the reference scan grows — same node
        // layout, same thresholds bit-for-bit, same counts — across random
        // datasets, depth caps, bin counts, feature subsets and RNG seeds.
        let params = TreeParams {
            max_depth: depth,
            bins,
            feature_subset: subset,
            ..TreeParams::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let reference = Tree::fit(
            &ds,
            &ds.all_indices(),
            TreeParams { backend: TreeBackend::Reference, ..params },
            &mut rng,
        ).expect("reference fit");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let binned = Tree::fit(
            &ds,
            &ds.all_indices(),
            TreeParams { backend: TreeBackend::Binned, ..params },
            &mut rng,
        ).expect("binned fit");
        prop_assert_eq!(&reference, &binned);
        // Bitwise equality including every f64 threshold: the vendored
        // serde_json prints shortest-roundtrip floats, so equal strings
        // mean equal bits.
        prop_assert_eq!(
            serde_json::to_string(&reference).expect("serialize"),
            serde_json::to_string(&binned).expect("serialize")
        );
    }

    #[test]
    fn binned_learners_match_reference_through_pruning_and_bagging(
        ds in arb_dataset(),
        n_trees in 1usize..6,
        seed in any::<u64>()
    ) {
        // End-to-end learner parity: REPTree (grow + reduced-error prune +
        // backfit) and RandomTree (random subsets), alone and under
        // Bagging's per-tree bootstrap/seeding, must be backend-invariant.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rep_ref = RepTreeLearner::with_backend(TreeBackend::Reference)
            .fit_tree(&ds, &ds.all_indices(), &mut rng).expect("fit");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rep_bin = RepTreeLearner::with_backend(TreeBackend::Binned)
            .fit_tree(&ds, &ds.all_indices(), &mut rng).expect("fit");
        prop_assert_eq!(rep_ref, rep_bin);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rt_ref = RandomTreeLearner::with_backend(TreeBackend::Reference)
            .fit_tree(&ds, &ds.all_indices(), &mut rng).expect("fit");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rt_bin = RandomTreeLearner::with_backend(TreeBackend::Binned)
            .fit_tree(&ds, &ds.all_indices(), &mut rng).expect("fit");
        prop_assert_eq!(rt_ref, rt_bin);

        let bag_ref = Bagging::fit_with(
            &ds,
            &RepTreeLearner::with_backend(TreeBackend::Reference),
            n_trees,
            seed,
            Parallelism::Sequential,
        );
        let bag_bin = Bagging::fit_with(
            &ds,
            &RepTreeLearner::with_backend(TreeBackend::Binned),
            n_trees,
            seed,
            Parallelism::Threads(3),
        );
        match (bag_ref, bag_bin) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }

    #[test]
    fn split_indices_partition(n in 2usize..300, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let mut ds = Dataset::new(1);
        for i in 0..n {
            ds.push(&[i as f64], i % 2 == 0).expect("1 feature");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (a, b) = ds.split_indices(frac, &mut rng);
        prop_assert!(!a.is_empty() && !b.is_empty());
        let mut all: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }
}
