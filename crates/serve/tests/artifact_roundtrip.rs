//! Serialization round-trip determinism: a model loaded from an artifact
//! must reproduce the freshly-trained model's scoring — the whole LoC
//! histogram, every slot, every probability — bit for bit. This extends
//! the workspace's parallel-determinism guarantee across a save/load
//! cycle (and therefore across processes).

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainOptions, TrainedAttack};
use sm_attack::{Parallelism, TreeBackend};
use sm_layout::{SplitLayer, Suite};
use sm_serve::artifact::{ArtifactError, ModelArtifact, TrainMeta};

fn leave_one_out(
    scale: f64,
    split: u8,
    config: &AttackConfig,
) -> (TrainedAttack, sm_layout::SplitView) {
    let views = Suite::ispd2011_like(scale)
        .expect("valid scale")
        .split_all(SplitLayer::new(split).expect("valid layer"));
    let train: Vec<_> = views[1..].iter().collect();
    let model = TrainedAttack::train(config, &train, None).expect("trains");
    (model, views.into_iter().next().expect("five views"))
}

#[test]
fn loaded_model_reproduces_the_loc_histogram_bit_for_bit() {
    for (config, split) in [
        (AttackConfig::imp9(), 8),
        (AttackConfig::imp11().with_y_limit(), 8),
        (AttackConfig::imp7(), 6),
    ] {
        let (fresh, test_view) = leave_one_out(0.01, split, &config);

        let dir = std::env::temp_dir().join(format!("smserve_roundtrip_{}", config.name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.artifact");
        ModelArtifact::from_trained(&fresh, TrainMeta::default())
            .save(&path)
            .expect("saves");
        let loaded = ModelArtifact::load(&path)
            .expect("loads")
            .into_trained()
            .expect("coherent");
        assert_eq!(
            fresh, loaded,
            "{}: model must survive the disk",
            config.name
        );

        // Scoring through the reloaded model — with a different parallelism
        // setting for good measure — must be indistinguishable.
        let fresh_scored = test_view.clone();
        let a = fresh.score(
            &fresh_scored,
            &ScoreOptions {
                parallelism: Parallelism::Sequential,
                ..ScoreOptions::default()
            },
        );
        let b = loaded.score(
            &test_view,
            &ScoreOptions {
                parallelism: Parallelism::Threads(3),
                ..ScoreOptions::default()
            },
        );
        assert_eq!(
            a.hist, b.hist,
            "{}: LoC histogram must be bit-identical after reload",
            config.name
        );
        assert_eq!(a, b, "{}: full scored view must be identical", config.name);
        assert_eq!(
            a.mean_loc_at(0.5).to_bits(),
            b.mean_loc_at(0.5).to_bits(),
            "{}: derived LoC stats must match to the last bit",
            config.name
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The training backend is a how, not a what: a binned-trained model must
/// serialize to the byte-identical artifact of a reference-trained one
/// (same payload, same checksum — `TrainOptions` is not part of the wire
/// format), and reloading it must reproduce the LoC histogram of both the
/// in-process binned model and the reference-trained model, bit for bit.
#[test]
fn binned_trained_artifact_is_backend_invariant_on_disk_and_in_scoring() {
    let views = Suite::ispd2011_like(0.01)
        .expect("valid scale")
        .split_all(SplitLayer::new(8).expect("valid layer"));
    let train: Vec<_> = views[1..].iter().collect();
    let config = AttackConfig::imp9();
    let reference = TrainedAttack::train_opt(
        &config,
        &train,
        None,
        TrainOptions {
            backend: TreeBackend::Reference,
        },
    )
    .expect("reference train");
    let binned = TrainedAttack::train_opt(
        &config,
        &train,
        None,
        TrainOptions {
            backend: TreeBackend::Binned,
        },
    )
    .expect("binned train");

    let encoded_ref = ModelArtifact::from_trained(&reference, TrainMeta::default()).encode();
    let encoded_bin = ModelArtifact::from_trained(&binned, TrainMeta::default()).encode();
    assert_eq!(
        encoded_ref, encoded_bin,
        "artifact bytes (payload + checksum) must not depend on the training backend"
    );

    let dir = std::env::temp_dir().join("smserve_roundtrip_binned");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("model.artifact");
    ModelArtifact::from_trained(&binned, TrainMeta::default())
        .save(&path)
        .expect("saves");
    let loaded = ModelArtifact::load(&path)
        .expect("loads")
        .into_trained()
        .expect("coherent");

    let opts = ScoreOptions::default();
    let scored_loaded = loaded.score(&views[0], &opts);
    let scored_binned = binned.score(&views[0], &opts);
    let scored_reference = reference.score(&views[0], &opts);
    assert_eq!(
        scored_loaded.hist, scored_binned.hist,
        "reloaded binned model must reproduce the in-process LoC histogram"
    );
    assert_eq!(
        scored_loaded.hist, scored_reference.hist,
        "reloaded binned model must reproduce the reference-trained LoC histogram"
    );
    assert_eq!(scored_loaded, scored_reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_errors_are_typed_not_panics() {
    let (model, _) = leave_one_out(0.01, 8, &AttackConfig::imp9());
    let art = ModelArtifact::from_trained(&model, TrainMeta::default());
    let text = art.encode();

    // Flip one payload byte (still valid UTF-8): checksum must catch it.
    let mut corrupted = text.clone().into_bytes();
    let payload_start = text.find('\n').expect("two lines") + 1;
    let idx = payload_start + 100;
    corrupted[idx] = if corrupted[idx] == b'5' { b'6' } else { b'5' };
    let corrupted = String::from_utf8(corrupted).expect("ascii flip keeps utf8");
    if corrupted != text {
        assert!(matches!(
            ModelArtifact::decode(&corrupted),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    // A future-versioned artifact must be refused, not misread.
    let future = text.replacen("\"version\":1", "\"version\":2", 1);
    assert!(matches!(
        ModelArtifact::decode(&future),
        Err(ArtifactError::UnsupportedVersion {
            found: 2,
            supported: 1
        })
    ));

    // Loading a nonexistent path is a typed Io error.
    assert!(matches!(
        ModelArtifact::load(std::path::Path::new("/nonexistent/m.artifact")),
        Err(ArtifactError::Io(_))
    ));
}
