//! Chaos suite for the hardened inference service.
//!
//! Each test points one class of hostile traffic at a live server — a
//! slow-loris drip, a torn mid-frame disconnect, an oversized request
//! line, raw garbage bytes, a connect flood past the queue bound — and
//! asserts three things every time:
//!
//! 1. the fault is answered per contract (typed `Error` reply, `Busy`
//!    shed, or silent close) instead of wedging or crashing a worker;
//! 2. a concurrent well-behaved client keeps getting `ScorePairs`
//!    results **bit-identical** to the in-process model, within a
//!    deadline;
//! 3. the final [`StatsSnapshot`] accounts for every shed, timeout and
//!    torn frame — nothing disappears from the counters.
//!
//! The matrix runs twice: once against the NDJSON wire (protocol v1)
//! and once against the length-prefixed binary wire (protocol v2),
//! whose framing faults have their own shapes — torn length prefixes,
//! headers declaring payloads past the cap, frames that lose sync.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use sm_attack::attack::{AttackConfig, TrainedAttack};
use sm_attack::Parallelism;
use sm_layout::{SplitLayer, Suite};
use sm_serve::artifact::{ModelArtifact, TrainMeta};
use sm_serve::client::{ClientTimeouts, RetryPolicy, RetryingClient};
use sm_serve::protocol::{binary, ErrorCode, Request, Response, StatsSnapshot, Wire};
use sm_serve::registry::publish;
use sm_serve::server::{ModelSource, ServeOptions, ServerHandle};

/// Trained once per test binary: the encoded artifact every test's server
/// hosts, plus feature rows and their expected (in-process) scores.
struct Fixture {
    encoded: String,
    features: Vec<Vec<f64>>,
    local_probs: Vec<f64>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let views = Suite::ispd2011_like(0.01)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid layer"));
        let train: Vec<_> = views[1..].iter().collect();
        let model =
            TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("model trains");
        let vpins = views[0].vpins();
        let cap = vpins.len().min(12);
        let features: Vec<Vec<f64>> = (0..cap)
            .flat_map(|i| ((i + 1)..cap).map(move |j| (i, j)))
            .map(|(i, j)| model.config().features.compute(&vpins[i], &vpins[j]))
            .collect();
        assert!(!features.is_empty(), "fixture needs a real pair batch");
        let local_probs = features.iter().map(|x| model.model().proba(x)).collect();
        Fixture {
            encoded: ModelArtifact::from_trained(&model, TrainMeta::default()).encode(),
            features,
            local_probs,
        }
    })
}

/// A fresh copy of the fixture model for one server instance.
fn served_model() -> TrainedAttack {
    ModelArtifact::decode(&fixture().encoded)
        .expect("fixture artifact decodes")
        .into_trained()
        .expect("fixture artifact is coherent")
}

/// Two pinned workers (this suite runs on 1-CPU CI hosts), sequential
/// batches, and whatever deadlines the individual test dials in.
fn chaos_options(request_timeout_ms: u64, idle_timeout_ms: u64) -> ServeOptions {
    ServeOptions {
        workers: Parallelism::Threads(2),
        batch: Parallelism::Sequential,
        request_timeout_ms,
        idle_timeout_ms,
        ..ServeOptions::default()
    }
}

/// The well-behaved side of every chaos test: a retrying client that
/// scores `requests` batches of `rows` pairs and asserts each result is
/// bit-identical to the in-process model. Panics if the whole run takes
/// longer than `deadline` — "available" means answering, not eventually
/// answering.
fn run_good_client(addr: &str, requests: usize, rows: usize, deadline: Duration) -> RetryingClient {
    run_good_client_wire(addr, requests, rows, deadline, Wire::Ndjson)
}

/// [`run_good_client`] over an explicit wire format, so every fault in
/// the matrix can be witnessed by a well-behaved client speaking either
/// protocol version.
fn run_good_client_wire(
    addr: &str,
    requests: usize,
    rows: usize,
    deadline: Duration,
    wire: Wire,
) -> RetryingClient {
    let fx = fixture();
    let rows = rows.min(fx.features.len());
    let features = fx.features[..rows].to_vec();
    let expected = &fx.local_probs[..rows];
    let mut client = RetryingClient::new_wire(
        addr,
        ClientTimeouts {
            connect_ms: 2_000,
            io_ms: 5_000,
        },
        RetryPolicy {
            max_attempts: 25,
            base_backoff_ms: 20,
            max_backoff_ms: 200,
            jitter_seed: 0xC4A05,
        },
        wire,
    );
    let start = Instant::now();
    for round in 0..requests {
        match client
            .call(&Request::ScorePairs {
                features: features.clone(),
                model_id: None,
            })
            .expect("well-behaved client must keep succeeding under chaos")
        {
            Response::Scores { probs } => {
                assert_eq!(probs.len(), expected.len(), "round {round}");
                for (k, (l, r)) in expected.iter().zip(&probs).enumerate() {
                    assert_eq!(
                        l.to_bits(),
                        r.to_bits(),
                        "round {round}, pair {k}: chaos next door must not perturb scores"
                    );
                }
            }
            other => panic!("unexpected scores reply: {other:?}"),
        }
    }
    assert!(
        start.elapsed() < deadline,
        "good client blew its {deadline:?} deadline: {:?}",
        start.elapsed()
    );
    client
}

/// Shuts the server down through an already-working retrying client,
/// closes that client (so the worker serving it sees a clean EOF), and
/// returns the client's `(retries, busy_retries)` alongside the server's
/// final counters.
fn shutdown_and_join(
    mut client: RetryingClient,
    handle: ServerHandle,
) -> (u64, u64, StatsSnapshot) {
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    let counters = (client.retries(), client.busy_retries());
    drop(client);
    let stats = handle.join().expect("clean server exit");
    (counters.0, counters.1, stats)
}

/// Misbehaving peer: a raw socket with helpers for each fault shape.
struct FaultStream {
    stream: TcpStream,
}

impl FaultStream {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("fault stream connects");
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        Self { stream }
    }

    /// Fire-and-forget write; the server hanging up on us mid-blast is an
    /// expected outcome, not a test failure.
    fn blast(&mut self, bytes: &[u8]) {
        let _ = self.stream.write_all(bytes);
        let _ = self.stream.flush();
    }

    /// Slow-loris: one byte, pause, repeat. Stops early if the server
    /// hangs up.
    fn drip(&mut self, bytes: &[u8], pause: Duration) {
        for &b in bytes {
            if self.stream.write_all(&[b]).is_err() {
                break;
            }
            let _ = self.stream.flush();
            std::thread::sleep(pause);
        }
    }

    /// Reads one binary-framed reply and decodes it. `None` means EOF,
    /// reset or read timeout — the server closed (or never answered)
    /// this connection.
    fn read_binary_response(&mut self) -> Option<Response> {
        let mut header = [0u8; binary::HEADER_LEN];
        self.stream.read_exact(&mut header).ok()?;
        let h = binary::decode_header(header, u64::MAX).expect("server sends valid headers");
        let mut payload = vec![0u8; h.len as usize];
        self.stream.read_exact(&mut payload).ok()?;
        Some(binary::decode_response(h.frame_type, &payload).expect("server frames decode"))
    }

    /// Reads one reply line. `None` means EOF, reset or read timeout —
    /// i.e. the server closed (or never answered) this connection.
    fn read_line(&mut self) -> Option<String> {
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match self.stream.read(&mut byte) {
                Ok(0) | Err(_) => {
                    return if line.is_empty() {
                        None
                    } else {
                        Some(String::from_utf8_lossy(&line).into_owned())
                    }
                }
                Ok(_) if byte[0] == b'\n' => {
                    return Some(String::from_utf8_lossy(&line).into_owned())
                }
                Ok(_) => line.push(byte[0]),
            }
        }
    }
}

#[test]
fn slow_loris_is_cut_off_by_the_request_deadline() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(300, 2_000))
        .expect("binds");
    let addr = handle.addr();

    // The loris sends the first few bytes of a valid request, then stalls
    // forever. The mid-request deadline (300 ms from the first byte) must
    // cut it off with a typed Timeout reply.
    let loris = std::thread::spawn(move || {
        let mut s = FaultStream::connect(addr);
        s.drip(b"\"Hea", Duration::from_millis(50));
        s.read_line()
    });

    // Meanwhile the other worker keeps serving bit-exact scores.
    let good = run_good_client(&addr.to_string(), 10, 6, Duration::from_secs(20));

    let reply = loris.join().expect("loris thread");
    let reply = reply.expect("loris gets a reply before the close");
    assert!(reply.contains("\"Error\""), "{reply}");
    assert!(reply.contains("Timeout"), "{reply}");

    let (retries, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert_eq!(
        stats.errors, 1,
        "the timeout reply is the only error: {stats:?}"
    );
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
    assert_eq!(retries, 0, "nothing should have needed a retry");
}

#[test]
fn torn_mid_frame_disconnects_are_counted_not_fatal() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(2_000, 2_000))
        .expect("binds");
    let addr = handle.addr();

    // Half a frame, then a vanishing peer: no newline ever arrives.
    let mut torn = FaultStream::connect(addr);
    torn.blast(b"\"Heal");
    drop(torn);

    let good = run_good_client(&addr.to_string(), 10, 6, Duration::from_secs(20));

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(
        stats.io_errors, 1,
        "torn frame must be accounted: {stats:?}"
    );
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn oversized_lines_get_a_typed_reply_not_an_unbounded_buffer() {
    let mut options = chaos_options(5_000, 5_000);
    options.max_request_bytes = 1_024;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    // Feed exactly the cap, give the server time to consume it, then push
    // past the cap. Two phases keep the server's receive queue empty at
    // close time, so the TooLarge reply is deterministically readable
    // (closing with unread bytes would RST the reply away).
    let mut big = FaultStream::connect(addr);
    big.blast(&[b'x'; 1_024]);
    std::thread::sleep(Duration::from_millis(150));
    big.blast(&[b'x'; 100]);
    let reply = big.read_line().expect("typed rejection before the close");
    assert!(reply.contains("\"Error\""), "{reply}");
    assert!(reply.contains("TooLarge"), "{reply}");
    assert!(
        big.read_line().is_none(),
        "an over-cap connection cannot be resynchronized and must be closed"
    );
    drop(big);

    // 1 row ≈ 200 bytes of JSON: the good client fits under the tiny cap.
    let good = run_good_client(&addr.to_string(), 10, 1, Duration::from_secs(20));

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.errors, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn garbage_bytes_get_error_replies_and_the_connection_survives() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(2_000, 2_000))
        .expect("binds");
    let addr = handle.addr();

    let mut garbage = FaultStream::connect(addr);
    // Invalid UTF-8, then syntactically-valid-but-meaningless JSON: both
    // must earn a typed BadRequest without killing the connection.
    garbage.blast(b"\x00\xfe\xffnoise\n");
    let reply = garbage.read_line().expect("reply to invalid utf-8");
    assert!(reply.contains("\"Error\""), "{reply}");
    assert!(reply.contains("BadRequest"), "{reply}");
    garbage.blast(b"{\"definitely\":\"not a request\"}\n");
    let reply = garbage.read_line().expect("reply to unknown request");
    assert!(reply.contains("\"Error\""), "{reply}");
    assert!(reply.contains("BadRequest"), "{reply}");
    // Same socket, now well-formed: still serviced.
    garbage.blast(b"\"Health\"\n");
    let reply = garbage.read_line().expect("health reply after garbage");
    assert!(reply.contains("\"Health\""), "{reply}");
    drop(garbage);

    let good = run_good_client(&addr.to_string(), 10, 6, Duration::from_secs(20));

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.errors, 2, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn hot_reload_under_load_drops_nothing_and_swaps_scores_atomically() {
    // Two genuinely different models sharing a feature width: model A is
    // the split-8 fixture, model B is trained against split layer 6, so
    // their probabilities differ on the same rows — which is what lets
    // every response be attributed to exactly one version bit-exactly.
    let fx = fixture();
    let model_a = served_model();
    let views_b = Suite::ispd2011_like(0.01)
        .expect("valid scale")
        .split_all(SplitLayer::new(6).expect("valid layer"));
    let train_b: Vec<_> = views_b[1..].iter().collect();
    let model_b =
        TrainedAttack::train(&AttackConfig::imp9(), &train_b, None).expect("model B trains");
    let rows = fx.features.len().min(6);
    let features = fx.features[..rows].to_vec();
    let probs_a: Vec<f64> = features.iter().map(|x| model_a.model().proba(x)).collect();
    let probs_b: Vec<f64> = features.iter().map(|x| model_b.model().proba(x)).collect();
    assert!(
        probs_a.iter().zip(&probs_b).any(|(a, b)| a != b),
        "fixture models must be distinguishable for version attribution"
    );

    // Registry: "stable" (default) serves model A forever; "swap" starts
    // as A and is republished as B mid-flood.
    let dir = std::env::temp_dir().join("smserve_chaos_reload");
    let _ = std::fs::remove_dir_all(&dir);
    let meta = |layer: &str| TrainMeta {
        split_layer: layer.into(),
        ..TrainMeta::default()
    };
    publish(
        &dir,
        "stable",
        &ModelArtifact::from_trained(&model_a, meta("V8")),
        true,
    )
    .expect("publishes stable");
    publish(
        &dir,
        "swap",
        &ModelArtifact::from_trained(&model_a, meta("V8")),
        false,
    )
    .expect("publishes swap@A");

    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        None,
        "127.0.0.1:0",
        chaos_options(5_000, 5_000),
    )
    .expect("binds");
    let addr = handle.addr();

    // Well-behaved flood on the default model for the whole duration:
    // "stable" keeps serving model A bit-identically across the swap.
    let addr_str = addr.to_string();
    let good =
        std::thread::spawn(move || run_good_client(&addr_str, 30, 6, Duration::from_secs(30)));

    // One *pinned connection* routing to "swap" by id: the same TCP
    // stream must survive the reload and flip versions exactly once.
    let mut swap_client = RetryingClient::new(
        &addr.to_string(),
        ClientTimeouts {
            connect_ms: 2_000,
            io_ms: 5_000,
        },
        RetryPolicy {
            max_attempts: 25,
            base_backoff_ms: 20,
            max_backoff_ms: 200,
            jitter_seed: 0x50A9,
        },
    );
    let score_swap = |client: &mut RetryingClient| -> Vec<f64> {
        match client
            .call(&Request::ScorePairs {
                features: features.clone(),
                model_id: Some("swap".into()),
            })
            .expect("swap-routed request succeeds")
        {
            Response::Scores { probs } => probs,
            other => panic!("unexpected scores reply: {other:?}"),
        }
    };
    let bits = |probs: &[f64]| -> Vec<u64> { probs.iter().map(|p| p.to_bits()).collect() };
    for round in 0..5 {
        assert_eq!(
            bits(&score_swap(&mut swap_client)),
            bits(&probs_a),
            "pre-swap round {round} must serve model A"
        );
    }

    // Republish "swap" as model B, then reload over the *same pinned
    // connection* — mid-flood, while the good client keeps hammering.
    publish(
        &dir,
        "swap",
        &ModelArtifact::from_trained(&model_b, meta("V6")),
        false,
    )
    .expect("republishes swap@B");
    match swap_client.call(&Request::Reload).expect("reload succeeds") {
        Response::Reloaded {
            default_model,
            models,
            reloads,
        } => {
            assert_eq!(default_model, "stable");
            assert_eq!(models, vec!["stable".to_owned(), "swap".to_owned()]);
            assert_eq!(reloads, 1);
        }
        other => panic!("unexpected reload reply: {other:?}"),
    }
    for round in 0..5 {
        assert_eq!(
            bits(&score_swap(&mut swap_client)),
            bits(&probs_b),
            "post-swap round {round} must serve model B bit-identically to \
             loading the new artifact in-process"
        );
    }
    assert_eq!(
        swap_client.retries(),
        0,
        "the pinned connection never needed a reconnect across the swap"
    );

    let good = good.join().expect("good client thread");
    let (good_retries, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(good_retries, 0, "no connection was dropped: {stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.reloads, 1, "exactly one catalog swap: {stats:?}");
    assert_eq!(stats.model_id, "stable", "default unchanged: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connect_flood_past_the_queue_bound_is_shed_and_fully_accounted() {
    let mut options = chaos_options(2_000, 500);
    options.max_queue = 2;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    // Good client first (it may still get shed while the flood holds the
    // queue — its retry policy absorbs that, and `busy_retries()` lets us
    // audit exactly how often).
    let addr_str = addr.to_string();
    let good =
        std::thread::spawn(move || run_good_client(&addr_str, 25, 6, Duration::from_secs(30)));

    // 12 connections against 2 workers + a queue of 2: most must be shed
    // with Busy immediately instead of blocking the accept loop.
    let mut flood: Vec<FaultStream> = (0..12).map(|_| FaultStream::connect(addr)).collect();
    let mut flood_busy = 0u64;
    for conn in &mut flood {
        // Shed connections have a Busy line buffered (readable even after
        // the server's close); held ones are silently idle-closed within
        // 500 ms, which reads as EOF here.
        match conn.read_line() {
            Some(line) if line.contains("\"Busy\"") => {
                assert!(line.contains("retry_after_ms"), "{line}");
                flood_busy += 1;
            }
            Some(line) => panic!("unexpected flood reply: {line}"),
            None => {}
        }
    }
    drop(flood);
    assert!(
        flood_busy >= 8,
        "12 connections into 2 workers + queue of 2 must shed most: {flood_busy}"
    );

    let good = good.join().expect("good client thread");
    // Let any still-queued (already closed) flood sockets drain before
    // the shutdown connection comes in, so it cannot be shed.
    std::thread::sleep(Duration::from_millis(600));
    let (_, client_busy, stats) = shutdown_and_join(good, handle);

    // Every Busy the server handed out was received by someone we control:
    // the flood counted theirs, the good client counted its own.
    assert_eq!(
        stats.shed,
        flood_busy + client_busy,
        "every shed connection must be accounted: {stats:?}, flood_busy={flood_busy}, client_busy={client_busy}"
    );
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
}

// ---------------------------------------------------------------------
// The same fault matrix against the binary wire (protocol v2). Framing
// faults look different here — a torn length prefix, a header declaring
// a payload past the cap, a frame that loses sync — and each one has
// its own contract entry in the counter table.
// ---------------------------------------------------------------------

#[test]
fn binary_slow_loris_is_cut_off_by_the_request_deadline() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(300, 2_000))
        .expect("binds");
    let addr = handle.addr();

    // The loris drips the first half of a valid binary header (starting
    // with the 0xB5 magic, so the wire is detected as binary) and then
    // stalls. The mid-request deadline must cut it off with a typed
    // Timeout reply — framed as binary, because that is this
    // connection's wire.
    let frame = binary::encode_request(&Request::Health);
    let loris = std::thread::spawn(move || {
        let mut s = FaultStream::connect(addr);
        s.drip(&frame[..4], Duration::from_millis(50));
        s.read_binary_response()
    });

    // Meanwhile a binary good client keeps getting bit-exact scores.
    let good = run_good_client_wire(
        &addr.to_string(),
        10,
        6,
        Duration::from_secs(20),
        Wire::Binary,
    );

    let reply = loris.join().expect("loris thread");
    match reply.expect("loris gets a binary reply before the close") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Timeout, "{message}");
        }
        other => panic!("unexpected loris reply: {other:?}"),
    }

    let (retries, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert_eq!(
        stats.errors, 1,
        "the timeout reply is the only error: {stats:?}"
    );
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
    assert_eq!(retries, 0, "nothing should have needed a retry");
}

#[test]
fn binary_torn_length_prefix_is_counted_not_fatal() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(2_000, 2_000))
        .expect("binds");
    let addr = handle.addr();

    // A valid frame minus its last three bytes, then a vanishing peer:
    // the declared length never arrives, exactly like an NDJSON line
    // that never saw its newline.
    let frame = binary::encode_request(&Request::Health);
    let mut torn = FaultStream::connect(addr);
    torn.blast(&frame[..frame.len() - 3]);
    drop(torn);

    let good = run_good_client_wire(
        &addr.to_string(),
        10,
        6,
        Duration::from_secs(20),
        Wire::Binary,
    );

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(
        stats.io_errors, 1,
        "torn binary frame must be accounted: {stats:?}"
    );
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn binary_header_declaring_past_the_cap_is_rejected_before_buffering() {
    let mut options = chaos_options(5_000, 5_000);
    options.max_request_bytes = 1_024;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    // Eight header bytes declaring a megabyte: the binary wire rejects
    // from the length prefix alone — no payload byte is ever buffered,
    // unlike NDJSON which must swallow a full cap's worth first.
    let mut big = FaultStream::connect(addr);
    big.blast(&binary::encode_header(binary::FRAME_JSON_REQUEST, 1 << 20));
    match big
        .read_binary_response()
        .expect("typed rejection before the close")
    {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::TooLarge, "{message}");
            assert!(message.contains("1024"), "cap in message: {message}");
        }
        other => panic!("unexpected oversize reply: {other:?}"),
    }
    assert!(
        big.read_binary_response().is_none(),
        "an over-cap connection cannot be resynchronized and must be closed"
    );
    drop(big);

    // 1 row of binary ScorePairs fits far under the tiny cap.
    let good = run_good_client_wire(
        &addr.to_string(),
        10,
        1,
        Duration::from_secs(20),
        Wire::Binary,
    );

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.errors, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn binary_garbage_frames_follow_the_framing_contract() {
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", chaos_options(2_000, 2_000))
        .expect("binds");
    let addr = handle.addr();

    // A well-delimited frame with a garbage payload: framing survives,
    // so — like a garbage NDJSON line — the reply is BadRequest and the
    // connection keeps serving.
    let mut garbage = FaultStream::connect(addr);
    let junk = b"definitely not a request";
    let mut frame = binary::encode_header(binary::FRAME_JSON_REQUEST, junk.len() as u32).to_vec();
    frame.extend_from_slice(junk);
    garbage.blast(&frame);
    match garbage
        .read_binary_response()
        .expect("reply to garbage payload")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected garbage reply: {other:?}"),
    }
    // Same socket, now well-formed: still serviced.
    garbage.blast(&binary::encode_request(&Request::Health));
    match garbage
        .read_binary_response()
        .expect("health reply after garbage")
    {
        Response::Health { .. } => {}
        other => panic!("unexpected health reply: {other:?}"),
    }
    drop(garbage);

    // A corrupt *header* (bad protocol version) loses frame sync: the
    // stream cannot be re-framed, so the reply closes the connection.
    let mut desync = FaultStream::connect(addr);
    desync.blast(&[binary::MAGIC0, binary::MAGIC1, 9, 0x01, 0, 0, 0, 0]);
    match desync
        .read_binary_response()
        .expect("reply to bad version header")
    {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest, "{message}");
        }
        other => panic!("unexpected bad-header reply: {other:?}"),
    }
    assert!(
        desync.read_binary_response().is_none(),
        "a desynced binary stream must be closed after the reply"
    );
    drop(desync);

    let good = run_good_client_wire(
        &addr.to_string(),
        10,
        6,
        Duration::from_secs(20),
        Wire::Binary,
    );

    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(stats.errors, 2, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn pipelined_flood_on_one_connection_cannot_starve_the_reactor() {
    // One connection blasts 10k pipelined binary frames at a server with a
    // SINGLE event loop — fairness must come from the per-turn frame
    // budget, not from reactor parallelism. A well-behaved client sharing
    // that loop must keep getting bit-exact answers within its deadline,
    // and every frame must land in the counters exactly once.
    const FRAMES: usize = 10_000;
    let mut options = chaos_options(30_000, 30_000);
    options.event_loops = 1;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    let pipeliner = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("pipeliner connects");
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut write_half = stream.try_clone().expect("clone");
        // Writer and reader run concurrently: the server is entitled to
        // exert backpressure mid-blast, so a single-threaded
        // write-everything-then-read could deadlock on full buffers.
        let writer = std::thread::spawn(move || {
            let frame = binary::encode_request(&Request::Health);
            let mut blob = Vec::with_capacity(frame.len() * FRAMES);
            for _ in 0..FRAMES {
                blob.extend_from_slice(&frame);
            }
            write_half.write_all(&blob).expect("pipelined frames land");
            write_half.flush().expect("flush");
        });
        let mut reader = std::io::BufReader::new(stream);
        for k in 0..FRAMES {
            let mut header = [0u8; binary::HEADER_LEN];
            reader
                .read_exact(&mut header)
                .unwrap_or_else(|e| panic!("reply {k} header: {e}"));
            let h = binary::decode_header(header, u64::MAX).expect("server sends valid headers");
            let mut payload = vec![0u8; h.len as usize];
            reader
                .read_exact(&mut payload)
                .unwrap_or_else(|e| panic!("reply {k} payload: {e}"));
            match binary::decode_response(h.frame_type, &payload).expect("server frames decode") {
                Response::Health { .. } => {}
                other => panic!("reply {k}: unexpected {other:?}"),
            }
        }
        writer.join().expect("writer thread");
    });

    // Shares the single event loop with the flood for its whole run.
    let good = run_good_client_wire(
        &addr.to_string(),
        15,
        6,
        Duration::from_secs(20),
        Wire::Binary,
    );
    pipeliner.join().expect("pipeliner thread");

    let (retries, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(retries, 0, "no retry needed: {stats:?}");
    assert_eq!(
        stats.requests,
        FRAMES as u64 + 15 + 1,
        "every pipelined frame, good-client request, and the shutdown \
         counted exactly once: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
}

#[test]
fn edge_triggered_reads_survive_dripped_and_coalesced_frames() {
    // The edge-triggered rearm hazards, provoked from userspace: a frame
    // dripped byte by byte (every readiness edge delivers a fragment), two
    // frames in one write (one edge, two frames — a level-triggered
    // one-frame-per-event habit would wedge the second forever), and a
    // frame split exactly at the header boundary (read returns WouldBlock
    // with a decoded header and no payload).
    let mut options = chaos_options(30_000, 30_000);
    options.event_loops = 1;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    let mut s = FaultStream::connect(addr);
    let frame = binary::encode_request(&Request::Health);
    s.drip(&frame, Duration::from_millis(5));
    match s.read_binary_response().expect("dripped frame answered") {
        Response::Health { .. } => {}
        other => panic!("unexpected dripped reply: {other:?}"),
    }

    let mut two = frame.clone();
    two.extend_from_slice(&binary::encode_request(&Request::ListModels));
    s.blast(&two);
    match s.read_binary_response().expect("first coalesced reply") {
        Response::Health { .. } => {}
        other => panic!("unexpected first reply: {other:?}"),
    }
    match s.read_binary_response().expect("second coalesced reply") {
        Response::Models { .. } => {}
        other => panic!("unexpected second reply: {other:?}"),
    }

    s.blast(&frame[..binary::HEADER_LEN]);
    std::thread::sleep(Duration::from_millis(100));
    s.blast(&frame[binary::HEADER_LEN..]);
    match s.read_binary_response().expect("split-at-header reply") {
        Response::Health { .. } => {}
        other => panic!("unexpected split reply: {other:?}"),
    }
    drop(s);

    let good = run_good_client_wire(
        &addr.to_string(),
        5,
        6,
        Duration::from_secs(20),
        Wire::Binary,
    );
    let (_, _, stats) = shutdown_and_join(good, handle);
    assert_eq!(
        stats.requests,
        4 + 5 + 1,
        "dripped + coalesced + split + good client + shutdown: {stats:?}"
    );
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.io_errors, 0, "{stats:?}");
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.shed, 0, "{stats:?}");
}

#[test]
fn connect_flood_sheds_binary_clients_with_full_accounting() {
    let mut options = chaos_options(2_000, 500);
    options.max_queue = 2;
    let handle = ServerHandle::bind(served_model(), "127.0.0.1:0", options).expect("binds");
    let addr = handle.addr();

    // The good client speaks binary; a shed `Busy` still arrives as an
    // NDJSON line (shedding happens before the first byte, so the server
    // cannot know the wire yet) and the client must cope.
    let addr_str = addr.to_string();
    let good = std::thread::spawn(move || {
        run_good_client_wire(&addr_str, 25, 6, Duration::from_secs(30), Wire::Binary)
    });

    let mut flood: Vec<FaultStream> = (0..12).map(|_| FaultStream::connect(addr)).collect();
    let mut flood_busy = 0u64;
    for conn in &mut flood {
        match conn.read_line() {
            Some(line) if line.contains("\"Busy\"") => {
                assert!(line.contains("retry_after_ms"), "{line}");
                flood_busy += 1;
            }
            Some(line) => panic!("unexpected flood reply: {line}"),
            None => {}
        }
    }
    drop(flood);
    assert!(
        flood_busy >= 8,
        "12 connections into 2 workers + queue of 2 must shed most: {flood_busy}"
    );

    let good = good.join().expect("good client thread");
    std::thread::sleep(Duration::from_millis(600));
    let (_, client_busy, stats) = shutdown_and_join(good, handle);

    assert_eq!(
        stats.shed,
        flood_busy + client_busy,
        "every shed connection must be accounted: {stats:?}, flood_busy={flood_busy}, client_busy={client_busy}"
    );
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
}
