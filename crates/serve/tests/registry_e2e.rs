//! End-to-end acceptance for the model registry subsystem: publish two
//! genuinely different models into one on-disk registry, serve the whole
//! catalog from a single process, and prove the operational story —
//! per-model routing is bit-exact per entry, unknown ids are typed
//! `not_found` rejections, the default route follows the index, shadow
//! scoring's divergence report is *exact* (zero for self-vs-self, nonzero
//! across split layers), and a catalog snapshot held by an in-flight
//! request is immune to a concurrent swap.

use std::path::PathBuf;
use std::sync::Arc;

use sm_attack::attack::{AttackConfig, TrainedAttack};
use sm_attack::Parallelism;
use sm_layout::{SplitLayer, Suite};
use sm_serve::artifact::{ModelArtifact, TrainMeta};
use sm_serve::client::{bench, BenchConfig, Client, ClientError};
use sm_serve::protocol::{ErrorCode, Request, Response};
use sm_serve::registry::{publish, Catalog};
use sm_serve::server::{ModelSource, ServeOptions, ServerHandle, ShadowConfig};

/// Two Imp-9 attackers trained against different split layers (8 and 6):
/// same feature width, different trees, so one feature batch exposes
/// which model answered.
fn two_models() -> (TrainedAttack, TrainedAttack, Vec<Vec<f64>>) {
    let views8 = Suite::ispd2011_like(0.01)
        .expect("valid scale")
        .split_all(SplitLayer::new(8).expect("valid layer"));
    let train8: Vec<_> = views8[1..].iter().collect();
    let model8 = TrainedAttack::train(&AttackConfig::imp9(), &train8, None).expect("trains v8");
    let views6 = Suite::ispd2011_like(0.01)
        .expect("valid scale")
        .split_all(SplitLayer::new(6).expect("valid layer"));
    let train6: Vec<_> = views6[1..].iter().collect();
    let model6 = TrainedAttack::train(&AttackConfig::imp9(), &train6, None).expect("trains v6");
    let vpins = views8[0].vpins();
    let cap = vpins.len().min(10);
    let features: Vec<Vec<f64>> = (0..cap)
        .flat_map(|i| ((i + 1)..cap).map(move |j| (i, j)))
        .map(|(i, j)| model8.config().features.compute(&vpins[i], &vpins[j]))
        .collect();
    assert!(!features.is_empty());
    (model8, model6, features)
}

fn fresh_registry(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smserve_registry_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta(layer: &str) -> TrainMeta {
    TrainMeta {
        split_layer: layer.into(),
        benchmarks: vec!["sb1".into()],
        ..TrainMeta::default()
    }
}

fn options() -> ServeOptions {
    ServeOptions {
        workers: Parallelism::Threads(4),
        batch: Parallelism::Sequential,
        ..ServeOptions::default()
    }
}

fn score(
    client: &mut Client,
    features: &[Vec<f64>],
    model_id: Option<&str>,
) -> Result<Vec<f64>, ClientError> {
    match client.call_ok(&Request::ScorePairs {
        features: features.to_vec(),
        model_id: model_id.map(str::to_owned),
    })? {
        Response::Scores { probs } => Ok(probs),
        other => panic!("unexpected scores reply: {other:?}"),
    }
}

fn bits(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn routing_lists_and_defaults_are_per_model_bit_exact() {
    let (model8, model6, features) = two_models();
    let probs8: Vec<f64> = features.iter().map(|x| model8.model().proba(x)).collect();
    let probs6: Vec<f64> = features.iter().map(|x| model6.model().proba(x)).collect();

    let dir = fresh_registry("routing");
    let entry8 = publish(
        &dir,
        "incumbent",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes incumbent");
    publish(
        &dir,
        "retrained",
        &ModelArtifact::from_trained(&model6, meta("V6")),
        false,
    )
    .expect("publishes retrained");

    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        None,
        "127.0.0.1:0",
        options(),
    )
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    // ListModels reports both entries sorted, with the index's default
    // and per-entry identity (checksum straight from the publish receipt).
    match client.call_ok(&Request::ListModels).expect("list") {
        Response::Models {
            default_model,
            models,
        } => {
            assert_eq!(default_model, "incumbent");
            let ids: Vec<&str> = models.iter().map(|m| m.model_id.as_str()).collect();
            assert_eq!(ids, ["incumbent", "retrained"], "sorted by id");
            let inc = &models[0];
            assert_eq!(inc.checksum, entry8.checksum);
            assert_eq!(inc.split_layer, "V8");
            assert_eq!(inc.config, model8.config().name);
            assert_eq!(inc.features, model8.config().features.len());
            assert_eq!(models[1].split_layer, "V6");
        }
        other => panic!("unexpected list reply: {other:?}"),
    }

    // Health describes the default entry.
    match client.call_ok(&Request::Health).expect("health") {
        Response::Health {
            model_id, checksum, ..
        } => {
            assert_eq!(model_id, "incumbent");
            assert_eq!(checksum, entry8.checksum);
        }
        other => panic!("unexpected health reply: {other:?}"),
    }

    // Explicit routing is bit-exact per entry; the default route serves
    // the index's default. Same batch, three routes, two answers.
    let by_default = score(&mut client, &features, None).expect("default route");
    let by_incumbent = score(&mut client, &features, Some("incumbent")).expect("incumbent");
    let by_retrained = score(&mut client, &features, Some("retrained")).expect("retrained");
    assert_eq!(bits(&by_incumbent), bits(&probs8), "incumbent == model8");
    assert_eq!(bits(&by_retrained), bits(&probs6), "retrained == model6");
    assert_eq!(
        bits(&by_default),
        bits(&probs8),
        "default routes to incumbent"
    );
    assert_ne!(
        bits(&by_incumbent),
        bits(&by_retrained),
        "different split layers must disagree somewhere"
    );

    // Unknown id: typed not_found, connection stays usable.
    match score(&mut client, &features, Some("ghost")) {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::NotFound);
            assert!(message.contains("ghost"), "{message}");
        }
        other => panic!("expected a typed not_found: {other:?}"),
    }
    let again = score(&mut client, &features, None).expect("connection survived not_found");
    assert_eq!(bits(&again), bits(&probs8));

    // Attack requests route too: an unknown id is rejected before any
    // parsing-heavy work happens.
    match client.call_ok(&Request::Attack {
        challenge: String::new(),
        truth: String::new(),
        threshold: 0.5,
        detail: false,
        model_id: Some("ghost".into()),
    }) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("expected a typed not_found: {other:?}"),
    }

    // A --default-model override changes the default route (new server,
    // same registry) without touching the index.
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: Some("retrained".into()),
        },
        None,
        "127.0.0.1:0",
        options(),
    )
    .expect("binds with override");
    let mut client = Client::connect(handle.addr()).expect("connects");
    let by_default = score(&mut client, &features, None).expect("overridden default");
    assert_eq!(
        bits(&by_default),
        bits(&probs6),
        "override routes to retrained"
    );
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_self_vs_self_diverges_by_exactly_zero() {
    let (model8, _, features) = two_models();
    let dir = fresh_registry("shadow_self");
    let artifact = ModelArtifact::from_trained(&model8, meta("V8"));
    publish(&dir, "primary", &artifact, true).expect("publishes primary");
    // The same artifact under a second id: byte-identical model.
    publish(&dir, "twin", &artifact, false).expect("publishes twin");

    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        Some(ShadowConfig::new("twin", 1.0)),
        "127.0.0.1:0",
        options(),
    )
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let rounds = 7u64;
    for _ in 0..rounds {
        score(&mut client, &features, None).expect("scores");
    }
    match client.call_ok(&Request::Stats).expect("stats") {
        Response::Stats { stats } => {
            let shadow = stats.shadow.expect("shadow configured");
            assert_eq!(shadow.shadow_model, "twin");
            assert_eq!(shadow.sampled_requests, rounds, "fraction 1.0 = all");
            assert_eq!(shadow.compared_pairs, rounds * features.len() as u64);
            assert_eq!(
                shadow.max_abs_dp.to_bits(),
                0f64.to_bits(),
                "identical models must diverge by exactly zero: {shadow:?}"
            );
            assert_eq!(shadow.mean_abs_dp.to_bits(), 0f64.to_bits());
            assert_eq!(shadow.disagreements, 0);
            assert_eq!(shadow.shadow_missing, 0);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shadow_across_split_layers_reports_exact_nonzero_divergence() {
    let (model8, model6, features) = two_models();
    let probs8: Vec<f64> = features.iter().map(|x| model8.model().proba(x)).collect();
    let probs6: Vec<f64> = features.iter().map(|x| model6.model().proba(x)).collect();
    // The report the server must reproduce exactly, computed locally.
    let dps: Vec<f64> = probs8
        .iter()
        .zip(&probs6)
        .map(|(p, q)| (p - q).abs())
        .collect();
    let expect_max = dps.iter().cloned().fold(0.0f64, f64::max);
    let expect_disagree = probs8
        .iter()
        .zip(&probs6)
        .filter(|(p, q)| (**p >= 0.5) != (**q >= 0.5))
        .count() as u64;
    assert!(expect_max > 0.0, "split layers 8 vs 6 must diverge");

    let dir = fresh_registry("shadow_cross");
    publish(
        &dir,
        "primary",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes primary");
    publish(
        &dir,
        "challenger",
        &ModelArtifact::from_trained(&model6, meta("V6")),
        false,
    )
    .expect("publishes challenger");

    // fraction 0.5: exactly every other request is sampled.
    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        Some(ShadowConfig::new("challenger", 0.5)),
        "127.0.0.1:0",
        options(),
    )
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    let rounds = 8u64;
    for _ in 0..rounds {
        let probs = score(&mut client, &features, None).expect("scores");
        assert_eq!(
            bits(&probs),
            bits(&probs8),
            "shadowing must never perturb the primary answer"
        );
    }
    // Explicitly-routed requests to the shadow itself are not eligible
    // (the report means default-vs-shadow) and must not skew counts.
    score(&mut client, &features, Some("challenger")).expect("direct shadow route");

    match client.call_ok(&Request::Stats).expect("stats") {
        Response::Stats { stats } => {
            let shadow = stats.shadow.expect("shadow configured");
            assert_eq!(
                shadow.sampled_requests,
                rounds / 2,
                "fraction 0.5 samples exactly half: {shadow:?}"
            );
            let sampled_pairs = (rounds / 2) * features.len() as u64;
            assert_eq!(shadow.compared_pairs, sampled_pairs);
            assert_eq!(
                shadow.max_abs_dp.to_bits(),
                expect_max.to_bits(),
                "max |Δp| must be exact, not approximate"
            );
            // Every sampled request compares the same batch, so the mean
            // equals the per-batch mean exactly (same summation order as
            // the local reference: row-major accumulation).
            let expect_mean = dps.iter().sum::<f64>() * (rounds / 2) as f64 / sampled_pairs as f64;
            assert!(
                (shadow.mean_abs_dp - expect_mean).abs() < 1e-12,
                "mean {} vs expected {expect_mean}",
                shadow.mean_abs_dp
            );
            assert_eq!(shadow.disagreements, expect_disagree * (rounds / 2));
            assert_eq!(shadow.shadow_missing, 0);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `expect_err` needs `Debug` on the Ok side, which `ServerHandle`
/// deliberately does not implement; unwrap the Err arm by hand.
fn bind_failure(result: std::io::Result<ServerHandle>, what: &str) -> std::io::Error {
    match result {
        Err(e) => e,
        Ok(_) => panic!("{what}: bind unexpectedly succeeded"),
    }
}

#[test]
fn misconfigured_servers_fail_at_bind_not_at_first_request() {
    let (model8, _, _) = two_models();
    let dir = fresh_registry("misconfig");
    publish(
        &dir,
        "only",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes");

    // Unknown default override.
    let err = bind_failure(
        ServerHandle::bind_source(
            ModelSource::Registry {
                dir: dir.clone(),
                default_model: Some("ghost".into()),
            },
            None,
            "127.0.0.1:0",
            options(),
        ),
        "unknown default",
    );
    assert!(err.to_string().contains("ghost"), "{err}");

    // Unknown shadow model.
    let err = bind_failure(
        ServerHandle::bind_source(
            ModelSource::Registry {
                dir: dir.clone(),
                default_model: None,
            },
            Some(ShadowConfig::new("ghost", 0.5)),
            "127.0.0.1:0",
            options(),
        ),
        "unknown shadow",
    );
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");

    // Out-of-range shadow fraction.
    let err = bind_failure(
        ServerHandle::bind_source(
            ModelSource::Registry {
                dir: dir.clone(),
                default_model: None,
            },
            Some(ShadowConfig::new("only", 1.5)),
            "127.0.0.1:0",
            options(),
        ),
        "fraction > 1",
    );
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");

    // Missing registry directory entirely.
    let err = bind_failure(
        ServerHandle::bind_source(
            ModelSource::Registry {
                dir: fresh_registry("never_created"),
                default_model: None,
            },
            None,
            "127.0.0.1:0",
            options(),
        ),
        "missing registry",
    );
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "{err}");

    // Reload against a single-model server is a typed bad_request.
    let handle = ServerHandle::bind(model8, "127.0.0.1:0", options()).expect("single-model server");
    let mut client = Client::connect(handle.addr()).expect("connects");
    match client.call_ok(&Request::Reload) {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("not registry-backed"), "{message}");
        }
        other => panic!("expected bad_request: {other:?}"),
    }
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_reload_keeps_the_old_catalog_serving() {
    let (model8, _, features) = two_models();
    let probs8: Vec<f64> = features.iter().map(|x| model8.model().proba(x)).collect();
    let dir = fresh_registry("failed_reload");
    publish(
        &dir,
        "only",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes");

    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        None,
        "127.0.0.1:0",
        options(),
    )
    .expect("binds");
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Corrupt the index on disk, then ask for a reload: the server must
    // refuse the swap, report the typed failure, and keep answering
    // bit-identically from the catalog it already has in memory.
    std::fs::write(dir.join("index"), "garbage, not an index\n").expect("corrupts index");
    match client.call_ok(&Request::Reload) {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(
                message.contains("previous catalog still serving"),
                "{message}"
            );
        }
        other => panic!("expected a typed reload failure: {other:?}"),
    }
    let probs = score(&mut client, &features, None).expect("still serving");
    assert_eq!(bits(&probs), bits(&probs8), "old catalog untouched");
    match client.call_ok(&Request::Stats).expect("stats") {
        Response::Stats { stats } => {
            assert_eq!(stats.reloads, 0, "failed reload must not count: {stats:?}")
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_flight_catalog_snapshots_are_immune_to_swaps() {
    // The server pins each request to the catalog Arc it resolved
    // against. This test exercises that mechanism directly: hold the
    // "in-flight" snapshot, swap the source directory underneath, reload
    // into a new catalog, and prove the held snapshot still scores the
    // *old* model bit-identically while new resolutions see the new one.
    let (model8, model6, features) = two_models();
    let probs8: Vec<f64> = features.iter().map(|x| model8.model().proba(x)).collect();
    let probs6: Vec<f64> = features.iter().map(|x| model6.model().proba(x)).collect();

    let dir = fresh_registry("inflight");
    publish(
        &dir,
        "m",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes m@8");
    let in_flight: Arc<Catalog> = Arc::new(Catalog::load(&dir, None).expect("loads"));

    // The swap: republish under the same id, load a fresh catalog (what
    // the server's Reload handler does), leaving `in_flight` untouched.
    publish(
        &dir,
        "m",
        &ModelArtifact::from_trained(&model6, meta("V6")),
        true,
    )
    .expect("republishes m@6");
    let after_swap: Arc<Catalog> = Arc::new(Catalog::load(&dir, None).expect("reloads"));

    let score_with = |catalog: &Catalog| -> Vec<f64> {
        let entry = catalog.resolve(Some("m")).expect("resolves");
        features
            .iter()
            .map(|x| entry.model.model().proba(x))
            .collect()
    };
    assert_eq!(
        bits(&score_with(&in_flight)),
        bits(&probs8),
        "the held snapshot keeps serving its starting version"
    );
    assert_eq!(
        bits(&score_with(&after_swap)),
        bits(&probs6),
        "new resolutions serve the new version"
    );
    assert_ne!(
        in_flight.resolve(Some("m")).expect("old").checksum,
        after_swap.resolve(Some("m")).expect("new").checksum,
        "the two versions are distinct artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_targets_a_registry_entry_and_reports_it() {
    let (model8, model6, _) = two_models();
    let dir = fresh_registry("bench");
    publish(
        &dir,
        "incumbent",
        &ModelArtifact::from_trained(&model8, meta("V8")),
        true,
    )
    .expect("publishes");
    publish(
        &dir,
        "retrained",
        &ModelArtifact::from_trained(&model6, meta("V6")),
        false,
    )
    .expect("publishes");

    let handle = ServerHandle::bind_source(
        ModelSource::Registry {
            dir: dir.clone(),
            default_model: None,
        },
        None,
        "127.0.0.1:0",
        options(),
    )
    .expect("binds");
    let addr = handle.addr().to_string();

    let report = bench(
        &addr,
        &BenchConfig {
            connections: 2,
            requests_per_connection: 3,
            batch_size: 8,
            model_id: Some("retrained".into()),
            ..BenchConfig::default()
        },
    )
    .expect("bench run");
    assert_eq!(report.served_model, "retrained");
    assert_eq!(report.errors, 0);
    assert_eq!(report.total_requests, 6);

    // An unknown target fails fast with the typed code, before any load
    // is generated.
    let err = bench(
        &addr,
        &BenchConfig {
            connections: 1,
            requests_per_connection: 1,
            model_id: Some("ghost".into()),
            ..BenchConfig::default()
        },
    )
    .expect_err("unknown bench target");
    assert!(
        matches!(
            err,
            ClientError::Remote {
                code: ErrorCode::NotFound,
                ..
            }
        ),
        "{err}"
    );

    let mut client = Client::connect(handle.addr()).expect("connects");
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
