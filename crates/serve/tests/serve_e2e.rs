//! End-to-end acceptance test for the inference service: train a model,
//! checkpoint it through the artifact store, host it with `serve` on an
//! ephemeral port, and prove that scores coming back over TCP are
//! bit-identical to calling the in-process [`TrainedAttack`].

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use sm_attack::Parallelism;
use sm_layout::io::{write_challenge, write_truth};
use sm_layout::{SplitLayer, SplitView, Suite};
use sm_serve::artifact::{ModelArtifact, TrainMeta};
use sm_serve::client::{bench, BenchConfig, Client, ClientError, ClientTimeouts};
use sm_serve::protocol::{Request, Response, Wire};
use sm_serve::server::{ServeOptions, ServerHandle};
use sm_serve::ARTIFACT_VERSION;

fn trained_and_test_view() -> (TrainedAttack, SplitView) {
    let views = Suite::ispd2011_like(0.01)
        .expect("valid scale")
        .split_all(SplitLayer::new(8).expect("valid layer"));
    let train: Vec<_> = views[1..].iter().collect();
    let config = AttackConfig::imp9();
    let model = TrainedAttack::train(&config, &train, None).expect("trains");
    (model, views.into_iter().next().expect("five views"))
}

/// A pool wide enough for every connection these tests hold open at once.
/// (`Auto` sizes by CPU count; on a 1-core host that is a single worker,
/// and a test keeping its own connection open while `bench` opens more
/// would wait forever for a free worker.)
fn test_options() -> ServeOptions {
    ServeOptions {
        workers: Parallelism::Threads(4),
        batch: Parallelism::Sequential,
        ..ServeOptions::default()
    }
}

#[test]
fn full_train_store_serve_score_lifecycle() {
    let (fresh, view) = trained_and_test_view();

    // Checkpoint through the artifact store exactly as `splitmfg train` +
    // `splitmfg serve --model` would.
    let encoded = ModelArtifact::from_trained(&fresh, TrainMeta::default()).encode();
    let served_model = ModelArtifact::decode(&encoded)
        .expect("decodes")
        .into_trained()
        .expect("coherent");

    let handle = ServerHandle::bind(served_model, "127.0.0.1:0", test_options())
        .expect("binds an ephemeral port");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connects");

    // Health advertises the hosted model, including its registry
    // identity (a single-model server publishes itself as "default",
    // with the checksum its canonical artifact encoding would have).
    match client.call_ok(&Request::Health).expect("health") {
        Response::Health {
            model,
            features,
            trees,
            artifact_version,
            model_id,
            checksum,
            schema_version,
        } => {
            assert_eq!(model, fresh.config().name);
            assert_eq!(features, fresh.config().features.len());
            assert_eq!(trees, fresh.model().num_trees());
            assert_eq!(artifact_version, ARTIFACT_VERSION);
            assert_eq!(model_id, sm_serve::SINGLE_MODEL_ID);
            assert!(checksum.starts_with("fnv1a64:"), "{checksum}");
            assert_eq!(schema_version, ARTIFACT_VERSION);
        }
        other => panic!("unexpected health reply: {other:?}"),
    }

    // Remote pair scores must be bit-identical to the in-process model.
    let vpins = view.vpins();
    let cap = vpins.len().min(12);
    let pairs: Vec<(usize, usize)> = (0..cap)
        .flat_map(|i| ((i + 1)..cap).map(move |j| (i, j)))
        .collect();
    assert!(
        !pairs.is_empty(),
        "view with <2 v-pins cannot exercise scoring"
    );
    let features: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(i, j)| fresh.config().features.compute(&vpins[i], &vpins[j]))
        .collect();
    let local: Vec<f64> = features.iter().map(|x| fresh.model().proba(x)).collect();
    let remote = match client
        .call_ok(&Request::ScorePairs {
            features: features.clone(),
            model_id: None,
        })
        .expect("score_pairs")
    {
        Response::Scores { probs } => probs,
        other => panic!("unexpected scores reply: {other:?}"),
    };
    assert_eq!(local.len(), remote.len());
    for (k, (l, r)) in local.iter().zip(&remote).enumerate() {
        assert_eq!(
            l.to_bits(),
            r.to_bits(),
            "pair {k}: remote score must be bit-identical"
        );
    }

    // A whole-challenge attack round-trips the full ScoredView — LoC
    // histogram included — identical to scoring in-process.
    let local_scored = fresh.score(&view, &ScoreOptions::default());
    match client
        .call_ok(&Request::Attack {
            challenge: write_challenge(&view),
            truth: write_truth(&view),
            threshold: 0.5,
            detail: true,
            model_id: None,
        })
        .expect("attack")
    {
        Response::AttackResult { summary, scored } => {
            assert_eq!(summary.design, view.name);
            assert_eq!(summary.num_vpins, view.num_vpins());
            assert_eq!(summary.pairs_scored, local_scored.pairs_scored);
            assert_eq!(
                summary.accuracy.to_bits(),
                local_scored.accuracy_at(0.5).to_bits()
            );
            let scored = scored.expect("detail=true returns the scored view");
            assert_eq!(scored.hist, local_scored.hist, "LoC histogram over TCP");
            assert_eq!(scored, local_scored, "full scored view over TCP");
        }
        other => panic!("unexpected attack reply: {other:?}"),
    }

    // Malformed requests produce Error replies and leave the connection
    // usable — both garbage JSON and a bad feature-row width.
    match client.call(&Request::ScorePairs {
        features: vec![vec![1.0, 2.0]],
        model_id: None,
    }) {
        Ok(Response::Error { code, message }) => {
            assert_eq!(code, sm_serve::protocol::ErrorCode::BadRequest);
            assert!(message.contains("model expects"), "{message}");
        }
        other => panic!("short row should be a protocol-level error: {other:?}"),
    }
    match client.call_ok(&Request::ScorePairs {
        features: vec![vec![0.0; fresh.config().features.len()]],
        model_id: None,
    }) {
        Ok(Response::Scores { probs }) => assert_eq!(probs.len(), 1),
        other => panic!("connection should survive an error reply: {other:?}"),
    }

    // Counters reflect what we did.
    match client.call_ok(&Request::Stats).expect("stats") {
        Response::Stats { stats } => {
            assert_eq!(stats.model_id, sm_serve::SINGLE_MODEL_ID, "{stats:?}");
            assert!(stats.model_checksum.starts_with("fnv1a64:"), "{stats:?}");
            assert_eq!(stats.schema_version, ARTIFACT_VERSION, "{stats:?}");
            assert_eq!(stats.reloads, 0, "{stats:?}");
            assert!(stats.shadow.is_none(), "no shadow configured: {stats:?}");
            assert!(stats.requests >= 5, "{stats:?}");
            assert_eq!(stats.errors, 1, "{stats:?}");
            assert_eq!(stats.shed, 0, "nothing shed on the happy path: {stats:?}");
            assert_eq!(stats.timeouts, 0, "{stats:?}");
            assert!(
                stats.pairs_scored >= (pairs.len() + local_scored.pairs_scored as usize) as u64,
                "{stats:?}"
            );
            assert!(stats.max_us >= stats.p50_us, "{stats:?}");
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }

    // The bench client runs against the same server.
    let report = bench(
        &addr.to_string(),
        &BenchConfig {
            connections: 2,
            requests_per_connection: 3,
            batch_size: 8,
            seed: 7,
            ..BenchConfig::default()
        },
    )
    .expect("bench run");
    assert_eq!(report.total_requests, 6);
    assert_eq!(report.total_pairs, 48);
    assert_eq!(report.errors, 0);
    assert_eq!(report.served_model, sm_serve::SINGLE_MODEL_ID);
    assert_eq!(report.retries, 0, "happy path needs no retries");
    assert!(report.p50_us <= report.p99_us);
    let server_stats = report.server_stats.expect("post-run stats probe");
    assert_eq!(server_stats.shed, 0, "{server_stats:?}");

    // Graceful shutdown: the request is acknowledged, the accept loop
    // stops, and join() hands back the final counters.
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    let final_stats = handle.join().expect("clean server exit");
    assert!(final_stats.requests >= 12, "{final_stats:?}");
    assert_eq!(final_stats.errors, 1, "{final_stats:?}");
}

#[test]
fn ndjson_and_binary_wires_are_bit_identical_end_to_end() {
    let (model, view) = trained_and_test_view();
    let local_scored = model.score(&view, &ScoreOptions::default());
    let handle = ServerHandle::bind(
        ModelArtifact::from_trained(&model, TrainMeta::default())
            .into_trained()
            .expect("artifact round-trips"),
        "127.0.0.1:0",
        test_options(),
    )
    .expect("binds");
    let addr = handle.addr();

    // One connection per wire, held open side by side against the same
    // server: the wire is a per-connection property, detected from the
    // first byte, and must never leak into the answers.
    let timeouts = ClientTimeouts {
        connect_ms: 2_000,
        io_ms: 30_000,
    };
    let mut ndjson = Client::connect_wire(addr, timeouts, Wire::Ndjson).expect("ndjson connects");
    let mut binary = Client::connect_wire(addr, timeouts, Wire::Binary).expect("binary connects");
    assert_eq!(ndjson.wire(), Wire::Ndjson);
    assert_eq!(binary.wire(), Wire::Binary);

    // Identical ScorePairs through both wires: every probability must be
    // bit-identical to the in-process model — and therefore to each other.
    let vpins = view.vpins();
    let cap = vpins.len().min(12);
    let features: Vec<Vec<f64>> = (0..cap)
        .flat_map(|i| ((i + 1)..cap).map(move |j| (i, j)))
        .map(|(i, j)| model.config().features.compute(&vpins[i], &vpins[j]))
        .collect();
    let local: Vec<f64> = features.iter().map(|x| model.model().proba(x)).collect();
    let score_req = Request::ScorePairs {
        features: features.clone(),
        model_id: None,
    };
    let probs_of = |resp: Response| -> Vec<f64> {
        match resp {
            Response::Scores { probs } => probs,
            other => panic!("unexpected scores reply: {other:?}"),
        }
    };
    let via_ndjson = probs_of(ndjson.call_ok(&score_req).expect("ndjson score"));
    let via_binary = probs_of(binary.call_ok(&score_req).expect("binary score"));
    assert_eq!(via_ndjson.len(), local.len());
    assert_eq!(via_binary.len(), local.len());
    for (k, ((l, n), b)) in local.iter().zip(&via_ndjson).zip(&via_binary).enumerate() {
        assert_eq!(
            l.to_bits(),
            n.to_bits(),
            "pair {k}: ndjson wire must be bit-identical to in-process"
        );
        assert_eq!(
            n.to_bits(),
            b.to_bits(),
            "pair {k}: binary wire must be bit-identical to ndjson"
        );
    }

    // A whole-challenge Attack with detail: the full ScoredView — LoC
    // histogram included — must be the same value on both wires.
    let attack_req = Request::Attack {
        challenge: write_challenge(&view),
        truth: write_truth(&view),
        threshold: 0.5,
        detail: true,
        model_id: None,
    };
    let a = ndjson.call_ok(&attack_req).expect("ndjson attack");
    let b = binary.call_ok(&attack_req).expect("binary attack");
    assert_eq!(a, b, "attack result must not depend on the wire");
    match a {
        Response::AttackResult { summary, scored } => {
            assert_eq!(summary.pairs_scored, local_scored.pairs_scored);
            assert_eq!(
                summary.accuracy.to_bits(),
                local_scored.accuracy_at(0.5).to_bits()
            );
            let scored = scored.expect("detail=true returns the scored view");
            assert_eq!(scored.hist, local_scored.hist, "LoC histogram over TCP");
            assert_eq!(scored, local_scored, "full scored view over TCP");
        }
        other => panic!("unexpected attack reply: {other:?}"),
    }

    // Control-plane requests agree too: Health is the same answer, and
    // Stats over the binary wire accounts for both connections' traffic.
    let health_n = ndjson.call_ok(&Request::Health).expect("ndjson health");
    let health_b = binary.call_ok(&Request::Health).expect("binary health");
    assert_eq!(health_n, health_b, "health must not depend on the wire");
    match binary.call_ok(&Request::Stats).expect("binary stats") {
        Response::Stats { stats } => {
            assert!(stats.requests >= 6, "{stats:?}");
            assert_eq!(stats.errors, 0, "{stats:?}");
            assert_eq!(stats.io_errors, 0, "{stats:?}");
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }

    drop(ndjson);
    match binary.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
}

#[test]
fn dense_and_json_framed_binary_attacks_match_ndjson_bit_for_bit() {
    // Three framings of the same Attack against one server: the NDJSON
    // wire, the dense binary frames (0x03/0x83), and a binary connection
    // forced to JSON payload framing (0x01/0x81, what a pre-dense binary
    // client sends). The full detail=true ScoredView must be the same
    // value everywhere, bit for bit.
    let (model, view) = trained_and_test_view();
    let local_scored = model.score(&view, &ScoreOptions::default());
    let handle = ServerHandle::bind(model, "127.0.0.1:0", test_options()).expect("binds");
    let addr = handle.addr();
    let timeouts = ClientTimeouts {
        connect_ms: 2_000,
        io_ms: 30_000,
    };
    let mut ndjson = Client::connect_wire(addr, timeouts, Wire::Ndjson).expect("ndjson connects");
    let mut dense = Client::connect_wire(addr, timeouts, Wire::Binary).expect("dense connects");
    let mut json_framed =
        Client::connect_wire(addr, timeouts, Wire::Binary).expect("json-framed connects");
    json_framed.set_json_payload(true);

    // ScorePairs first: the dense request path decodes feature rows
    // straight into the kernel batch, the JSON framings parse text — the
    // probabilities must not care.
    let features: Vec<Vec<f64>> = vec![vec![0.0; 9], vec![1.5; 9], vec![4000.0; 9]];
    let score_req = Request::ScorePairs {
        features,
        model_id: None,
    };
    let probs_of = |resp: Response| -> Vec<f64> {
        match resp {
            Response::Scores { probs } => probs,
            other => panic!("unexpected scores reply: {other:?}"),
        }
    };
    let via_ndjson = probs_of(ndjson.call_ok(&score_req).expect("ndjson score"));
    let via_dense = probs_of(dense.call_ok(&score_req).expect("dense score"));
    let via_json = probs_of(json_framed.call_ok(&score_req).expect("json-framed score"));
    assert_eq!(via_ndjson.len(), 3);
    for (k, ((n, d), j)) in via_ndjson.iter().zip(&via_dense).zip(&via_json).enumerate() {
        assert_eq!(n.to_bits(), d.to_bits(), "row {k}: dense vs ndjson");
        assert_eq!(d.to_bits(), j.to_bits(), "row {k}: json-framed vs dense");
    }

    let attack_req = Request::Attack {
        challenge: write_challenge(&view),
        truth: write_truth(&view),
        threshold: 0.5,
        detail: true,
        model_id: None,
    };
    let a = ndjson.call_ok(&attack_req).expect("ndjson attack");
    let b = dense.call_ok(&attack_req).expect("dense attack");
    let c = json_framed.call_ok(&attack_req).expect("json-framed attack");
    assert_eq!(a, b, "dense binary attack must equal ndjson");
    assert_eq!(b, c, "json-framed binary attack must equal dense");
    match b {
        Response::AttackResult { summary, scored } => {
            assert_eq!(summary.pairs_scored, local_scored.pairs_scored);
            assert_eq!(
                summary.accuracy.to_bits(),
                local_scored.accuracy_at(0.5).to_bits()
            );
            let scored = scored.expect("detail=true returns the scored view");
            assert_eq!(scored.hist, local_scored.hist, "LoC histogram");
            assert_eq!(scored, local_scored, "full scored view over every framing");
        }
        other => panic!("unexpected attack reply: {other:?}"),
    }

    // No framing confused the server's accounting.
    match dense.call_ok(&Request::Stats).expect("stats") {
        Response::Stats { stats } => {
            assert_eq!(stats.errors, 0, "{stats:?}");
            assert_eq!(stats.io_errors, 0, "{stats:?}");
            assert!(stats.requests >= 6, "{stats:?}");
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    drop(ndjson);
    drop(json_framed);
    match dense.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
}

#[test]
fn garbage_lines_get_error_replies_without_killing_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let (model, _) = trained_and_test_view();
    let handle = ServerHandle::bind(model, "127.0.0.1:0", test_options()).expect("binds");

    // Raw socket: this is exactly the `nc` session documented in the
    // README, garbage line included.
    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connects");
    stream
        .write_all(b"this is not json\n\"Health\"\n")
        .expect("writes");
    stream.flush().expect("flushes");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("error reply");
    assert!(line.contains("\"Error\""), "{line}");
    assert!(line.contains("bad request"), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("health reply");
    assert!(line.contains("\"Health\""), "{line}");
    // Close both halves of the raw connection, or the worker serving it
    // would still be alive at join() below.
    drop(reader);
    drop(stream);

    let mut client = Client::connect(handle.addr()).expect("second client");
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    let stats = handle.join().expect("clean exit");
    assert_eq!(stats.errors, 1);
}

#[test]
fn auto_pool_survives_a_held_open_idle_connection() {
    // Regression for the 1-CPU starvation mode: with `Auto` resolving to a
    // single worker, connection #1 (open, silent) used to pin the whole
    // pool, and connection #2's Health below would block forever. The
    // Auto >= 2 guard keeps a worker free.
    let (model, _) = trained_and_test_view();
    let options = ServeOptions {
        workers: Parallelism::Auto,
        ..ServeOptions::default()
    };
    let handle = ServerHandle::bind(model, "127.0.0.1:0", options).expect("binds");

    let idle = std::net::TcpStream::connect(handle.addr()).expect("idle connection");
    let mut client = Client::connect(handle.addr()).expect("second connection");
    match client
        .call_ok(&Request::Health)
        .expect("health despite idle peer")
    {
        Response::Health { .. } => {}
        other => panic!("unexpected health reply: {other:?}"),
    }
    drop(idle);
    match client.call_ok(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("clean exit");
}

#[test]
fn bench_against_a_dead_port_fails_fast_with_a_typed_error() {
    // Bind-then-drop guarantees an unused port.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        l.local_addr().expect("addr").port()
    };
    let err = bench(&format!("127.0.0.1:{port}"), &BenchConfig::default())
        .expect_err("no server is listening");
    assert!(matches!(err, ClientError::Io(_)), "{err}");
}

#[test]
fn shutdown_handle_drains_the_server_like_sigterm_would() {
    // `splitmfg serve` wires SIGTERM/SIGINT to ShutdownHandle::request
    // from a watcher thread; this exercises that exact path in-process.
    let (model, _view) = trained_and_test_view();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr");
    let shutdown = sm_serve::server::ShutdownHandle::new();
    let server = {
        let shutdown = shutdown.clone();
        let options = test_options();
        std::thread::spawn(move || {
            sm_serve::server::serve_source_with(
                sm_serve::server::ModelSource::Single(model),
                None,
                listener,
                &options,
                Some(&shutdown),
            )
        })
    };
    // The server answers real work before the drain...
    let mut client = Client::connect(addr).expect("connects");
    match client.call_ok(&Request::Health).expect("health") {
        Response::Health { model_id, .. } => assert_eq!(model_id, "default"),
        other => panic!("unexpected reply: {other:?}"),
    }
    drop(client);
    // ... then an out-of-band request (as the signal watcher sends it)
    // stops the accept loop and drains to a final snapshot.
    shutdown.request();
    let stats = server
        .join()
        .expect("server thread exits")
        .expect("serves cleanly");
    assert!(stats.requests >= 1, "drained stats must count the work");
    assert_eq!(stats.model_id, "default");
    std::thread::sleep(std::time::Duration::from_millis(10));
    assert!(
        std::net::TcpStream::connect(addr).is_err() || {
            // A connect may succeed against the OS backlog even after the
            // listener closes on some kernels; a read must then see EOF.
            use std::io::Read;
            let mut s = std::net::TcpStream::connect(addr).expect("raced");
            s.set_read_timeout(Some(std::time::Duration::from_millis(500)))
                .expect("timeout");
            matches!(s.read(&mut [0u8; 1]), Ok(0) | Err(_))
        },
        "the drained server must not accept new work"
    );
}
