//! The TCP inference server: an epoll reactor feeding a scoring executor.
//!
//! Architecture (three kinds of threads, all scoped):
//!
//! - **Acceptor** (the calling thread): a blocking `accept()` loop that
//!   admission-controls new connections against a fixed capacity
//!   (`pool_size + queue_depth`, the same head count the pre-reactor
//!   server could hold in its workers plus its queue). Over capacity, a
//!   connection is shed with a [`Response::Busy`] reply carrying a retry
//!   hint — a flood degrades into fast, explicit rejections instead of
//!   unbounded queueing. Admitted connections are handed round-robin to
//!   the event loops over a channel plus a reactor wake.
//! - **Event loops** (`event_loops` threads, auto-sized from the CPU
//!   count): each runs a nonblocking **edge-triggered** epoll loop (the
//!   vendored `mio` shim) over its share of connections. A connection is
//!   registered exactly once, at admission, for both interests — no
//!   `epoll_ctl` churn on the hot path — and the loop caches readiness
//!   itself (`read_ready`/`write_ready`, cleared only on `WouldBlock`).
//!   Connections with cached readiness or buffered work sit on a ready
//!   list; each gets **one bounded service turn per loop iteration**
//!   (read to `WouldBlock` or the buffer cap, process at most
//!   [`FRAME_BUDGET`] frames, flush to `WouldBlock`), so one connection
//!   pipelining thousands of frames cannot starve its siblings. Each
//!   connection is a small state machine — read buffer → framed request
//!   → scoring queue → write buffer — with the wire format auto-detected
//!   from the first byte (`0xB5` means binary v2, anything else NDJSON)
//!   and sticky for the connection's life. Framing is zero-copy: requests
//!   are parsed from borrowed slices of the read buffer behind a cursor,
//!   and the buffer compacts once per service turn (at most one partial
//!   frame moves), not once per request. Deadlines are enforced from the
//!   loop: an *idle* deadline between requests, a stricter *mid-request*
//!   deadline from the first byte of a request (slow-loris defence), and
//!   a write-stall deadline while a response is draining. Request
//!   payloads are capped at `max_request_bytes`; the binary header's
//!   declared length is checked against the cap before any payload is
//!   buffered. Control requests (`Health`, `Stats`, `ListModels`,
//!   `Reload`, `Shutdown`) are answered inline on the loop; scoring
//!   requests are dispatched to the executor, one in flight per
//!   connection (pipelined bytes wait in the read buffer, preserving
//!   per-connection order, and reads pause for backpressure).
//! - **Scoring executor** (`pool_size(workers)` threads): pulls
//!   [`ScorePairs`]/[`Attack`] jobs from a shared queue. On the default
//!   compiled-sequential path, concurrent small `ScorePairs` jobs that
//!   target the same model are **coalesced** into one `proba_batch` call
//!   of up to [`SCORE_BATCH`] rows and the probabilities demultiplexed
//!   back per request — `proba_batch` is row-independent, so coalesced
//!   answers are bit-identical to solo ones. By default a worker only
//!   drains jobs already queued (zero added latency for a lone client);
//!   [`BatchLinger::Fixed`] waits that many microseconds for stragglers,
//!   and [`BatchLinger::Auto`] lingers only while the recent window
//!   shows under-full batches *that were actually coalescing* — a lone
//!   client never pays the wait.
//!
//! [`ScorePairs`]: Request::ScorePairs
//! [`Attack`]: Request::Attack
//!
//! Scoring is bit-identical to in-process use: the server calls the same
//! [`TrainedAttack`] entry points, the JSON transport round-trips `f64`
//! exactly, and the binary transport ships raw little-endian `f64` bits.
//!
//! The server serves a whole [`Catalog`] of models, not one: requests
//! route by an optional `model_id` (absent means the default), and a
//! registry-backed server ([`ModelSource::Registry`]) answers `Reload`
//! by rescanning the directory and atomically swapping the catalog
//! `Arc` — in-flight requests keep the catalog they resolved against, so
//! a reload never changes a response mid-request and never drops a
//! connection. An optional [`ShadowConfig`] re-scores a deterministic
//! fraction of default-routed `ScorePairs` batches against a second
//! catalog entry and folds an exact divergence report into `Stats`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sm_attack::attack::{Enumeration, Kernel, ScoreOptions, SCORE_BATCH};
use sm_attack::TrainedAttack;
use sm_layout::io::read_challenge;
use sm_ml::{par_chunks, Parallelism};

use crate::artifact::ARTIFACT_VERSION;
use crate::client::percentile_rank;
use crate::protocol::{
    binary, AttackSummary, ErrorCode, ModelInfo, Request, Response, ShadowReport, StatsSnapshot,
    Wire,
};
use crate::registry::{Catalog, ModelEntry, RegistryError};

/// Cap on retained per-request latency samples. The store is a ring:
/// once full, new samples overwrite the oldest, so a long-lived server
/// reports *current* percentiles from bounded memory instead of freezing
/// on its first hour of traffic.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// Backoff hint carried by [`Response::Busy`] when a connection is shed.
pub const BUSY_RETRY_AFTER_MS: u64 = 50;

/// First sleep after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`] so a persistent listener-level
/// error (EMFILE, ENOBUFS, ...) cannot hot-spin the accept loop.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Socket read granularity of the event loops.
const READ_CHUNK: usize = 16 * 1024;

/// Reactor token reserved for each event loop's waker; connection
/// tokens are slab indices, which can never reach this value.
const WAKE_TOKEN: mio::Token = mio::Token(usize::MAX);

/// Upper bound on auto-sized event loops: scoring, not connection
/// shuffling, is where the CPUs belong.
const MAX_AUTO_EVENT_LOOPS: usize = 4;

/// Fairness budget: the most frames one connection may consume in a
/// single service turn. A connection with more buffered frames goes to
/// the back of the ready list so its siblings get a turn between
/// budgets — one pipelining client cannot starve a loop.
const FRAME_BUDGET: usize = 32;

/// How long [`BatchLinger::Auto`] waits for stragglers while the recent
/// fill window says batches are under-full *and* coalescing.
const AUTO_LINGER_US: u64 = 100;

/// Minimum batches in the fill window before `Auto` trusts it; below
/// this the controller never lingers (cold start favors latency).
const AUTO_LINGER_MIN_BATCHES: u64 = 8;

/// Size of the batch-fill observation window: once this many batches
/// accumulate, all three fill counters are halved, so the controller
/// tracks an exponentially-weighted recent past rather than all time.
const FILL_WINDOW: u64 = 64;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Size of the scoring executor pool (via
    /// [`Parallelism::worker_count`]). `Auto` is guarded to a minimum of
    /// two workers so one long-running `Attack` cannot monopolize the
    /// whole executor on 1-CPU hosts. Connection I/O is handled by the
    /// event loops, not this pool — see `event_loops`.
    pub workers: Parallelism,
    /// Parallelism applied *within* one `ScorePairs`/`Attack` request
    /// batch. Sequential by default — the executor already provides
    /// cross-request parallelism; results are identical either way.
    pub batch: Parallelism,
    /// Scoring kernel for `ScorePairs` and `Attack` requests. Results are
    /// bit-identical across kernels; `Compiled` is the fast default.
    pub kernel: Kernel,
    /// Candidate enumeration for `Attack` requests. Results are
    /// bit-identical across enumerations; `Spatial` (grid radius queries)
    /// is the memory-bounded default, `AllPairs` the quadratic oracle.
    pub enumeration: Enumeration,
    /// Mid-request deadline in milliseconds: once the first byte of a
    /// request has arrived, the full request must arrive (and the
    /// response must make write progress) within this budget, or the
    /// connection is closed with an [`ErrorCode::Timeout`] reply. `0`
    /// disables the deadline.
    pub request_timeout_ms: u64,
    /// Idle deadline in milliseconds: how long a connection may sit
    /// between requests before the server quietly closes it, freeing
    /// its admission slot. `0` disables the deadline.
    pub idle_timeout_ms: u64,
    /// Hard cap on one request's bytes (an NDJSON line or a binary
    /// frame payload). A larger request is answered with an
    /// [`ErrorCode::TooLarge`] error and the connection is closed — the
    /// server never buffers more than this (plus one read chunk) per
    /// connection, and a binary header *declaring* more than this is
    /// rejected before any payload is read.
    pub max_request_bytes: usize,
    /// Extra admission slots beyond the executor pool size. `0` means
    /// automatic (twice the pool size). The server admits at most
    /// `pool_size + queue_depth` concurrent connections; beyond that,
    /// new connections are shed with [`Response::Busy`] — the same
    /// holding capacity the pre-reactor thread-per-connection server
    /// had, so shed accounting is unchanged. Raise this to serve more
    /// concurrent connections; the reactor itself has no per-connection
    /// thread cost.
    pub max_queue: usize,
    /// Number of reactor event-loop threads. `0` means automatic
    /// (`min(cpu count, 4)`, at least 1).
    pub event_loops: usize,
    /// How long a scoring worker may wait for additional coalescible
    /// `ScorePairs` jobs before scoring a partial batch. The default,
    /// [`BatchLinger::Fixed`]`(0)`, never waits: a worker only coalesces
    /// jobs that are *already* queued, so a lone client's latency is
    /// untouched and batching emerges exactly when there is a backlog to
    /// amortize. [`BatchLinger::Auto`] turns a short linger on and off
    /// from the observed batch fill.
    pub batch_linger: BatchLinger,
}

/// The `--batch-linger-us` policy: a fixed microsecond budget, or an
/// adaptive controller driven by the observed mean batch fill.
///
/// `Auto` lingers [`AUTO_LINGER_US`] only while the recent window shows
/// batches that were **under-full** (mean rows/batch below
/// [`SCORE_BATCH`]) *and* **actually coalescing** (mean requests/batch
/// above one). The second condition is what protects a lone client: its
/// batches carry exactly one request each, so `Auto` never holds its
/// requests hostage waiting for siblings that do not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchLinger {
    /// Wait exactly this many microseconds (`0` = never wait).
    Fixed(u64),
    /// Linger only while recent batches were under-full and coalescing.
    Auto,
}

impl Default for BatchLinger {
    fn default() -> Self {
        BatchLinger::Fixed(0)
    }
}

impl std::str::FromStr for BatchLinger {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(BatchLinger::Auto);
        }
        s.parse::<u64>()
            .map(BatchLinger::Fixed)
            .map_err(|_| format!("expected 'auto' or a microsecond count, got '{s}'"))
    }
}

impl std::fmt::Display for BatchLinger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchLinger::Fixed(us) => write!(f, "{us}"),
            BatchLinger::Auto => write!(f, "auto"),
        }
    }
}

/// The `Auto` linger decision, pure for testing: given the fill window's
/// totals, how many microseconds should the next partial batch wait?
fn auto_linger_us(batches: u64, rows: u64, requests: u64) -> u64 {
    if batches < AUTO_LINGER_MIN_BATCHES {
        return 0;
    }
    let under_full = rows < batches.saturating_mul(SCORE_BATCH as u64);
    let coalescing = requests > batches;
    if under_full && coalescing {
        AUTO_LINGER_US
    } else {
        0
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: Parallelism::Auto,
            batch: Parallelism::Sequential,
            kernel: Kernel::Compiled,
            enumeration: Enumeration::Spatial,
            request_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            max_request_bytes: 64 * 1024 * 1024,
            max_queue: 0,
            event_loops: 0,
            batch_linger: BatchLinger::Fixed(0),
        }
    }
}

/// Where the server's models come from.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// One already-loaded model, served as the catalog's only entry under
    /// [`crate::registry::SINGLE_MODEL_ID`]. `Reload` answers
    /// `bad_request` — there is no directory to rescan.
    Single(TrainedAttack),
    /// A registry directory ([`crate::registry`]); `Reload` rescans it
    /// and atomically swaps the catalog.
    Registry {
        /// The registry directory (contains the `index` file).
        dir: PathBuf,
        /// Overrides the index's default model id for this server (and
        /// for every subsequent reload). Must name a published model.
        default_model: Option<String>,
    },
}

/// A/B shadow scoring: re-score a sampled fraction of default-routed
/// `ScorePairs` requests against a second catalog entry and accumulate
/// an exact divergence report into `Stats`. The shadow never affects the
/// answer the client sees.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowConfig {
    /// Catalog id of the shadow model. Must resolve at startup; if a
    /// later reload removes it, sampled requests are counted as
    /// `shadow_missing` instead of failing.
    pub model_id: String,
    /// Fraction of eligible requests to shadow-score, in `[0, 1]`.
    /// Sampling is deterministic (request `k` is sampled iff
    /// `floor((k+1)·f) > floor(k·f)`), so `1.0` is every request, `0.5`
    /// is exactly every other one.
    pub fraction: f64,
    /// Decision threshold for the disagreement count.
    pub threshold: f64,
}

impl ShadowConfig {
    /// Shadow `model_id` on `fraction` of requests, disagreements
    /// counted at the conventional 0.5 decision threshold.
    #[must_use]
    pub fn new(model_id: &str, fraction: f64) -> Self {
        Self {
            model_id: model_id.to_owned(),
            fraction,
            threshold: 0.5,
        }
    }
}

/// Resolves the scoring executor pool size, applying the `Auto` >= 2
/// guard: one long-running request must never monopolize the whole
/// executor, so `Auto` keeps at least two workers even on 1-CPU hosts.
/// Explicit worker counts are honored as given.
pub fn pool_size(workers: Parallelism) -> usize {
    let n = workers.worker_count(usize::MAX);
    match workers {
        Parallelism::Auto => n.max(2),
        _ => n,
    }
}

/// Resolves the extra admission slots for `options` (`max_queue` of 0
/// means twice the executor pool, never less than 1). The server admits
/// at most `pool_size + queue_depth` concurrent connections.
pub fn queue_depth(options: &ServeOptions) -> usize {
    if options.max_queue == 0 {
        2 * pool_size(options.workers)
    } else {
        options.max_queue
    }
    .max(1)
}

/// Resolves the reactor thread count for `options` (`event_loops` of 0
/// means `min(cpu count, 4)`, at least 1).
pub fn event_loop_count(options: &ServeOptions) -> usize {
    if options.event_loops > 0 {
        options.event_loops
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, MAX_AUTO_EVENT_LOOPS)
    }
}

/// `0` milliseconds means "no deadline".
fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Sleep applied after the `n`-th consecutive `accept()` failure
/// (1-based): exponential from [`ACCEPT_BACKOFF_BASE`] capped at
/// [`ACCEPT_BACKOFF_MAX`].
fn accept_backoff(consecutive_failures: u32) -> Duration {
    let exp = consecutive_failures.saturating_sub(1).min(16);
    ACCEPT_BACKOFF_MAX.min(ACCEPT_BACKOFF_BASE.saturating_mul(1 << exp))
}

/// Fixed-capacity ring of latency samples: pushes past the capacity
/// overwrite the oldest sample, so percentiles always describe recent
/// traffic from bounded memory.
struct LatencyRing {
    samples: Vec<u64>,
    cap: usize,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    /// Reused working copy for [`Self::quantiles`]: a `Stats` probe must
    /// not allocate (and free) a full ring's worth of samples — at
    /// capacity that was ~8 MiB of churn per monitoring poll.
    scratch: Vec<u64>,
}

impl LatencyRing {
    fn with_capacity(cap: usize) -> Self {
        Self {
            samples: Vec::new(),
            cap: cap.max(1),
            next: 0,
            scratch: Vec::new(),
        }
    }

    fn push(&mut self, sample: u64) {
        if self.samples.len() < self.cap {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.cap;
        }
    }

    ///`[p50, p95, p99, max]` over the retained samples — the exact
    /// elements a full sort + [`percentile_us`] would pick, found with
    /// chained `select_nth_unstable` partitions over the reused scratch
    /// buffer instead of an O(n log n) sort of a fresh allocation.
    ///
    /// Ranks are selected in ascending order; each selection partitions
    /// the scratch so the next one only touches the tail above the
    /// previous rank, and the max is a linear scan of the final tail.
    fn quantiles(&mut self) -> [u64; 4] {
        let n = self.samples.len();
        if n == 0 {
            return [0; 4];
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.samples);
        let ranks = [
            percentile_rank(n, 50.0),
            percentile_rank(n, 95.0),
            percentile_rank(n, 99.0),
        ];
        let mut out = [0u64; 4];
        let mut done = 0usize;
        let mut prev: Option<(usize, u64)> = None;
        for (slot, &rank) in ranks.iter().enumerate() {
            if let Some((r, v)) = prev {
                if r == rank {
                    out[slot] = v;
                    continue;
                }
            }
            let (_, nth, _) = self.scratch[done..].select_nth_unstable(rank - done);
            out[slot] = *nth;
            prev = Some((rank, *nth));
            done = rank;
        }
        out[3] = self.scratch[done..].iter().copied().max().unwrap_or(0);
        out
    }

    /// The retained samples, sorted ascending (a copy; the ring order is
    /// an implementation detail). Test-only oracle for `quantiles`.
    #[cfg(test)]
    fn sorted(&self) -> Vec<u64> {
        let mut out = self.samples.clone();
        out.sort_unstable();
        out
    }
}

/// Exact running totals behind the shadow divergence report.
#[derive(Default)]
struct ShadowAccum {
    sampled_requests: u64,
    compared_pairs: u64,
    sum_abs_dp: f64,
    max_abs_dp: f64,
    disagreements: u64,
    shadow_missing: u64,
}

struct ServerState {
    /// The serving catalog behind one atomically-swapped `Arc`. Every
    /// request clones the `Arc` once and resolves against that snapshot,
    /// so a concurrent `Reload` can never change which model answers a
    /// request that has already started. Each entry carries its ensemble
    /// lowered at load time — compilation is a load-time step, not a
    /// format change.
    catalog: Mutex<Arc<Catalog>>,
    /// `Some` when registry-backed: where `Reload` rescans.
    registry_dir: Option<PathBuf>,
    /// CLI-level default override, re-applied on every reload.
    default_override: Option<String>,
    shadow: Option<ShadowConfig>,
    /// Sequence number of eligible requests, driving deterministic
    /// shadow sampling.
    shadow_seq: AtomicU64,
    shadow_accum: Mutex<ShadowAccum>,
    reloads: AtomicU64,
    options: ServeOptions,
    /// Resolved reactor thread count (reported in `Stats`).
    event_loops: usize,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Connections currently admitted (accepted and not yet closed);
    /// the acceptor sheds once this reaches capacity.
    active_conns: AtomicUsize,
    requests: AtomicU64,
    errors: AtomicU64,
    io_errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    pairs_scored: AtomicU64,
    score_batches: AtomicU64,
    batched_rows: AtomicU64,
    batched_requests: AtomicU64,
    /// Batch-fill observation window for [`BatchLinger::Auto`]: batches,
    /// rows, and member requests seen recently (all three halved together
    /// every [`FILL_WINDOW`] batches — an exponential decay, so the
    /// controller follows the current traffic shape).
    fill_batches: AtomicU64,
    fill_rows: AtomicU64,
    fill_requests: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

impl ServerState {
    fn record_latency(&self, us: u64) {
        self.latencies_us.lock().expect("latency lock").push(us);
    }

    /// Feeds one coalesced batch into the fill window. Racing decays can
    /// perturb the window by a batch or two; the controller only reads
    /// coarse ratios, so that is harmless.
    fn note_batch_fill(&self, rows: u64, requests: u64) {
        let batches = self.fill_batches.fetch_add(1, Ordering::Relaxed) + 1;
        let rows = self.fill_rows.fetch_add(rows, Ordering::Relaxed) + rows;
        let reqs = self.fill_requests.fetch_add(requests, Ordering::Relaxed) + requests;
        if batches >= FILL_WINDOW {
            self.fill_batches.store(batches / 2, Ordering::Relaxed);
            self.fill_rows.store(rows / 2, Ordering::Relaxed);
            self.fill_requests.store(reqs / 2, Ordering::Relaxed);
        }
    }

    /// Microseconds the next partial batch may linger for stragglers.
    fn linger_budget_us(&self) -> u64 {
        match self.options.batch_linger {
            BatchLinger::Fixed(us) => us,
            BatchLinger::Auto => auto_linger_us(
                self.fill_batches.load(Ordering::Relaxed),
                self.fill_rows.load(Ordering::Relaxed),
                self.fill_requests.load(Ordering::Relaxed),
            ),
        }
    }

    /// The current catalog snapshot. One clone of the `Arc`; holders keep
    /// serving their snapshot across a concurrent swap.
    fn catalog(&self) -> Arc<Catalog> {
        self.catalog.lock().expect("catalog lock").clone()
    }

    fn snapshot(&self) -> StatsSnapshot {
        let [p50_us, p95_us, p99_us, max_us] =
            self.latencies_us.lock().expect("latency lock").quantiles();
        let catalog = self.catalog();
        let entry = catalog.default_entry();
        let shadow = self.shadow.as_ref().map(|cfg| {
            let a = self.shadow_accum.lock().expect("shadow lock");
            ShadowReport {
                shadow_model: cfg.model_id.clone(),
                threshold: cfg.threshold,
                sampled_requests: a.sampled_requests,
                compared_pairs: a.compared_pairs,
                max_abs_dp: a.max_abs_dp,
                mean_abs_dp: if a.compared_pairs == 0 {
                    0.0
                } else {
                    a.sum_abs_dp / a.compared_pairs as f64
                },
                disagreements: a.disagreements,
                shadow_missing: a.shadow_missing,
            }
        });
        StatsSnapshot {
            model_id: entry.model_id.clone(),
            model_checksum: entry.checksum.clone(),
            schema_version: entry.schema_version,
            reloads: self.reloads.load(Ordering::Relaxed),
            shadow,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            pairs_scored: self.pairs_scored.load(Ordering::Relaxed),
            event_loops: self.event_loops as u64,
            score_batches: self.score_batches.load(Ordering::Relaxed),
            batched_rows: self.batched_rows.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            p50_us,
            p95_us,
            p99_us,
            max_us,
        }
    }
}

/// Whether eligible request `seq` (0-based) falls in the sampled
/// fraction: sampled iff `floor((seq+1)·f)` exceeds `floor(seq·f)`. The
/// count of sampled requests among the first `n` is exactly
/// `floor(n·f)` — deterministic, evenly spread, no RNG state.
fn shadow_sampled(seq: u64, fraction: f64) -> bool {
    let f = fraction.clamp(0.0, 1.0);
    ((seq + 1) as f64 * f).floor() > (seq as f64 * f).floor()
}

/// Maps a registry failure at startup onto the `io::Error` contract of
/// [`serve`] (a corrupt registry is `InvalidData`, not a panic).
fn registry_io_error(e: RegistryError) -> std::io::Error {
    match e {
        RegistryError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Runs a single-model server on `listener` until a `Shutdown` request
/// arrives — [`serve_source`] with [`ModelSource::Single`] and no shadow.
///
/// # Errors
///
/// Returns an [`std::io::Error`] only for listener-level failures that
/// occur before serving starts; transient `accept()` errors are retried
/// with exponential backoff and per-connection i/o errors just end that
/// connection.
pub fn serve(
    model: TrainedAttack,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    serve_source(ModelSource::Single(model), None, listener, options)
}

/// Runs the server on `listener` until a `Shutdown` request arrives,
/// then drains live connections and returns the final counters.
///
/// # Errors
///
/// Returns an [`std::io::Error`] for listener-level failures, for a
/// registry that fails to load (`InvalidData` carrying the typed
/// [`RegistryError`] message), or for a [`ShadowConfig`] whose fraction
/// is outside `[0, 1]` or whose model id is not in the starting catalog
/// (`InvalidInput` — a misconfigured shadow fails fast at startup, it
/// does not silently measure nothing).
pub fn serve_source(
    source: ModelSource,
    shadow: Option<ShadowConfig>,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    serve_prepared(Prepared::new(source, shadow)?, listener, options, None)
}

/// [`serve_source`] with an external [`ShutdownHandle`], so an operator
/// signal (SIGTERM on the CLI) can stop the server as gracefully as a
/// protocol `Shutdown` request: stop accepting, drain in-flight requests
/// through the reactors, return the final stats.
pub fn serve_source_with(
    source: ModelSource,
    shadow: Option<ShadowConfig>,
    listener: TcpListener,
    options: &ServeOptions,
    shutdown: Option<&ShutdownHandle>,
) -> std::io::Result<StatsSnapshot> {
    serve_prepared(Prepared::new(source, shadow)?, listener, options, shutdown)
}

/// External shutdown lever for a running server — the out-of-band
/// counterpart of the protocol's `Shutdown` request, used by the CLI's
/// SIGTERM handler.
///
/// [`ShutdownHandle::request`] is safe to call from any thread at any
/// time (before, during, or after the server runs; repeat calls are
/// idempotent). It flags the request and pokes the server's accept loop
/// awake with a throwaway local connection — the same wake-up the
/// in-protocol shutdown path uses — after which the server stops
/// accepting, drains every in-flight request through the reactors, and
/// returns its final [`StatsSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct ShutdownHandle {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug, Default)]
struct ShutdownInner {
    requested: AtomicBool,
    /// Bound address of the server this handle is attached to; recorded
    /// by `serve_prepared` so a request can wake the blocking acceptor.
    addr: Mutex<Option<SocketAddr>>,
}

impl ShutdownHandle {
    /// A fresh, unrequested handle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Has a shutdown been requested?
    #[must_use]
    pub fn requested(&self) -> bool {
        self.inner.requested.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown (idempotent, thread-safe,
    /// signal-watcher friendly).
    pub fn request(&self) {
        self.inner.requested.store(true, Ordering::Release);
        let addr = *self.inner.addr.lock().expect("shutdown handle poisoned");
        if let Some(addr) = addr {
            // Wake the acceptor the way initiate_shutdown does; glibc
            // installs SIGTERM handlers with SA_RESTART, so a blocked
            // accept() would otherwise never observe the flag.
            let _ = TcpStream::connect(addr);
        }
    }

    fn attach(&self, addr: SocketAddr) {
        *self.inner.addr.lock().expect("shutdown handle poisoned") = Some(addr);
        if self.requested() {
            // Request raced attach: the acceptor may already be blocked.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// A validated catalog + shadow config, ready to serve. Split out of
/// [`serve_source`] so [`ServerHandle::bind_source`] can do the (possibly
/// failing) registry load on the caller's thread — configuration errors
/// surface at bind time — while the serving threads run in the
/// background.
struct Prepared {
    catalog: Catalog,
    registry_dir: Option<PathBuf>,
    default_override: Option<String>,
    shadow: Option<ShadowConfig>,
}

impl Prepared {
    fn new(source: ModelSource, shadow: Option<ShadowConfig>) -> std::io::Result<Self> {
        let (catalog, registry_dir, default_override) = match source {
            ModelSource::Single(model) => (Catalog::single(model), None, None),
            ModelSource::Registry { dir, default_model } => {
                let catalog =
                    Catalog::load(&dir, default_model.as_deref()).map_err(registry_io_error)?;
                (catalog, Some(dir), default_model)
            }
        };
        if let Some(cfg) = &shadow {
            let invalid =
                |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
            if !cfg.fraction.is_finite() || !(0.0..=1.0).contains(&cfg.fraction) {
                return Err(invalid(format!(
                    "shadow fraction {} is not in [0, 1]",
                    cfg.fraction
                )));
            }
            if catalog.get(&cfg.model_id).is_none() {
                return Err(invalid(format!(
                    "shadow model '{}' is not in the catalog",
                    cfg.model_id
                )));
            }
        }
        Ok(Self {
            catalog,
            registry_dir,
            default_override,
            shadow,
        })
    }
}

/// A scoring job dispatched from an event loop to the executor.
struct Job {
    /// Which event loop owns the connection.
    loop_id: usize,
    /// Slab index of the connection on that loop.
    token: usize,
    /// Connection generation guard: the completion is dropped if the
    /// slab slot was reused by the time it arrives.
    conn_seq: u64,
    /// When the request's last byte arrived (latency clock).
    start: Instant,
    kind: JobKind,
}

enum JobKind {
    /// A `ScorePairs` batch, rows already validated and flattened
    /// (row-major, `width` columns each).
    Pairs {
        catalog: Arc<Catalog>,
        entry: Arc<ModelEntry>,
        rows: Vec<f64>,
        nrows: usize,
    },
    /// A full `Attack` run.
    Attack {
        entry: Arc<ModelEntry>,
        challenge: String,
        truth: String,
        threshold: f64,
        detail: bool,
        /// Whether the request arrived as a dense `ATTACK` frame. The
        /// response mirrors the request's framing: dense in, dense out;
        /// JSON-framed in (a pre-0x03 binary client), JSON-framed out.
        dense: bool,
    },
}

/// A scored response travelling back from the executor to the owning
/// event loop.
struct Completion {
    token: usize,
    conn_seq: u64,
    start: Instant,
    response: Response,
    /// On the binary wire, force the JSON-payload response frame even
    /// where a dense encoding exists — set for `Attack` requests that
    /// arrived JSON-framed, so old clients can decode the reply.
    prefer_json: bool,
}

fn serve_prepared(
    prepared: Prepared,
    listener: TcpListener,
    options: &ServeOptions,
    shutdown_handle: Option<&ShutdownHandle>,
) -> std::io::Result<StatsSnapshot> {
    let addr = listener.local_addr()?;
    if let Some(handle) = shutdown_handle {
        handle.attach(addr);
    }
    let n_loops = event_loop_count(options);
    let n_workers = pool_size(options.workers);
    let capacity = n_workers + queue_depth(options);
    let state = ServerState {
        catalog: Mutex::new(Arc::new(prepared.catalog)),
        registry_dir: prepared.registry_dir,
        default_override: prepared.default_override,
        shadow: prepared.shadow,
        shadow_seq: AtomicU64::new(0),
        shadow_accum: Mutex::new(ShadowAccum::default()),
        reloads: AtomicU64::new(0),
        options: *options,
        event_loops: n_loops,
        addr,
        shutdown: AtomicBool::new(false),
        active_conns: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        io_errors: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        pairs_scored: AtomicU64::new(0),
        score_batches: AtomicU64::new(0),
        batched_rows: AtomicU64::new(0),
        batched_requests: AtomicU64::new(0),
        fill_batches: AtomicU64::new(0),
        fill_rows: AtomicU64::new(0),
        fill_requests: AtomicU64::new(0),
        latencies_us: Mutex::new(LatencyRing::with_capacity(MAX_LATENCY_SAMPLES)),
    };

    // Per-loop reactor plumbing, built up front so waker/sender clones
    // can fan out to the acceptor and the executor threads.
    let mut polls = Vec::with_capacity(n_loops);
    let mut wakers = Vec::with_capacity(n_loops);
    let mut intake_txs = Vec::with_capacity(n_loops);
    let mut intake_rxs = Vec::with_capacity(n_loops);
    let mut completion_txs = Vec::with_capacity(n_loops);
    let mut completion_rxs = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        let poll = mio::Poll::new()?;
        let waker = mio::Waker::new(poll.registry(), WAKE_TOKEN)?;
        let (itx, irx) = mpsc::channel::<TcpStream>();
        let (ctx, crx) = mpsc::channel::<Completion>();
        polls.push(poll);
        wakers.push(waker);
        intake_txs.push(itx);
        intake_rxs.push(irx);
        completion_txs.push(ctx);
        completion_rxs.push(crx);
    }
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let jobs_rx = Mutex::new(jobs_rx);

    let state_ref = &state;
    let jobs_rx_ref = &jobs_rx;
    crossbeam::thread::scope(|s| {
        for _ in 0..n_workers {
            let txs: Vec<_> = completion_txs.clone();
            let wks: Vec<_> = wakers.clone();
            s.spawn(move |_| executor_run(state_ref, jobs_rx_ref, &txs, &wks));
        }
        drop(completion_txs);
        for (loop_id, ((poll, intake), completions)) in polls
            .into_iter()
            .zip(intake_rxs)
            .zip(completion_rxs)
            .enumerate()
        {
            let waker = wakers[loop_id].clone();
            let jobs = jobs_tx.clone();
            s.spawn(move |_| {
                EventLoop::new(state_ref, loop_id, poll, waker, intake, completions, jobs).run();
            });
        }
        drop(jobs_tx);

        let mut accept_failures = 0u32;
        let mut next_loop = 0usize;
        loop {
            // An external shutdown (SIGTERM via a ShutdownHandle) behaves
            // exactly like a protocol Shutdown: flag the reactors and stop
            // accepting; the drain below finishes in-flight requests.
            if shutdown_handle.is_some_and(ShutdownHandle::requested) {
                state_ref.shutdown.store(true, Ordering::Release);
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    if state_ref.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if shutdown_handle.is_some_and(ShutdownHandle::requested) {
                        state_ref.shutdown.store(true, Ordering::Release);
                        break;
                    }
                    if state_ref.active_conns.load(Ordering::Acquire) >= capacity {
                        shed_connection(stream, state_ref);
                        continue;
                    }
                    state_ref.active_conns.fetch_add(1, Ordering::AcqRel);
                    let id = next_loop % wakers.len();
                    next_loop = next_loop.wrapping_add(1);
                    if intake_txs[id].send(stream).is_ok() {
                        let _ = wakers[id].wake();
                    } else {
                        // The loop died (only possible during teardown).
                        state_ref.active_conns.fetch_sub(1, Ordering::AcqRel);
                        break;
                    }
                }
                Err(_) => {
                    if state_ref.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    accept_failures = accept_failures.saturating_add(1);
                    std::thread::sleep(accept_backoff(accept_failures));
                }
            }
        }
        // No more admissions: close the intake channels, then wake every
        // loop so each can observe shutdown and drain its connections.
        drop(intake_txs);
        for w in &wakers {
            let _ = w.wake();
        }
    })
    .expect("server thread panicked");
    Ok(state.snapshot())
}

/// Load shedding: the server is at capacity, so answer `stream` with a
/// `Busy` hint (best-effort, under a short write deadline so a
/// non-reading client cannot stall the accept loop) and drop it.
fn shed_connection(stream: TcpStream, state: &ServerState) {
    state.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(BUSY_RETRY_AFTER_MS)));
    // The shed reply predates wire detection (no bytes have been read),
    // so it is sent as NDJSON — binary clients resynchronize on the
    // connection close that follows, and the retrying client treats a
    // framing error on a fresh connection as retryable i/o anyway.
    let mut line = serde_json::to_string(&Response::Busy {
        retry_after_ms: BUSY_RETRY_AFTER_MS,
    })
    .expect("responses always serialize");
    line.push('\n');
    let _ = (&stream).write_all(line.as_bytes());
}

/// A server running on a background thread — the test/CLI-friendly way to
/// host a model.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<StatsSnapshot>>,
}

impl ServerHandle {
    /// Binds `addr_spec` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `model` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if the address cannot be bound.
    pub fn bind(
        model: TrainedAttack,
        addr_spec: &str,
        options: ServeOptions,
    ) -> std::io::Result<Self> {
        Self::bind_source(ModelSource::Single(model), None, addr_spec, options)
    }

    /// Binds `addr_spec` and serves `source` (with optional shadow
    /// scoring) on a background thread. Registry and shadow validation
    /// happens here, before the thread spawns, so a misconfigured server
    /// fails at bind time.
    ///
    /// # Errors
    ///
    /// Returns the [`std::io::Error`]s of [`serve_source`]: bind
    /// failures, an unloadable registry, or an invalid shadow config.
    pub fn bind_source(
        source: ModelSource,
        shadow: Option<ShadowConfig>,
        addr_spec: &str,
        options: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr_spec)?;
        let addr = listener.local_addr()?;
        let prepared = Prepared::new(source, shadow)?;
        let thread = std::thread::spawn(move || serve_prepared(prepared, listener, &options, None));
        Ok(Self { addr, thread })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the server's listener-level [`std::io::Error`], if any.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> std::io::Result<StatsSnapshot> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Where a connection's framing state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Between requests; the idle deadline applies.
    Idle,
    /// A request's first byte has arrived but the frame is incomplete;
    /// the mid-request deadline applies from `started`.
    Receiving(Instant),
    /// A scoring job is in flight on the executor; reads are paused for
    /// backpressure and no deadline applies (scoring time is unbounded,
    /// as it was for the thread-per-connection server).
    Processing,
}

/// What the NDJSON scanner found at the front of the read buffer.
#[derive(Debug, PartialEq, Eq)]
enum LineScan {
    /// A full line ends at this byte index (exclusive of the newline).
    Complete(usize),
    /// The line already exceeds the byte cap; unrecoverable.
    TooLarge,
    /// No newline yet; keep reading.
    Incomplete,
}

/// Scans for the end of the NDJSON request line at the front of `rbuf`.
/// A line longer than `cap` is rejected whether or not its newline has
/// arrived yet — the pre-reactor bounded reader behaved identically.
fn scan_line(rbuf: &[u8], cap: usize) -> LineScan {
    match rbuf.iter().position(|&b| b == b'\n') {
        Some(pos) if pos > cap => LineScan::TooLarge,
        Some(pos) => LineScan::Complete(pos),
        None if rbuf.len() > cap => LineScan::TooLarge,
        None => LineScan::Incomplete,
    }
}

/// One live connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    /// Generation stamp matching in-flight [`Job::conn_seq`]s.
    seq: u64,
    /// Detected wire format; `None` until the first byte arrives.
    wire: Option<Wire>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    phase: Phase,
    /// When the connection last became idle (start of the idle window).
    idle_since: Instant,
    /// Deadline for the current response drain; `None` when `wbuf` is
    /// empty or the mid-request deadline is disabled. Reset on write
    /// progress, mirroring the per-syscall write timeout of the
    /// blocking server.
    write_deadline: Option<Instant>,
    /// Close once `wbuf` drains (set by `Shutdown`, `TooLarge`,
    /// `Timeout`, and unrecoverable framing errors).
    close_after_flush: bool,
    /// Peer sent EOF; serve out buffered complete requests, then close.
    eof: bool,
    /// Whether a write failure should count as an `io_error` (true when
    /// a normal response is pending; the closing `TooLarge`/`Timeout`
    /// replies are best-effort and already counted).
    io_on_write_fail: bool,
    /// Registered with the reactor (edge-triggered, both interests,
    /// exactly once at admission — never reregistered).
    registered: bool,
    /// Cached readiness under edge triggering: the kernel reports each
    /// readiness transition once, so the loop remembers it until a read
    /// or write actually returns `WouldBlock`. Both start true — a fresh
    /// socket is writable and may already hold bytes.
    read_ready: bool,
    write_ready: bool,
    /// On the loop's ready list (deduplicates scheduling).
    queued: bool,
}

impl Conn {
    fn new(stream: TcpStream, seq: u64) -> Self {
        Self {
            stream,
            seq,
            wire: None,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            phase: Phase::Idle,
            idle_since: Instant::now(),
            write_deadline: None,
            close_after_flush: false,
            eof: false,
            io_on_write_fail: false,
            registered: false,
            read_ready: true,
            write_ready: true,
            queued: false,
        }
    }

    fn wants_read(&self) -> bool {
        !self.eof && !self.close_after_flush && self.phase != Phase::Processing
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// One reactor thread: an epoll loop over a slab of connections.
struct EventLoop<'a> {
    state: &'a ServerState,
    loop_id: usize,
    poll: mio::Poll,
    waker: mio::Waker,
    intake: mpsc::Receiver<TcpStream>,
    completions: mpsc::Receiver<Completion>,
    jobs: mpsc::Sender<Job>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_seq: u64,
    /// Ready list: connections with cached readiness or buffered work.
    /// Each gets one bounded service turn per loop iteration and
    /// re-queues at the back if still runnable — round-robin fairness
    /// under edge triggering.
    pending: VecDeque<usize>,
}

impl<'a> EventLoop<'a> {
    fn new(
        state: &'a ServerState,
        loop_id: usize,
        poll: mio::Poll,
        waker: mio::Waker,
        intake: mpsc::Receiver<TcpStream>,
        completions: mpsc::Receiver<Completion>,
        jobs: mpsc::Sender<Job>,
    ) -> Self {
        Self {
            state,
            loop_id,
            poll,
            waker,
            intake,
            completions,
            jobs,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            pending: VecDeque::new(),
        }
    }

    fn run(mut self) {
        let mut events = mio::Events::with_capacity(256);
        loop {
            // Channels are drained every iteration: the waker guarantees
            // a wakeup *after* each send, so nothing is ever stranded.
            let intake_closed = self.drain_intake();
            self.drain_completions();
            // One bounded service turn per currently-ready connection;
            // a turn that leaves work behind re-queues at the back, so
            // this round visits each ready connection exactly once.
            let turns = self.pending.len();
            for _ in 0..turns {
                let Some(idx) = self.pending.pop_front() else {
                    break;
                };
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue; // stale entry for a closed connection
                };
                conn.queued = false;
                self.service(idx);
            }
            // The exit check sits *after* the service turns: the final
            // wake and the last connection's EOF can arrive in one poll
            // return, and checking before servicing would see live > 0,
            // close the connection, then block forever with no further
            // wake coming. Anything that flips the condition after this
            // point also fires the waker, so the blocking poll below
            // still returns.
            if intake_closed && self.live == 0 && self.state.shutdown.load(Ordering::Acquire) {
                return;
            }
            let timeout = if self.pending.is_empty() {
                self.next_deadline().map(|d| {
                    let now = Instant::now();
                    // +1ms so a just-expired deadline doesn't busy-poll
                    // on millisecond truncation.
                    d.saturating_duration_since(now) + Duration::from_millis(1)
                })
            } else {
                // Buffered work remains: collect any new readiness
                // without blocking and keep servicing.
                Some(Duration::ZERO)
            };
            if self.poll.poll(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for this loop;
                // shed everything rather than spin.
                self.close_all();
                return;
            }
            for event in events.iter() {
                if event.token() == WAKE_TOKEN {
                    self.waker.drain();
                } else {
                    self.note_event(event);
                }
            }
            self.sweep_deadlines();
        }
    }

    /// Pulls newly accepted connections into the slab. Returns true when
    /// the acceptor has hung up (no more connections will ever arrive).
    fn drain_intake(&mut self) -> bool {
        loop {
            match self.intake.try_recv() {
                Ok(stream) => self.admit(stream),
                Err(mpsc::TryRecvError::Empty) => return false,
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.state.io_errors.fetch_add(1, Ordering::Relaxed);
            self.state.active_conns.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let conn = Conn::new(stream, seq);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        self.live += 1;
        // One registration for the connection's whole life: both
        // interests, edge-triggered. Readiness transitions arrive as
        // events; the cached `read_ready`/`write_ready` flags carry them
        // between service turns, so there is no rearm traffic at all.
        let interest = (mio::Interest::READABLE | mio::Interest::WRITABLE).edge();
        let registered = {
            let conn = self.conns[idx].as_ref().expect("just inserted");
            self.poll
                .registry()
                .register(&conn.stream, mio::Token(idx), interest)
                .is_ok()
        };
        if !registered {
            self.state.io_errors.fetch_add(1, Ordering::Relaxed);
            self.close(idx);
            return;
        }
        self.conns[idx].as_mut().expect("just inserted").registered = true;
        // The socket may already hold a request (and its initial
        // readiness edges may predate registration); service it now.
        self.service(idx);
    }

    fn drain_completions(&mut self) {
        while let Ok(c) = self.completions.try_recv() {
            self.apply_completion(c);
        }
    }

    fn apply_completion(&mut self, c: Completion) {
        let Some(conn) = self.conns.get_mut(c.token).and_then(Option::as_mut) else {
            return;
        };
        if conn.seq != c.conn_seq {
            return; // the slot was reused; the requester is long gone
        }
        self.state.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(c.response, Response::Error { .. }) {
            self.state.errors.fetch_add(1, Ordering::Relaxed);
        }
        conn.phase = Phase::Idle;
        conn.idle_since = Instant::now();
        self.enqueue_response_framed(c.token, &c.response, false, c.prefer_json);
        let us = u64::try_from(c.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.state.record_latency(us);
        // Pipelined bytes may already hold the next request.
        let more = self.process_rbuf(c.token);
        self.settle(c.token, more);
    }

    /// Records an edge-triggered readiness transition and puts the
    /// connection on the ready list. No I/O happens here — the service
    /// turn does it, under the fairness budget.
    fn note_event(&mut self, event: mio::Event) {
        let idx = event.token().0;
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return; // stale event for a closed connection
        };
        if event.is_readable() {
            conn.read_ready = true;
        }
        if event.is_writable() {
            conn.write_ready = true;
        }
        self.schedule(idx);
    }

    /// Puts a connection on the ready list (idempotent).
    fn schedule(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if !conn.queued {
            conn.queued = true;
            self.pending.push_back(idx);
        }
    }

    /// One bounded service turn: flush what the socket will take, read
    /// until `WouldBlock` or the backpressure cap, process up to
    /// [`FRAME_BUDGET`] buffered frames, then settle (which re-queues
    /// the connection if it can still make progress without a new
    /// readiness event).
    fn service(&mut self, idx: usize) {
        if self
            .conns
            .get(idx)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.write_ready && c.wants_write())
        {
            self.try_flush(idx);
        }
        if self
            .conns
            .get(idx)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.read_ready && c.wants_read())
        {
            self.do_read(idx);
        }
        let more = self.process_rbuf(idx);
        self.settle(idx, more);
    }

    /// Post-turn settlement: flush, apply close decisions, and re-queue
    /// the connection if it can still make progress *without* waiting
    /// for a new readiness event. Under edge triggering this re-queue is
    /// load-bearing: a turn that stops for any reason other than
    /// `WouldBlock` (fairness budget, backpressure, an in-flight job
    /// that just completed) would otherwise strand cached readiness.
    fn settle(&mut self, idx: usize, more_frames: bool) {
        self.after_touch(idx);
        let Some(conn) = self.conns.get(idx).and_then(Option::as_ref) else {
            return;
        };
        let runnable = more_frames
            || (conn.read_ready && conn.wants_read())
            || (conn.write_ready && conn.wants_write());
        if runnable {
            self.schedule(idx);
        }
    }

    /// Drains the socket into the read buffer until `WouldBlock` (which
    /// clears the cached readiness — the edge-triggered contract), EOF,
    /// or the backpressure cap.
    fn do_read(&mut self, idx: usize) {
        let cap = self.state.options.max_request_bytes;
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            // Backpressure: never buffer more than one request's cap
            // (plus a frame header) ahead of processing. `read_ready`
            // stays true — the bytes are still there; the next turn
            // resumes after the buffer drains.
            if conn.rbuf.len() > cap + binary::HEADER_LEN {
                break;
            }
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&buf[..n]);
                    // A request has started; the mid-request clock runs.
                    if conn.phase == Phase::Idle {
                        conn.phase = Phase::Receiving(Instant::now());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.read_ready = false;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.state.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Consumes complete requests from the front of the read buffer
    /// until it runs dry, a scoring job goes in flight, the fairness
    /// budget is spent, or the connection turns unrecoverable.
    ///
    /// Zero-copy: the buffer is taken out of the connection and walked
    /// with a cursor; every frame (NDJSON line or binary payload) is
    /// handed to its handler as a borrowed slice, and the leftover tail
    /// compacts **once** at the end of the walk — at most one partial
    /// frame moves per turn, where the old `drain().collect()` copied
    /// every frame and memmoved the whole tail per request (quadratic
    /// under pipelining). Handlers never touch `conn.rbuf`, which sits
    /// empty while the walk borrows from the taken buffer.
    ///
    /// Returns true when complete frames may remain buffered (the budget
    /// ran out) — the caller must keep the connection on the ready list.
    fn process_rbuf(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        if conn.phase == Phase::Processing || conn.close_after_flush {
            return false;
        }
        if conn.rbuf.is_empty() {
            conn.phase = Phase::Idle;
            return false;
        }
        let wire = *conn.wire.get_or_insert_with(|| match conn.rbuf.first() {
            Some(&binary::MAGIC0) => Wire::Binary,
            _ => Wire::Ndjson,
        });
        let cap = self.state.options.max_request_bytes;
        let buf = std::mem::take(&mut conn.rbuf);
        let mut rpos = 0usize;
        let mut budget = FRAME_BUDGET;
        let mut more = false;
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return false; // closed mid-walk; the buffer dies with it
            };
            if conn.phase == Phase::Processing || conn.close_after_flush {
                break;
            }
            if rpos >= buf.len() {
                break;
            }
            if budget == 0 {
                more = true;
                break;
            }
            match wire {
                Wire::Ndjson => match scan_line(&buf[rpos..], cap) {
                    LineScan::TooLarge => {
                        self.reject_too_large(idx);
                        break;
                    }
                    LineScan::Incomplete => break,
                    LineScan::Complete(pos) => {
                        let line = &buf[rpos..rpos + pos];
                        rpos += pos + 1;
                        budget -= 1;
                        self.handle_line(idx, line);
                    }
                },
                Wire::Binary => {
                    if buf.len() - rpos < binary::HEADER_LEN {
                        break;
                    }
                    let header_bytes: [u8; binary::HEADER_LEN] = buf
                        [rpos..rpos + binary::HEADER_LEN]
                        .try_into()
                        .expect("8 bytes");
                    match binary::decode_header(header_bytes, cap as u64) {
                        Err(binary::FrameError::TooLarge { .. }) => {
                            self.reject_too_large(idx);
                            break;
                        }
                        Err(e) => {
                            // Bad magic/version/type: the stream cannot
                            // be re-framed; reply and close, like a
                            // garbage NDJSON line that also lost sync.
                            self.state.requests.fetch_add(1, Ordering::Relaxed);
                            self.state.errors.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::Error {
                                code: ErrorCode::BadRequest,
                                message: e.to_string(),
                            };
                            self.enqueue_response(idx, &resp, true);
                            if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                                conn.io_on_write_fail = true;
                            }
                            break;
                        }
                        Ok(h) => {
                            let total = binary::HEADER_LEN + h.len as usize;
                            if buf.len() - rpos < total {
                                break;
                            }
                            let payload = &buf[rpos + binary::HEADER_LEN..rpos + total];
                            rpos += total;
                            budget -= 1;
                            self.handle_binary_frame(idx, h.frame_type, payload);
                        }
                    }
                }
            }
        }
        // Put the unconsumed tail back: one compaction per turn.
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        let mut buf = buf;
        if rpos >= buf.len() {
            buf.clear();
        } else if rpos > 0 {
            buf.copy_within(rpos.., 0);
            buf.truncate(buf.len() - rpos);
        }
        conn.rbuf = buf;
        if conn.phase == Phase::Processing || conn.close_after_flush {
            return false;
        }
        if conn.rbuf.is_empty() {
            if !matches!(conn.phase, Phase::Idle) {
                conn.phase = Phase::Idle;
                conn.idle_since = Instant::now();
            }
        } else if !matches!(conn.phase, Phase::Receiving(_)) {
            conn.phase = Phase::Receiving(Instant::now());
        }
        more
    }

    /// One NDJSON request line (newline stripped).
    fn handle_line(&mut self, idx: usize, line: &[u8]) {
        let start = Instant::now();
        let Ok(text) = std::str::from_utf8(line) else {
            self.state.requests.fetch_add(1, Ordering::Relaxed);
            self.state.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::Error {
                code: ErrorCode::BadRequest,
                message: "request line is not valid UTF-8".into(),
            };
            self.enqueue_response(idx, &resp, false);
            return;
        };
        if text.trim().is_empty() {
            return; // blank keep-alive lines are free
        }
        match serde_json::from_str::<Request>(text) {
            Err(e) => {
                self.state.requests.fetch_add(1, Ordering::Relaxed);
                self.state.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("bad request: {e}"),
                };
                self.enqueue_response(idx, &resp, false);
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.state.record_latency(us);
            }
            Ok(request) => self.handle_request(idx, request, start, false),
        }
    }

    /// One binary v2 frame (header already validated and stripped).
    fn handle_binary_frame(&mut self, idx: usize, frame_type: u8, payload: &[u8]) {
        let start = Instant::now();
        if frame_type == binary::FRAME_SCORE_PAIRS {
            // The hot frame skips `decode_request`'s nested-Vec
            // materialization: rows go straight from the borrowed
            // payload into the flat kernel batch.
            return self.handle_score_pairs_dense(idx, payload, start);
        }
        match binary::decode_request(frame_type, payload) {
            Err(e) => {
                // The frame was well-delimited, so framing survives: as
                // with a garbage NDJSON line, reply and keep serving.
                self.state.requests.fetch_add(1, Ordering::Relaxed);
                self.state.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("bad request: {e}"),
                };
                self.enqueue_response(idx, &resp, false);
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.state.record_latency(us);
            }
            Ok(request) => {
                self.handle_request(idx, request, start, frame_type == binary::FRAME_ATTACK);
            }
        }
    }

    /// A dense `SCORE_PAIRS` frame: decode a borrowed row view over the
    /// connection buffer and copy the f64 rows directly into the flat
    /// kernel batch — no intermediate `Vec<Vec<f64>>`.
    fn handle_score_pairs_dense(&mut self, idx: usize, payload: &[u8], start: Instant) {
        let view = match binary::decode_score_pairs(payload) {
            Ok(view) => view,
            Err(e) => {
                self.state.requests.fetch_add(1, Ordering::Relaxed);
                self.state.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("bad request: {e}"),
                };
                self.enqueue_response(idx, &resp, false);
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.state.record_latency(us);
                return;
            }
        };
        let catalog = self.state.catalog();
        match catalog.resolve(view.model_id) {
            Err(e) => self.finish_inline(idx, not_found(&e), start),
            Ok(entry) => {
                let expected = entry.model.config().features.len();
                if view.rows > 0 && view.cols != expected {
                    let resp = Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "feature row 0 has {} values, model expects {expected}",
                            view.cols
                        ),
                    };
                    self.finish_inline(idx, resp, start);
                    return;
                }
                let mut rows = Vec::with_capacity(view.rows * view.cols);
                view.extend_rows_into(&mut rows);
                let entry = entry.clone();
                self.dispatch_job(
                    idx,
                    start,
                    JobKind::Pairs {
                        catalog,
                        entry,
                        rows,
                        nrows: view.rows,
                    },
                );
            }
        }
    }

    fn handle_request(&mut self, idx: usize, request: Request, start: Instant, dense: bool) {
        match request {
            Request::Health => {
                let catalog = self.state.catalog();
                let entry = catalog.default_entry();
                let resp = Response::Health {
                    model: entry.model.config().name.clone(),
                    features: entry.model.config().features.len(),
                    trees: entry.model.model().num_trees(),
                    artifact_version: ARTIFACT_VERSION,
                    model_id: entry.model_id.clone(),
                    checksum: entry.checksum.clone(),
                    schema_version: entry.schema_version,
                };
                self.finish_inline(idx, resp, start);
            }
            Request::Stats => {
                // Snapshot before counting this request, so `Stats`
                // reports the world *before* itself (exact-accounting
                // tests rely on this).
                let resp = Response::Stats {
                    stats: self.state.snapshot(),
                };
                self.finish_inline(idx, resp, start);
            }
            Request::ListModels => {
                let catalog = self.state.catalog();
                let resp = Response::Models {
                    default_model: catalog.default_id().to_owned(),
                    models: catalog
                        .entries()
                        .iter()
                        .map(|e| ModelInfo {
                            model_id: e.model_id.clone(),
                            config: e.model.config().name.clone(),
                            features: e.model.config().features.len(),
                            trees: e.model.model().num_trees(),
                            checksum: e.checksum.clone(),
                            schema_version: e.schema_version,
                            split_layer: e.meta.split_layer.clone(),
                        })
                        .collect(),
                };
                self.finish_inline(idx, resp, start);
            }
            Request::Reload => {
                let resp = reload(self.state);
                self.finish_inline(idx, resp, start);
            }
            Request::Shutdown => {
                self.state.requests.fetch_add(1, Ordering::Relaxed);
                self.enqueue_response(idx, &Response::ShuttingDown, true);
                if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                    // A failed ShuttingDown write counted as io before.
                    conn.io_on_write_fail = true;
                }
                let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.state.record_latency(us);
                initiate_shutdown(self.state);
            }
            Request::ScorePairs { features, model_id } => {
                let catalog = self.state.catalog();
                match catalog.resolve(model_id.as_deref()) {
                    Err(e) => self.finish_inline(idx, not_found(&e), start),
                    Ok(entry) => {
                        let expected = entry.model.config().features.len();
                        if let Some(bad) = features.iter().position(|row| row.len() != expected) {
                            let resp = Response::Error {
                                code: ErrorCode::BadRequest,
                                message: format!(
                                    "feature row {bad} has {} values, model expects {expected}",
                                    features[bad].len()
                                ),
                            };
                            self.finish_inline(idx, resp, start);
                            return;
                        }
                        let nrows = features.len();
                        let mut rows = Vec::with_capacity(nrows * expected);
                        for row in &features {
                            rows.extend_from_slice(row);
                        }
                        let entry = entry.clone();
                        self.dispatch_job(
                            idx,
                            start,
                            JobKind::Pairs {
                                catalog,
                                entry,
                                rows,
                                nrows,
                            },
                        );
                    }
                }
            }
            Request::Attack {
                challenge,
                truth,
                threshold,
                detail,
                model_id,
            } => {
                let catalog = self.state.catalog();
                match catalog.resolve(model_id.as_deref()) {
                    Err(e) => self.finish_inline(idx, not_found(&e), start),
                    Ok(entry) => {
                        let entry = entry.clone();
                        self.dispatch_job(
                            idx,
                            start,
                            JobKind::Attack {
                                entry,
                                challenge,
                                truth,
                                threshold,
                                detail,
                                dense,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Books and enqueues an inline (non-executor) response.
    fn finish_inline(&mut self, idx: usize, resp: Response, start: Instant) {
        self.state.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(resp, Response::Error { .. }) {
            self.state.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.enqueue_response(idx, &resp, false);
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.state.record_latency(us);
    }

    /// Hands a scoring job to the executor and pauses this connection's
    /// request intake until the completion returns.
    fn dispatch_job(&mut self, idx: usize, start: Instant, kind: JobKind) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        conn.phase = Phase::Processing;
        let job = Job {
            loop_id: self.loop_id,
            token: idx,
            conn_seq: conn.seq,
            start,
            kind,
        };
        if self.jobs.send(job).is_err() {
            // Executor gone: only reachable during teardown.
            self.close(idx);
        }
    }

    /// The oversized-request rejection: typed reply, then close — the
    /// rest of the request is unread, so the stream cannot be
    /// resynchronized. Not counted as a request (the request never
    /// finished arriving), matching the blocking server.
    fn reject_too_large(&mut self, idx: usize) {
        self.state.errors.fetch_add(1, Ordering::Relaxed);
        let resp = Response::Error {
            code: ErrorCode::TooLarge,
            message: format!(
                "request exceeds the {} byte cap",
                self.state.options.max_request_bytes
            ),
        };
        self.enqueue_response(idx, &resp, true);
    }

    /// Serializes `resp` for the connection's wire into its write buffer
    /// and schedules the flush. `closing` also marks the connection to
    /// close once the buffer drains.
    fn enqueue_response(&mut self, idx: usize, resp: &Response, closing: bool) {
        self.enqueue_response_framed(idx, resp, closing, false);
    }

    /// [`Self::enqueue_response`] with the binary framing pinned:
    /// `prefer_json` forces the JSON-payload response frame so a
    /// JSON-framed `Attack` gets a reply its (possibly pre-dense) client
    /// can decode — responses mirror the request's framing.
    fn enqueue_response_framed(
        &mut self,
        idx: usize,
        resp: &Response,
        closing: bool,
        prefer_json: bool,
    ) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        match conn.wire.unwrap_or(Wire::Ndjson) {
            Wire::Ndjson => {
                let mut line = serde_json::to_string(resp).expect("responses always serialize");
                line.push('\n');
                conn.wbuf.extend_from_slice(line.as_bytes());
            }
            Wire::Binary if prefer_json => {
                conn.wbuf
                    .extend_from_slice(&binary::encode_response_json(resp));
            }
            Wire::Binary => {
                conn.wbuf.extend_from_slice(&binary::encode_response(resp));
            }
        }
        if closing {
            conn.close_after_flush = true;
        } else {
            conn.io_on_write_fail = true;
        }
        if conn.write_deadline.is_none() {
            conn.write_deadline =
                timeout_of(self.state.options.request_timeout_ms).map(|t| Instant::now() + t);
        }
    }

    /// Writes as much buffered response as the socket accepts.
    fn try_flush(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        while conn.wpos < conn.wbuf.len() {
            match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    if conn.io_on_write_fail {
                        self.state.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    conn.wpos += n;
                    // Progress restarts the stall clock, mirroring the
                    // blocking server's per-syscall write timeout.
                    conn.write_deadline = timeout_of(self.state.options.request_timeout_ms)
                        .map(|t| Instant::now() + t);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.write_ready = false;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if conn.io_on_write_fail {
                        self.state.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    self.close(idx);
                    return;
                }
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            conn.write_deadline = None;
            conn.io_on_write_fail = false;
        }
    }

    /// Post-activity settlement: flush pending bytes and apply close
    /// decisions. No registration churn — the edge-triggered interest
    /// set at admission covers the connection's whole life.
    fn after_touch(&mut self, idx: usize) {
        if self
            .conns
            .get_mut(idx)
            .and_then(Option::as_mut)
            .is_some_and(|c| c.write_ready && c.wants_write())
        {
            self.try_flush(idx);
        }
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let flushed = !conn.wants_write();
        if conn.close_after_flush && flushed {
            self.close(idx);
            return;
        }
        if conn.eof && conn.phase != Phase::Processing && flushed && !conn.close_after_flush {
            // EOF with no response in flight: any leftover bytes are a
            // torn frame (the peer died mid-request); an empty buffer is
            // a normal goodbye.
            if !conn.rbuf.is_empty() {
                self.state.io_errors.fetch_add(1, Ordering::Relaxed);
            }
            self.close(idx);
        }
    }

    /// The earliest deadline across all connections (poll timeout).
    fn next_deadline(&self) -> Option<Instant> {
        let opts = &self.state.options;
        let idle = timeout_of(opts.idle_timeout_ms);
        let request = timeout_of(opts.request_timeout_ms);
        let mut min: Option<Instant> = None;
        let mut fold = |d: Instant| min = Some(min.map_or(d, |m| m.min(d)));
        for conn in self.conns.iter().flatten() {
            match conn.phase {
                Phase::Idle => {
                    if let Some(t) = idle {
                        fold(conn.idle_since + t);
                    }
                }
                Phase::Receiving(started) => {
                    if let Some(t) = request {
                        fold(started + t);
                    }
                }
                Phase::Processing => {}
            }
            if let Some(d) = conn.write_deadline {
                fold(d);
            }
        }
        min
    }

    /// Fires expired idle / mid-request / write-stall deadlines.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let opts = self.state.options;
        let idle = timeout_of(opts.idle_timeout_ms);
        let request = timeout_of(opts.request_timeout_ms);
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if let Some(d) = conn.write_deadline {
                if now >= d {
                    // The peer stopped draining its response.
                    if conn.io_on_write_fail {
                        self.state.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    self.close(idx);
                    continue;
                }
            }
            match conn.phase {
                Phase::Idle => {
                    if idle.is_some_and(|t| now >= conn.idle_since + t) && !conn.close_after_flush {
                        // Idle expiry is a normal lifecycle event.
                        self.close(idx);
                    }
                }
                Phase::Receiving(started) => {
                    if request.is_some_and(|t| now >= started + t) {
                        self.state.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.state.errors.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::Error {
                            code: ErrorCode::Timeout,
                            message: format!(
                                "request stalled past the {} ms mid-request deadline",
                                opts.request_timeout_ms
                            ),
                        };
                        self.enqueue_response(idx, &resp, true);
                        self.after_touch(idx);
                    }
                }
                Phase::Processing => {}
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if conn.registered {
            let _ = self.poll.registry().deregister(&conn.stream);
        }
        drop(conn);
        self.free.push(idx);
        self.live -= 1;
        self.state.active_conns.fetch_sub(1, Ordering::AcqRel);
    }

    fn close_all(&mut self) {
        for idx in 0..self.conns.len() {
            self.close(idx);
        }
    }
}

/// One scoring executor thread: drains the shared job queue, coalescing
/// compatible `ScorePairs` jobs into full [`SCORE_BATCH`]-row kernel
/// calls, and posts completions back to the owning event loops.
fn executor_run(
    state: &ServerState,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    completion_txs: &[mpsc::Sender<Completion>],
    wakers: &[mio::Waker],
) {
    let mut stash: Option<Job> = None;
    loop {
        let first = match stash.take() {
            Some(job) => job,
            None => match jobs.lock().expect("job queue lock").recv() {
                Ok(job) => job,
                Err(_) => return, // all event loops exited
            },
        };
        match first.kind {
            JobKind::Attack {
                ref entry,
                ref challenge,
                ref truth,
                threshold,
                detail,
                dense,
            } => {
                let response = run_attack(state, entry, challenge, truth, threshold, detail);
                // Mirror the request framing: a JSON-framed Attack gets a
                // JSON-framed reply (pre-dense clients), a dense one the
                // dense AttackResult frame.
                post_framed(state, completion_txs, wakers, &first, response, !dense);
            }
            JobKind::Pairs { .. } => {
                stash = score_coalesced(state, jobs, completion_txs, wakers, first);
            }
        }
    }
}

/// Scores a `Pairs` job, coalescing it with queued jobs that target the
/// same model on the compiled-sequential path. Returns a popped job that
/// did not fit the batch (to be processed next).
fn score_coalesced(
    state: &ServerState,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    completion_txs: &[mpsc::Sender<Completion>],
    wakers: &[mio::Waker],
    first: Job,
) -> Option<Job> {
    let opts = &state.options;
    let (first_entry, first_nrows) = match &first.kind {
        JobKind::Pairs { entry, nrows, .. } => (entry.clone(), *nrows),
        JobKind::Attack { .. } => unreachable!("caller matched Pairs"),
    };
    // Coalescing applies only to the hot default path: the compiled
    // kernel with no intra-batch parallelism. Anything else is scored
    // exactly as the blocking server scored it, one request at a time.
    let coalescible = |nrows: usize| {
        matches!(opts.kernel, Kernel::Compiled) && opts.batch.worker_count(nrows.max(1)) <= 1
    };
    if !coalescible(first_nrows) {
        let response = score_single(state, &first);
        post(state, completion_txs, wakers, &first, response);
        return None;
    }

    let mut batch = vec![first];
    let mut total_rows = first_nrows;
    let mut stash = None;
    let linger_us = state.linger_budget_us();
    let linger_until = (linger_us > 0).then(|| Instant::now() + Duration::from_micros(linger_us));
    while total_rows < SCORE_BATCH {
        // `try_lock`, never `lock`: an idle sibling worker parks *inside*
        // `recv()` while holding the queue mutex, so blocking here would
        // deadlock the batch against a worker that is waiting for work.
        // A contended lock just means another worker owns the queue —
        // there is nothing to coalesce that belongs to this batch.
        let Ok(rx) = jobs.try_lock() else { break };
        let next = match rx.try_recv() {
            Ok(job) => Some(job),
            Err(mpsc::TryRecvError::Disconnected) => None,
            Err(mpsc::TryRecvError::Empty) => match linger_until {
                None => None,
                Some(deadline) => {
                    // Bounded linger for stragglers. The queue lock is
                    // held while waiting, which serializes executor
                    // intake for at most `batch_linger_us` — the
                    // documented cost of trading latency for fill.
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        None
                    } else {
                        rx.recv_timeout(left).ok()
                    }
                }
            },
        };
        drop(rx);
        let Some(job) = next else { break };
        let fits = match &job.kind {
            JobKind::Pairs { entry, nrows, .. } => {
                Arc::ptr_eq(entry, &first_entry) && coalescible(*nrows)
            }
            JobKind::Attack { .. } => false,
        };
        if fits {
            total_rows += match &job.kind {
                JobKind::Pairs { nrows, .. } => *nrows,
                JobKind::Attack { .. } => 0,
            };
            batch.push(job);
        } else {
            stash = Some(job);
            break;
        }
    }

    // One kernel call over the concatenated rows; `proba_batch` is
    // row-independent, so each request's slice is bit-identical to a
    // solo call.
    let width = first_entry.model.config().features.len();
    let mut all_rows = Vec::with_capacity(total_rows * width);
    for job in &batch {
        if let JobKind::Pairs { rows, .. } = &job.kind {
            all_rows.extend_from_slice(rows);
        }
    }
    let mut all_probs = vec![0.0; total_rows];
    first_entry
        .compiled
        .proba_batch(&all_rows, width, &mut all_probs);
    state.score_batches.fetch_add(1, Ordering::Relaxed);
    state
        .batched_rows
        .fetch_add(total_rows as u64, Ordering::Relaxed);
    if batch.len() > 1 {
        state
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    state.note_batch_fill(total_rows as u64, batch.len() as u64);

    let mut offset = 0usize;
    for job in batch {
        let JobKind::Pairs {
            ref catalog,
            ref entry,
            ref rows,
            nrows,
        } = job.kind
        else {
            continue;
        };
        let probs = all_probs[offset..offset + nrows].to_vec();
        offset += nrows;
        state
            .pairs_scored
            .fetch_add(nrows as u64, Ordering::Relaxed);
        shadow_compare(state, catalog, entry, rows, width, &probs);
        post(
            state,
            completion_txs,
            wakers,
            &job,
            Response::Scores { probs },
        );
    }
    stash
}

/// Scores one `Pairs` job without coalescing — the reference kernel and
/// intra-batch parallel paths, exactly as the blocking server ran them.
fn score_single(state: &ServerState, job: &Job) -> Response {
    let JobKind::Pairs {
        catalog,
        entry,
        rows,
        nrows,
    } = &job.kind
    else {
        unreachable!("caller matched Pairs");
    };
    let (nrows, width) = (*nrows, entry.model.config().features.len());
    let mut probs = vec![0.0; nrows];
    if state.options.batch.worker_count(nrows) <= 1 {
        match state.options.kernel {
            Kernel::Compiled => entry.compiled.proba_batch(rows, width, &mut probs),
            Kernel::Reference => {
                for (slot, row) in probs.iter_mut().zip(rows.chunks_exact(width.max(1))) {
                    *slot = entry.model.model().proba(row);
                }
            }
        }
    } else {
        let parts = par_chunks(state.options.batch, nrows, |range| {
            let sub = &rows[range.start * width..range.end * width];
            let mut out = vec![0.0; range.len()];
            match state.options.kernel {
                Kernel::Compiled => entry.compiled.proba_batch(sub, width, &mut out),
                Kernel::Reference => {
                    for (slot, row) in out.iter_mut().zip(sub.chunks_exact(width.max(1))) {
                        *slot = entry.model.model().proba(row);
                    }
                }
            }
            out
        });
        probs = parts.into_iter().flatten().collect();
    }
    state
        .pairs_scored
        .fetch_add(probs.len() as u64, Ordering::Relaxed);
    shadow_compare(state, catalog, entry, rows, width, &probs);
    Response::Scores { probs }
}

/// Posts a completion back to the job's event loop and wakes it.
fn post(
    state: &ServerState,
    completion_txs: &[mpsc::Sender<Completion>],
    wakers: &[mio::Waker],
    job: &Job,
    response: Response,
) {
    post_framed(state, completion_txs, wakers, job, response, false);
}

/// [`post`] with the response framing pinned (see [`Completion::prefer_json`]).
fn post_framed(
    state: &ServerState,
    completion_txs: &[mpsc::Sender<Completion>],
    wakers: &[mio::Waker],
    job: &Job,
    response: Response,
    prefer_json: bool,
) {
    let _ = state; // counters already booked by the scoring paths
    let completion = Completion {
        token: job.token,
        conn_seq: job.conn_seq,
        start: job.start,
        response,
        prefer_json,
    };
    if completion_txs[job.loop_id].send(completion).is_ok() {
        let _ = wakers[job.loop_id].wake();
    }
}

/// Flags shutdown and wakes the (possibly blocked) accept loop with a
/// throwaway local connection.
fn initiate_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

/// The `not_found` reply for a `model_id` that is not in the catalog.
fn not_found(e: &RegistryError) -> Response {
    Response::Error {
        code: ErrorCode::NotFound,
        message: e.to_string(),
    }
}

/// Handles `Reload`: rescan the registry directory, and only on a fully
/// successful load swap the catalog `Arc`. Any failure leaves the old
/// catalog serving untouched and reports the typed registry error.
fn reload(state: &ServerState) -> Response {
    let Some(dir) = &state.registry_dir else {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: "server is not registry-backed (started with --model); nothing to reload"
                .into(),
        };
    };
    match Catalog::load(dir, state.default_override.as_deref()) {
        Err(e) => Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("reload failed, previous catalog still serving: {e}"),
        },
        Ok(catalog) => {
            let models = catalog
                .entries()
                .iter()
                .map(|e| e.model_id.clone())
                .collect();
            let default_model = catalog.default_id().to_owned();
            // The swap itself: one pointer store under the lock. Requests
            // that already cloned the old Arc finish on it; the last one
            // out drops the old catalog.
            *state.catalog.lock().expect("catalog lock") = Arc::new(catalog);
            let reloads = state.reloads.fetch_add(1, Ordering::Relaxed) + 1;
            Response::Reloaded {
                default_model,
                models,
                reloads,
            }
        }
    }
}

/// A/B shadow scoring: when configured, re-scores a deterministic
/// fraction of default-routed `ScorePairs` batches against the shadow
/// entry of the *same catalog snapshot* and folds exact divergence
/// totals into the accumulator. Never alters the primary response.
/// `rows` is the flattened row-major feature matrix (`width` columns).
fn shadow_compare(
    state: &ServerState,
    catalog: &Catalog,
    entry: &ModelEntry,
    rows: &[f64],
    width: usize,
    probs: &[f64],
) {
    let Some(cfg) = &state.shadow else { return };
    // Only batches answered by the default model are eligible: the
    // report means "default vs shadow", not a mixture of primaries. A
    // reload may change which id is the default; eligibility tracks it.
    if entry.model_id != catalog.default_id() || entry.model_id == cfg.model_id {
        return;
    }
    let seq = state.shadow_seq.fetch_add(1, Ordering::Relaxed);
    if !shadow_sampled(seq, cfg.fraction) {
        return;
    }
    let shadow_entry = catalog
        .get(&cfg.model_id)
        .filter(|s| s.model.config().features.len() == width);
    let mut accum = state.shadow_accum.lock().expect("shadow lock");
    accum.sampled_requests += 1;
    let Some(shadow_entry) = shadow_entry else {
        // The shadow id vanished (or became feature-incompatible) after
        // a reload; the primary answer is unaffected, just count it.
        accum.shadow_missing += 1;
        return;
    };
    let mut shadow_probs = vec![0.0; probs.len()];
    shadow_entry
        .compiled
        .proba_batch(rows, width, &mut shadow_probs);
    for (&p, &q) in probs.iter().zip(&shadow_probs) {
        let dp = (p - q).abs();
        accum.sum_abs_dp += dp;
        if dp > accum.max_abs_dp {
            accum.max_abs_dp = dp;
        }
        if (p >= cfg.threshold) != (q >= cfg.threshold) {
            accum.disagreements += 1;
        }
    }
    accum.compared_pairs += probs.len() as u64;
}

fn run_attack(
    state: &ServerState,
    entry: &ModelEntry,
    challenge: &str,
    truth: &str,
    threshold: f64,
    detail: bool,
) -> Response {
    let view = match read_challenge(challenge, truth) {
        Ok(v) => v,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("bad challenge: {e}"),
            }
        }
    };
    let scored = entry.model.score(
        &view,
        &ScoreOptions {
            parallelism: state.options.batch,
            kernel: state.options.kernel,
            enumeration: state.options.enumeration,
            ..ScoreOptions::default()
        },
    );
    state
        .pairs_scored
        .fetch_add(scored.pairs_scored, Ordering::Relaxed);
    let summary = AttackSummary {
        design: view.name.clone(),
        num_vpins: view.num_vpins(),
        pairs_scored: scored.pairs_scored,
        threshold,
        accuracy: scored.accuracy_at(threshold),
        mean_loc: scored.mean_loc_at(threshold),
        max_accuracy: scored.max_accuracy(),
    };
    Response::AttackResult {
        summary,
        scored: detail.then_some(scored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::percentile_us;

    #[test]
    fn default_options_pool_with_sequential_batches() {
        let opts = ServeOptions::default();
        assert_eq!(opts.batch, Parallelism::Sequential);
        assert_eq!(opts.kernel, Kernel::Compiled);
        assert_eq!(opts.enumeration, Enumeration::Spatial);
        assert!(opts.workers.worker_count(usize::MAX) >= 1);
        assert!(opts.request_timeout_ms > 0);
        assert!(opts.idle_timeout_ms >= opts.request_timeout_ms);
        assert!(opts.max_request_bytes >= 1 << 20);
        assert_eq!(opts.max_queue, 0, "0 = auto queue depth");
        assert_eq!(opts.event_loops, 0, "0 = auto event loops");
        assert_eq!(
            opts.batch_linger,
            BatchLinger::Fixed(0),
            "no linger: drain-only batching"
        );
    }

    #[test]
    fn batch_linger_parses_auto_and_numbers_and_rejects_garbage() {
        assert_eq!("auto".parse::<BatchLinger>(), Ok(BatchLinger::Auto));
        assert_eq!("AUTO".parse::<BatchLinger>(), Ok(BatchLinger::Auto));
        assert_eq!("0".parse::<BatchLinger>(), Ok(BatchLinger::Fixed(0)));
        assert_eq!("250".parse::<BatchLinger>(), Ok(BatchLinger::Fixed(250)));
        for garbage in ["soonish", "-5", "1.5", "", "100us"] {
            let err = garbage.parse::<BatchLinger>().unwrap_err();
            assert!(err.contains(garbage), "error names the input: {err}");
        }
        assert_eq!(BatchLinger::Auto.to_string(), "auto");
        assert_eq!(BatchLinger::Fixed(42).to_string(), "42");
    }

    #[test]
    fn auto_linger_waits_only_for_underfull_coalescing_traffic() {
        let full = SCORE_BATCH as u64;
        // Cold start: too few batches observed, never linger.
        assert_eq!(auto_linger_us(0, 0, 0), 0);
        assert_eq!(auto_linger_us(AUTO_LINGER_MIN_BATCHES - 1, 8, 32), 0);
        // A lone client: one request per batch, rows far under full —
        // must NOT linger (its latency would buy nothing).
        assert_eq!(auto_linger_us(100, 100 * 8, 100), 0);
        // Under-full batches that are actually coalescing: linger.
        assert_eq!(auto_linger_us(100, 100 * 8, 400), AUTO_LINGER_US);
        // Batches already running full: lingering cannot help.
        assert_eq!(auto_linger_us(100, 100 * full, 400), 0);
    }

    #[test]
    fn ring_quantiles_match_the_full_sort_oracle() {
        let mut ring = LatencyRing::with_capacity(512);
        assert_eq!(ring.quantiles(), [0; 4], "empty ring is all zero");
        // A deterministic scramble with duplicates and a rollover.
        for i in 0u64..700 {
            ring.push((i * 7919) % 257);
        }
        let sorted = ring.sorted();
        let expect = [
            percentile_us(&sorted, 50.0),
            percentile_us(&sorted, 95.0),
            percentile_us(&sorted, 99.0),
            *sorted.last().unwrap(),
        ];
        assert_eq!(ring.quantiles(), expect);
        // The scratch buffer is reused, not re-sorted state: a second
        // probe after more pushes still matches.
        ring.push(u64::MAX);
        let sorted = ring.sorted();
        assert_eq!(ring.quantiles()[3], u64::MAX);
        assert_eq!(ring.quantiles()[0], percentile_us(&sorted, 50.0));
        // Single sample: every quantile is that sample.
        let mut one = LatencyRing::with_capacity(4);
        one.push(17);
        assert_eq!(one.quantiles(), [17, 17, 17, 17]);
    }

    #[test]
    fn auto_pool_never_collapses_to_one_worker() {
        // Regression: on a 1-CPU host, Auto used to resolve to a single
        // worker, so one long-running request starved every other
        // client forever. Explicit `Threads(1)` still means one worker —
        // only the implicit default is guarded.
        assert!(pool_size(Parallelism::Auto) >= 2);
        assert_eq!(pool_size(Parallelism::Threads(1)), 1);
        assert_eq!(pool_size(Parallelism::Threads(3)), 3);
    }

    #[test]
    fn queue_depth_defaults_to_twice_the_pool_and_honors_overrides() {
        let mut opts = ServeOptions {
            workers: Parallelism::Threads(3),
            ..ServeOptions::default()
        };
        assert_eq!(queue_depth(&opts), 6);
        opts.max_queue = 2;
        assert_eq!(queue_depth(&opts), 2);
        opts.workers = Parallelism::Threads(1);
        opts.max_queue = 0;
        assert_eq!(queue_depth(&opts), 2);
    }

    #[test]
    fn event_loop_count_resolves_auto_and_explicit() {
        let mut opts = ServeOptions::default();
        let auto = event_loop_count(&opts);
        assert!((1..=MAX_AUTO_EVENT_LOOPS).contains(&auto), "auto in range");
        opts.event_loops = 7;
        assert_eq!(event_loop_count(&opts), 7, "explicit counts are honored");
    }

    #[test]
    fn snapshot_of_empty_state_is_all_zero() {
        let lat: Vec<u64> = Vec::new();
        assert_eq!(percentile_us(&lat, 50.0), 0);
        assert_eq!(percentile_us(&lat, 99.0), 0);
    }

    #[test]
    fn latency_ring_rolls_over_to_recent_samples() {
        // Regression: recording used to stop dead at the cap, so a
        // long-lived server reported its first hour forever. The ring
        // must retain exactly the newest `cap` samples.
        let mut ring = LatencyRing::with_capacity(4);
        for v in 1..=4 {
            ring.push(v);
        }
        assert_eq!(ring.sorted(), vec![1, 2, 3, 4]);
        ring.push(5);
        ring.push(6);
        assert_eq!(ring.sorted(), vec![3, 4, 5, 6], "oldest evicted first");
        for v in 7..=14 {
            ring.push(v);
        }
        assert_eq!(ring.sorted(), vec![11, 12, 13, 14], "full wrap-around");
    }

    #[test]
    fn accept_backoff_grows_exponentially_to_a_cap() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(5), Duration::from_millis(16));
        assert_eq!(accept_backoff(10), ACCEPT_BACKOFF_MAX);
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_MAX, "no overflow");
    }

    #[test]
    fn shadow_sampling_is_exact_and_evenly_spread() {
        // Among the first n eligible requests, exactly floor(n·f) are
        // sampled — the divergence report's sample counts are exact, not
        // probabilistic.
        for (fraction, n) in [(0.0, 1000u64), (0.1, 1000), (0.5, 1000), (1.0, 1000)] {
            let sampled = (0..n).filter(|&k| shadow_sampled(k, fraction)).count() as u64;
            let expected = (n as f64 * fraction).floor() as u64;
            assert_eq!(sampled, expected, "fraction {fraction}");
        }
        assert!(
            (0..100).all(|k| shadow_sampled(k, 1.0)),
            "f=1 is every request"
        );
        assert!(!(0..100).any(|k| shadow_sampled(k, 0.0)), "f=0 is never");
        // f=0.5 alternates: odd sequence numbers are the sampled ones.
        assert!(!shadow_sampled(0, 0.5));
        assert!(shadow_sampled(1, 0.5));
        assert!(!shadow_sampled(2, 0.5));
        assert!(shadow_sampled(3, 0.5));
        // Out-of-range fractions clamp instead of misbehaving.
        assert!(shadow_sampled(0, 7.0));
        assert!(!shadow_sampled(0, -1.0));
    }

    #[test]
    fn timeout_of_treats_zero_as_disabled() {
        assert_eq!(timeout_of(0), None);
        assert_eq!(timeout_of(250), Some(Duration::from_millis(250)));
    }

    #[test]
    fn line_scanner_matches_bounded_reader_semantics() {
        // Complete line within the cap.
        assert_eq!(scan_line(b"{\"Health\"}\nrest", 64), LineScan::Complete(10));
        // Empty line is complete at 0 (blank keep-alives stay free).
        assert_eq!(scan_line(b"\nx", 64), LineScan::Complete(0));
        // No newline yet, under the cap: keep reading.
        assert_eq!(scan_line(b"partial", 64), LineScan::Incomplete);
        // A line exactly at the cap is fine; one past is rejected, with
        // or without its terminator in the buffer yet.
        let at_cap = vec![b'y'; 64];
        let mut terminated = at_cap.clone();
        terminated.push(b'\n');
        assert_eq!(scan_line(&terminated, 64), LineScan::Complete(64));
        assert_eq!(scan_line(&[b'y'; 65], 64), LineScan::TooLarge);
        let mut over = vec![b'y'; 65];
        over.push(b'\n');
        assert_eq!(scan_line(&over, 64), LineScan::TooLarge);
        // At the cap but unterminated: could still become TooLarge or
        // Complete — must keep reading.
        assert_eq!(scan_line(&at_cap, 64), LineScan::Incomplete);
    }
}
