//! The TCP inference server: a `std::net` accept loop feeding a bounded
//! worker pool.
//!
//! Connections are handed to `workers` threads over a bounded channel
//! (backpressure: the accept loop blocks when every worker is busy and the
//! queue is full). Each worker speaks the newline-delimited JSON protocol
//! of [`crate::protocol`] for the life of its connection. A `Shutdown`
//! request flips a flag and wakes the accept loop; already-queued
//! connections drain before [`serve`] returns the final counter snapshot.
//!
//! Scoring is bit-identical to in-process use: the server calls the same
//! [`TrainedAttack`] entry points, and the JSON transport round-trips
//! `f64` exactly.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use sm_attack::attack::{Kernel, ScoreOptions};
use sm_attack::TrainedAttack;
use sm_layout::io::read_challenge;
use sm_ml::{par_chunks, CompiledEnsemble, Parallelism};

use crate::artifact::ARTIFACT_VERSION;
use crate::client::percentile_us;
use crate::protocol::{AttackSummary, Request, Response, StatsSnapshot};

/// Cap on retained per-request latency samples (oldest kept; recording
/// stops at the cap so a long-lived server's memory stays bounded).
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Size of the connection worker pool (via
    /// [`Parallelism::worker_count`]). `Auto` is guarded to a minimum of
    /// two workers: with a single worker, one held-open idle connection
    /// occupies the whole pool and new connections queue behind it
    /// forever — a real starvation mode on 1-CPU hosts.
    pub workers: Parallelism,
    /// Parallelism applied *within* one `ScorePairs`/`Attack` request
    /// batch. Sequential by default — the pool already provides
    /// cross-request parallelism; results are identical either way.
    pub batch: Parallelism,
    /// Scoring kernel for `ScorePairs` and `Attack` requests. Results are
    /// bit-identical across kernels; `Compiled` is the fast default.
    pub kernel: Kernel,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: Parallelism::Auto,
            batch: Parallelism::Sequential,
            kernel: Kernel::Compiled,
        }
    }
}

/// Resolves the connection pool size, applying the `Auto` >= 2 guard: one
/// long-lived connection must never monopolize the whole pool, so `Auto`
/// keeps at least two workers even on 1-CPU hosts. Explicit worker counts
/// are honored as given.
pub fn pool_size(workers: Parallelism) -> usize {
    let n = workers.worker_count(usize::MAX);
    match workers {
        Parallelism::Auto => n.max(2),
        _ => n,
    }
}

struct ServerState {
    model: TrainedAttack,
    /// The ensemble lowered once at server start; shared read-only by all
    /// connection workers. Artifacts store the trained trees, so the
    /// compilation is a load-time step, not a format change.
    compiled: CompiledEnsemble,
    options: ServeOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    pairs_scored: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl ServerState {
    fn record_latency(&self, us: u64) {
        let mut lat = self.latencies_us.lock().expect("latency lock");
        if lat.len() < MAX_LATENCY_SAMPLES {
            lat.push(us);
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut lat = self.latencies_us.lock().expect("latency lock").clone();
        lat.sort_unstable();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            pairs_scored: self.pairs_scored.load(Ordering::Relaxed),
            p50_us: percentile_us(&lat, 50.0),
            p95_us: percentile_us(&lat, 95.0),
            p99_us: percentile_us(&lat, 99.0),
            max_us: lat.last().copied().unwrap_or(0),
        }
    }
}

/// Runs the server on `listener` until a `Shutdown` request arrives,
/// then drains queued connections and returns the final counters.
///
/// # Errors
///
/// Returns an [`std::io::Error`] only for listener-level failures;
/// per-connection i/o errors just end that connection.
pub fn serve(
    model: TrainedAttack,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    let addr = listener.local_addr()?;
    let compiled = model.model().compile();
    let state = ServerState {
        model,
        compiled,
        options: *options,
        addr,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        pairs_scored: AtomicU64::new(0),
        latencies_us: Mutex::new(Vec::new()),
    };
    let workers = pool_size(options.workers);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(2 * workers);
    let rx = Mutex::new(rx);
    let state_ref = &state;
    let rx_ref = &rx;
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move |_| loop {
                let next = { rx_ref.lock().expect("connection queue lock").recv() };
                match next {
                    Ok(stream) => handle_connection(stream, state_ref),
                    Err(_) => break,
                }
            });
        }
        for incoming in listener.incoming() {
            if state_ref.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            if tx.send(stream).is_err() {
                break;
            }
        }
        drop(tx);
    })
    .expect("server worker panicked");
    Ok(state.snapshot())
}

/// A server running on a background thread — the test/CLI-friendly way to
/// host a model.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<StatsSnapshot>>,
}

impl ServerHandle {
    /// Binds `addr_spec` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `model` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if the address cannot be bound.
    pub fn bind(
        model: TrainedAttack,
        addr_spec: &str,
        options: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr_spec)?;
        let addr = listener.local_addr()?;
        let thread = std::thread::spawn(move || serve(model, listener, &options));
        Ok(Self { addr, thread })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the server's listener-level [`std::io::Error`], if any.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> std::io::Result<StatsSnapshot> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Per-connection scratch reused across requests so a long-lived
/// connection stops paying an allocation tax on every request (the p99
/// spikes in `BENCH_serve.json` tracked allocator churn, not compute).
#[derive(Default)]
struct ConnScratch {
    /// Serialized response bytes (JSON plus the trailing newline).
    out: String,
    /// Flattened feature rows for the compiled `ScorePairs` path.
    rows: Vec<f64>,
    /// Probability buffer, recycled out of `Response::Scores` after the
    /// response is serialized.
    probs: Vec<f64>,
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut scratch = ConnScratch::default();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let start = Instant::now();
        let (response, is_shutdown) = respond(state, &line, &mut scratch);
        state.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(response, Response::Error { .. }) {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        serde_json::to_string_buf(&response, &mut scratch.out).expect("responses always serialize");
        scratch.out.push('\n');
        if let Response::Scores { probs } = response {
            scratch.probs = probs;
        }
        if writer
            .write_all(scratch.out.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.record_latency(us);
        if is_shutdown {
            initiate_shutdown(state);
            break;
        }
    }
}

/// Flags shutdown and wakes the (possibly blocked) accept loop with a
/// throwaway local connection.
fn initiate_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

fn respond(state: &ServerState, line: &str, scratch: &mut ConnScratch) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::Error {
                    message: format!("bad request: {e}"),
                },
                false,
            )
        }
    };
    match request {
        Request::Health => (
            Response::Health {
                model: state.model.config().name.clone(),
                features: state.model.config().features.len(),
                trees: state.model.model().num_trees(),
                artifact_version: ARTIFACT_VERSION,
            },
            false,
        ),
        Request::Stats => (
            Response::Stats {
                stats: state.snapshot(),
            },
            false,
        ),
        Request::ScorePairs { features } => (score_pairs(state, &features, scratch), false),
        Request::Attack {
            challenge,
            truth,
            threshold,
            detail,
        } => (
            run_attack(state, &challenge, &truth, threshold, detail),
            false,
        ),
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

fn score_pairs(state: &ServerState, features: &[Vec<f64>], scratch: &mut ConnScratch) -> Response {
    let expected = state.model.config().features.len();
    if let Some(bad) = features.iter().position(|row| row.len() != expected) {
        return Response::Error {
            message: format!(
                "feature row {bad} has {} values, model expects {expected}",
                features[bad].len()
            ),
        };
    }
    let mut probs = std::mem::take(&mut scratch.probs);
    probs.clear();
    if state.options.batch.worker_count(features.len()) <= 1 {
        // Hot path: one worker, reuse the connection-scoped buffers.
        probs.resize(features.len(), 0.0);
        match state.options.kernel {
            Kernel::Compiled => {
                scratch.rows.clear();
                for row in features {
                    scratch.rows.extend_from_slice(row);
                }
                state
                    .compiled
                    .proba_batch(&scratch.rows, expected, &mut probs);
            }
            Kernel::Reference => {
                for (slot, row) in probs.iter_mut().zip(features) {
                    *slot = state.model.model().proba(row);
                }
            }
        }
    } else {
        let parts = par_chunks(state.options.batch, features.len(), |range| {
            let mut out = vec![0.0; range.len()];
            match state.options.kernel {
                Kernel::Compiled => {
                    let mut rows = Vec::with_capacity(range.len() * expected);
                    for k in range.clone() {
                        rows.extend_from_slice(&features[k]);
                    }
                    state.compiled.proba_batch(&rows, expected, &mut out);
                }
                Kernel::Reference => {
                    for (slot, k) in out.iter_mut().zip(range) {
                        *slot = state.model.model().proba(&features[k]);
                    }
                }
            }
            out
        });
        probs.extend(parts.into_iter().flatten());
    }
    state
        .pairs_scored
        .fetch_add(probs.len() as u64, Ordering::Relaxed);
    Response::Scores { probs }
}

fn run_attack(
    state: &ServerState,
    challenge: &str,
    truth: &str,
    threshold: f64,
    detail: bool,
) -> Response {
    let view = match read_challenge(challenge, truth) {
        Ok(v) => v,
        Err(e) => {
            return Response::Error {
                message: format!("bad challenge: {e}"),
            }
        }
    };
    let scored = state.model.score(
        &view,
        &ScoreOptions {
            parallelism: state.options.batch,
            kernel: state.options.kernel,
            ..ScoreOptions::default()
        },
    );
    state
        .pairs_scored
        .fetch_add(scored.pairs_scored, Ordering::Relaxed);
    let summary = AttackSummary {
        design: view.name.clone(),
        num_vpins: view.num_vpins(),
        pairs_scored: scored.pairs_scored,
        threshold,
        accuracy: scored.accuracy_at(threshold),
        mean_loc: scored.mean_loc_at(threshold),
        max_accuracy: scored.max_accuracy(),
    };
    Response::AttackResult {
        summary,
        scored: detail.then_some(scored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_pool_with_sequential_batches() {
        let opts = ServeOptions::default();
        assert_eq!(opts.batch, Parallelism::Sequential);
        assert_eq!(opts.kernel, Kernel::Compiled);
        assert!(opts.workers.worker_count(usize::MAX) >= 1);
    }

    #[test]
    fn auto_pool_never_collapses_to_one_worker() {
        // Regression: on a 1-CPU host, Auto used to resolve to a single
        // worker, so one held-open idle connection starved every other
        // client forever. Explicit `Threads(1)` still means one worker —
        // only the implicit default is guarded.
        assert!(pool_size(Parallelism::Auto) >= 2);
        assert_eq!(pool_size(Parallelism::Threads(1)), 1);
        assert_eq!(pool_size(Parallelism::Threads(3)), 3);
    }

    #[test]
    fn snapshot_of_empty_state_is_all_zero() {
        let lat: Vec<u64> = Vec::new();
        assert_eq!(percentile_us(&lat, 50.0), 0);
        assert_eq!(percentile_us(&lat, 99.0), 0);
    }
}
