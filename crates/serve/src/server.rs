//! The TCP inference server: a `std::net` accept loop feeding a bounded
//! worker pool.
//!
//! Connections are handed to `workers` threads over a bounded channel.
//! When the pool and its queue are both full the accept loop does **not**
//! block: the connection is shed with a [`Response::Busy`] reply carrying
//! a retry hint, so a flood degrades into fast, explicit rejections
//! instead of unbounded queueing. Each worker speaks the
//! newline-delimited JSON protocol of [`crate::protocol`] for the life of
//! its connection, under per-connection deadlines: an *idle* deadline
//! while waiting for the first byte of a request and a stricter
//! *mid-request* deadline once one has started (slow-loris defence), with
//! request lines capped at `max_request_bytes` (a bounded reader rejects
//! oversized lines with a typed error instead of buffering them). A
//! `Shutdown` request flips a flag and wakes the accept loop;
//! already-queued connections drain before [`serve`] returns the final
//! counter snapshot.
//!
//! Scoring is bit-identical to in-process use: the server calls the same
//! [`TrainedAttack`] entry points, and the JSON transport round-trips
//! `f64` exactly.
//!
//! The server serves a whole [`Catalog`] of models, not one: requests
//! route by an optional `model_id` (absent means the default), and a
//! registry-backed server ([`ModelSource::Registry`]) answers `Reload`
//! by rescanning the directory and atomically swapping the catalog
//! `Arc` — in-flight requests keep the catalog they resolved against, so
//! a reload never changes a response mid-request and never drops a
//! connection. An optional [`ShadowConfig`] re-scores a deterministic
//! fraction of default-routed `ScorePairs` batches against a second
//! catalog entry and folds an exact divergence report into `Stats`.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sm_attack::attack::{Enumeration, Kernel, ScoreOptions};
use sm_attack::TrainedAttack;
use sm_layout::io::read_challenge;
use sm_ml::{par_chunks, Parallelism};

use crate::artifact::ARTIFACT_VERSION;
use crate::client::percentile_us;
use crate::protocol::{
    AttackSummary, ErrorCode, ModelInfo, Request, Response, ShadowReport, StatsSnapshot,
};
use crate::registry::{Catalog, ModelEntry, RegistryError};

/// Cap on retained per-request latency samples. The store is a ring:
/// once full, new samples overwrite the oldest, so a long-lived server
/// reports *current* percentiles from bounded memory instead of freezing
/// on its first hour of traffic.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// Backoff hint carried by [`Response::Busy`] when a connection is shed.
pub const BUSY_RETRY_AFTER_MS: u64 = 50;

/// First sleep after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`] so a persistent listener-level
/// error (EMFILE, ENOBUFS, ...) cannot hot-spin the accept loop.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Size of the connection worker pool (via
    /// [`Parallelism::worker_count`]). `Auto` is guarded to a minimum of
    /// two workers: with a single worker, one held-open idle connection
    /// occupies the whole pool and new connections queue behind it
    /// forever — a real starvation mode on 1-CPU hosts.
    pub workers: Parallelism,
    /// Parallelism applied *within* one `ScorePairs`/`Attack` request
    /// batch. Sequential by default — the pool already provides
    /// cross-request parallelism; results are identical either way.
    pub batch: Parallelism,
    /// Scoring kernel for `ScorePairs` and `Attack` requests. Results are
    /// bit-identical across kernels; `Compiled` is the fast default.
    pub kernel: Kernel,
    /// Candidate enumeration for `Attack` requests. Results are
    /// bit-identical across enumerations; `Spatial` (grid radius queries)
    /// is the memory-bounded default, `AllPairs` the quadratic oracle.
    pub enumeration: Enumeration,
    /// Mid-request deadline in milliseconds: once the first byte of a
    /// request line has arrived, the full line must arrive (and the
    /// response must write) within this budget, or the connection is
    /// closed with an [`ErrorCode::Timeout`] reply. `0` disables the
    /// deadline.
    pub request_timeout_ms: u64,
    /// Idle deadline in milliseconds: how long a connection may sit
    /// between requests before the server quietly closes it, freeing
    /// the worker. `0` disables the deadline.
    pub idle_timeout_ms: u64,
    /// Hard cap on one request line's bytes. A longer line is answered
    /// with an [`ErrorCode::TooLarge`] error and the connection is
    /// closed — the server never buffers more than this per connection.
    pub max_request_bytes: usize,
    /// Depth of the pending-connection queue between the accept loop
    /// and the worker pool. `0` means automatic (twice the pool size).
    /// When the queue is full, new connections are shed with
    /// [`Response::Busy`] instead of blocking the accept loop.
    pub max_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: Parallelism::Auto,
            batch: Parallelism::Sequential,
            kernel: Kernel::Compiled,
            enumeration: Enumeration::Spatial,
            request_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
            max_request_bytes: 64 * 1024 * 1024,
            max_queue: 0,
        }
    }
}

/// Where the server's models come from.
#[derive(Debug, Clone)]
pub enum ModelSource {
    /// One already-loaded model, served as the catalog's only entry under
    /// [`crate::registry::SINGLE_MODEL_ID`]. `Reload` answers
    /// `bad_request` — there is no directory to rescan.
    Single(TrainedAttack),
    /// A registry directory ([`crate::registry`]); `Reload` rescans it
    /// and atomically swaps the catalog.
    Registry {
        /// The registry directory (contains the `index` file).
        dir: PathBuf,
        /// Overrides the index's default model id for this server (and
        /// for every subsequent reload). Must name a published model.
        default_model: Option<String>,
    },
}

/// A/B shadow scoring: re-score a sampled fraction of default-routed
/// `ScorePairs` requests against a second catalog entry and accumulate
/// an exact divergence report into `Stats`. The shadow never affects the
/// answer the client sees.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowConfig {
    /// Catalog id of the shadow model. Must resolve at startup; if a
    /// later reload removes it, sampled requests are counted as
    /// `shadow_missing` instead of failing.
    pub model_id: String,
    /// Fraction of eligible requests to shadow-score, in `[0, 1]`.
    /// Sampling is deterministic (request `k` is sampled iff
    /// `floor((k+1)·f) > floor(k·f)`), so `1.0` is every request, `0.5`
    /// is exactly every other one.
    pub fraction: f64,
    /// Decision threshold for the disagreement count.
    pub threshold: f64,
}

impl ShadowConfig {
    /// Shadow `model_id` on `fraction` of requests, disagreements
    /// counted at the conventional 0.5 decision threshold.
    #[must_use]
    pub fn new(model_id: &str, fraction: f64) -> Self {
        Self {
            model_id: model_id.to_owned(),
            fraction,
            threshold: 0.5,
        }
    }
}

/// Resolves the connection pool size, applying the `Auto` >= 2 guard: one
/// long-lived connection must never monopolize the whole pool, so `Auto`
/// keeps at least two workers even on 1-CPU hosts. Explicit worker counts
/// are honored as given.
pub fn pool_size(workers: Parallelism) -> usize {
    let n = workers.worker_count(usize::MAX);
    match workers {
        Parallelism::Auto => n.max(2),
        _ => n,
    }
}

/// Resolves the pending-connection queue depth for `options` (`max_queue`
/// of 0 means twice the worker pool, never less than 1).
pub fn queue_depth(options: &ServeOptions) -> usize {
    if options.max_queue == 0 {
        2 * pool_size(options.workers)
    } else {
        options.max_queue
    }
    .max(1)
}

/// `0` milliseconds means "no deadline".
fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Sleep applied after the `n`-th consecutive `accept()` failure
/// (1-based): exponential from [`ACCEPT_BACKOFF_BASE`] capped at
/// [`ACCEPT_BACKOFF_MAX`].
fn accept_backoff(consecutive_failures: u32) -> Duration {
    let exp = consecutive_failures.saturating_sub(1).min(16);
    ACCEPT_BACKOFF_MAX.min(ACCEPT_BACKOFF_BASE.saturating_mul(1 << exp))
}

/// Fixed-capacity ring of latency samples: pushes past the capacity
/// overwrite the oldest sample, so percentiles always describe recent
/// traffic from bounded memory.
struct LatencyRing {
    samples: Vec<u64>,
    cap: usize,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

impl LatencyRing {
    fn with_capacity(cap: usize) -> Self {
        Self {
            samples: Vec::new(),
            cap: cap.max(1),
            next: 0,
        }
    }

    fn push(&mut self, sample: u64) {
        if self.samples.len() < self.cap {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// The retained samples, sorted ascending (a copy; the ring order is
    /// an implementation detail).
    fn sorted(&self) -> Vec<u64> {
        let mut out = self.samples.clone();
        out.sort_unstable();
        out
    }
}

/// Exact running totals behind the shadow divergence report.
#[derive(Default)]
struct ShadowAccum {
    sampled_requests: u64,
    compared_pairs: u64,
    sum_abs_dp: f64,
    max_abs_dp: f64,
    disagreements: u64,
    shadow_missing: u64,
}

struct ServerState {
    /// The serving catalog behind one atomically-swapped `Arc`. Every
    /// request clones the `Arc` once and resolves against that snapshot,
    /// so a concurrent `Reload` can never change which model answers a
    /// request that has already started. Each entry carries its ensemble
    /// lowered at load time — compilation is a load-time step, not a
    /// format change.
    catalog: Mutex<Arc<Catalog>>,
    /// `Some` when registry-backed: where `Reload` rescans.
    registry_dir: Option<PathBuf>,
    /// CLI-level default override, re-applied on every reload.
    default_override: Option<String>,
    shadow: Option<ShadowConfig>,
    /// Sequence number of eligible requests, driving deterministic
    /// shadow sampling.
    shadow_seq: AtomicU64,
    shadow_accum: Mutex<ShadowAccum>,
    reloads: AtomicU64,
    options: ServeOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    io_errors: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    pairs_scored: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

impl ServerState {
    fn record_latency(&self, us: u64) {
        self.latencies_us.lock().expect("latency lock").push(us);
    }

    /// The current catalog snapshot. One clone of the `Arc`; holders keep
    /// serving their snapshot across a concurrent swap.
    fn catalog(&self) -> Arc<Catalog> {
        self.catalog.lock().expect("catalog lock").clone()
    }

    fn snapshot(&self) -> StatsSnapshot {
        let lat = self.latencies_us.lock().expect("latency lock").sorted();
        let catalog = self.catalog();
        let entry = catalog.default_entry();
        let shadow = self.shadow.as_ref().map(|cfg| {
            let a = self.shadow_accum.lock().expect("shadow lock");
            ShadowReport {
                shadow_model: cfg.model_id.clone(),
                threshold: cfg.threshold,
                sampled_requests: a.sampled_requests,
                compared_pairs: a.compared_pairs,
                max_abs_dp: a.max_abs_dp,
                mean_abs_dp: if a.compared_pairs == 0 {
                    0.0
                } else {
                    a.sum_abs_dp / a.compared_pairs as f64
                },
                disagreements: a.disagreements,
                shadow_missing: a.shadow_missing,
            }
        });
        StatsSnapshot {
            model_id: entry.model_id.clone(),
            model_checksum: entry.checksum.clone(),
            schema_version: entry.schema_version,
            reloads: self.reloads.load(Ordering::Relaxed),
            shadow,
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            pairs_scored: self.pairs_scored.load(Ordering::Relaxed),
            p50_us: percentile_us(&lat, 50.0),
            p95_us: percentile_us(&lat, 95.0),
            p99_us: percentile_us(&lat, 99.0),
            max_us: lat.last().copied().unwrap_or(0),
        }
    }
}

/// Whether eligible request `seq` (0-based) falls in the sampled
/// fraction: sampled iff `floor((seq+1)·f)` exceeds `floor(seq·f)`. The
/// count of sampled requests among the first `n` is exactly
/// `floor(n·f)` — deterministic, evenly spread, no RNG state.
fn shadow_sampled(seq: u64, fraction: f64) -> bool {
    let f = fraction.clamp(0.0, 1.0);
    ((seq + 1) as f64 * f).floor() > (seq as f64 * f).floor()
}

/// Maps a registry failure at startup onto the `io::Error` contract of
/// [`serve`] (a corrupt registry is `InvalidData`, not a panic).
fn registry_io_error(e: RegistryError) -> std::io::Error {
    match e {
        RegistryError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Runs a single-model server on `listener` until a `Shutdown` request
/// arrives — [`serve_source`] with [`ModelSource::Single`] and no shadow.
///
/// # Errors
///
/// Returns an [`std::io::Error`] only for listener-level failures that
/// occur before serving starts; transient `accept()` errors are retried
/// with exponential backoff and per-connection i/o errors just end that
/// connection.
pub fn serve(
    model: TrainedAttack,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    serve_source(ModelSource::Single(model), None, listener, options)
}

/// Runs the server on `listener` until a `Shutdown` request arrives,
/// then drains queued connections and returns the final counters.
///
/// # Errors
///
/// Returns an [`std::io::Error`] for listener-level failures, for a
/// registry that fails to load (`InvalidData` carrying the typed
/// [`RegistryError`] message), or for a [`ShadowConfig`] whose fraction
/// is outside `[0, 1]` or whose model id is not in the starting catalog
/// (`InvalidInput` — a misconfigured shadow fails fast at startup, it
/// does not silently measure nothing).
pub fn serve_source(
    source: ModelSource,
    shadow: Option<ShadowConfig>,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    serve_prepared(Prepared::new(source, shadow)?, listener, options)
}

/// A validated catalog + shadow config, ready to serve. Split out of
/// [`serve_source`] so [`ServerHandle::bind_source`] can do the (possibly
/// failing) registry load on the caller's thread — configuration errors
/// surface at bind time — while the accept loop runs on the background
/// thread.
struct Prepared {
    catalog: Catalog,
    registry_dir: Option<PathBuf>,
    default_override: Option<String>,
    shadow: Option<ShadowConfig>,
}

impl Prepared {
    fn new(source: ModelSource, shadow: Option<ShadowConfig>) -> std::io::Result<Self> {
        let (catalog, registry_dir, default_override) = match source {
            ModelSource::Single(model) => (Catalog::single(model), None, None),
            ModelSource::Registry { dir, default_model } => {
                let catalog =
                    Catalog::load(&dir, default_model.as_deref()).map_err(registry_io_error)?;
                (catalog, Some(dir), default_model)
            }
        };
        if let Some(cfg) = &shadow {
            let invalid =
                |message: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, message);
            if !cfg.fraction.is_finite() || !(0.0..=1.0).contains(&cfg.fraction) {
                return Err(invalid(format!(
                    "shadow fraction {} is not in [0, 1]",
                    cfg.fraction
                )));
            }
            if catalog.get(&cfg.model_id).is_none() {
                return Err(invalid(format!(
                    "shadow model '{}' is not in the catalog",
                    cfg.model_id
                )));
            }
        }
        Ok(Self {
            catalog,
            registry_dir,
            default_override,
            shadow,
        })
    }
}

fn serve_prepared(
    prepared: Prepared,
    listener: TcpListener,
    options: &ServeOptions,
) -> std::io::Result<StatsSnapshot> {
    let addr = listener.local_addr()?;
    let state = ServerState {
        catalog: Mutex::new(Arc::new(prepared.catalog)),
        registry_dir: prepared.registry_dir,
        default_override: prepared.default_override,
        shadow: prepared.shadow,
        shadow_seq: AtomicU64::new(0),
        shadow_accum: Mutex::new(ShadowAccum::default()),
        reloads: AtomicU64::new(0),
        options: *options,
        addr,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        io_errors: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        pairs_scored: AtomicU64::new(0),
        latencies_us: Mutex::new(LatencyRing::with_capacity(MAX_LATENCY_SAMPLES)),
    };
    let workers = pool_size(options.workers);
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth(options));
    let rx = Mutex::new(rx);
    let state_ref = &state;
    let rx_ref = &rx;
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move |_| loop {
                let next = { rx_ref.lock().expect("connection queue lock").recv() };
                match next {
                    Ok(stream) => handle_connection(stream, state_ref),
                    Err(_) => break,
                }
            });
        }
        let mut accept_failures = 0u32;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    accept_failures = 0;
                    if state_ref.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => shed_connection(stream, state_ref),
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(_) => {
                    if state_ref.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    accept_failures = accept_failures.saturating_add(1);
                    std::thread::sleep(accept_backoff(accept_failures));
                }
            }
        }
        drop(tx);
    })
    .expect("server worker panicked");
    Ok(state.snapshot())
}

/// Load shedding: the pool and queue are full, so answer `stream` with a
/// `Busy` hint (best-effort, under a short write deadline so a
/// non-reading client cannot stall the accept loop) and drop it.
fn shed_connection(stream: TcpStream, state: &ServerState) {
    state.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(BUSY_RETRY_AFTER_MS)));
    let mut line = serde_json::to_string(&Response::Busy {
        retry_after_ms: BUSY_RETRY_AFTER_MS,
    })
    .expect("responses always serialize");
    line.push('\n');
    let _ = (&stream).write_all(line.as_bytes());
}

/// A server running on a background thread — the test/CLI-friendly way to
/// host a model.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<StatsSnapshot>>,
}

impl ServerHandle {
    /// Binds `addr_spec` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `model` on a background thread.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] if the address cannot be bound.
    pub fn bind(
        model: TrainedAttack,
        addr_spec: &str,
        options: ServeOptions,
    ) -> std::io::Result<Self> {
        Self::bind_source(ModelSource::Single(model), None, addr_spec, options)
    }

    /// Binds `addr_spec` and serves `source` (with optional shadow
    /// scoring) on a background thread. Registry and shadow validation
    /// happens here, before the thread spawns, so a misconfigured server
    /// fails at bind time.
    ///
    /// # Errors
    ///
    /// Returns the [`std::io::Error`]s of [`serve_source`]: bind
    /// failures, an unloadable registry, or an invalid shadow config.
    pub fn bind_source(
        source: ModelSource,
        shadow: Option<ShadowConfig>,
        addr_spec: &str,
        options: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr_spec)?;
        let addr = listener.local_addr()?;
        let prepared = Prepared::new(source, shadow)?;
        let thread = std::thread::spawn(move || serve_prepared(prepared, listener, &options));
        Ok(Self { addr, thread })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down and returns its final counters.
    ///
    /// # Errors
    ///
    /// Propagates the server's listener-level [`std::io::Error`], if any.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked.
    pub fn join(self) -> std::io::Result<StatsSnapshot> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Why [`BoundedLineReader::read_line`] stopped.
enum LineOutcome {
    /// A complete line (newline stripped) within the byte cap.
    Line,
    /// The line exceeded `max_request_bytes`; its tail is unread.
    TooLarge,
    /// No request started within the idle deadline.
    IdleTimeout,
    /// A request started but stalled past the mid-request deadline.
    RequestTimeout,
    /// Peer closed the connection; `mid_line` means it died inside a
    /// request line (a torn frame, counted as an i/o error).
    Closed {
        /// Whether unterminated request bytes had already arrived.
        mid_line: bool,
    },
    /// Socket-level read failure.
    Err,
}

/// A line reader with a hard byte cap and idle/mid-request deadlines,
/// reading directly from the socket so the server never buffers more
/// than `max_bytes + 4096` per connection — `read_line` into an
/// unbounded `String` was an OOM lever for hostile clients.
struct BoundedLineReader<'a> {
    stream: &'a TcpStream,
    /// Bytes received but not yet consumed into a line (pipelining).
    carry: Vec<u8>,
    max_bytes: usize,
    idle_timeout: Option<Duration>,
    request_timeout: Option<Duration>,
}

impl<'a> BoundedLineReader<'a> {
    fn new(
        stream: &'a TcpStream,
        max_bytes: usize,
        idle_timeout: Option<Duration>,
        request_timeout: Option<Duration>,
    ) -> Self {
        Self {
            stream,
            carry: Vec::new(),
            max_bytes,
            idle_timeout,
            request_timeout,
        }
    }

    /// Reads one `\n`-terminated line into `line` (cleared first,
    /// newline stripped). The idle deadline applies until the first byte
    /// of the line arrives; from then on the whole line must complete
    /// within the mid-request deadline.
    fn read_line(&mut self, line: &mut Vec<u8>) -> LineOutcome {
        line.clear();
        let mut started_at: Option<Instant> = None;
        loop {
            if let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
                if line.len() + pos > self.max_bytes {
                    return LineOutcome::TooLarge;
                }
                line.extend_from_slice(&self.carry[..pos]);
                self.carry.drain(..=pos);
                return LineOutcome::Line;
            }
            line.append(&mut self.carry);
            if line.len() > self.max_bytes {
                return LineOutcome::TooLarge;
            }
            if !line.is_empty() && started_at.is_none() {
                started_at = Some(Instant::now());
            }
            let timeout = match started_at {
                None => self.idle_timeout,
                Some(t0) => match self.request_timeout {
                    None => None,
                    Some(budget) => match budget.checked_sub(t0.elapsed()) {
                        Some(left) if !left.is_zero() => Some(left),
                        _ => return LineOutcome::RequestTimeout,
                    },
                },
            };
            let _ = self.stream.set_read_timeout(timeout);
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return LineOutcome::Closed {
                        mid_line: !line.is_empty(),
                    }
                }
                Ok(n) => self.carry.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return if started_at.is_some() {
                        LineOutcome::RequestTimeout
                    } else {
                        LineOutcome::IdleTimeout
                    };
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return LineOutcome::Err,
            }
        }
    }
}

/// Per-connection scratch reused across requests so a long-lived
/// connection stops paying an allocation tax on every request (the p99
/// spikes in `BENCH_serve.json` tracked allocator churn, not compute).
#[derive(Default)]
struct ConnScratch {
    /// Serialized response bytes (JSON plus the trailing newline).
    out: String,
    /// Flattened feature rows for the compiled `ScorePairs` path.
    rows: Vec<f64>,
    /// Probability buffer, recycled out of `Response::Scores` after the
    /// response is serialized.
    probs: Vec<f64>,
}

/// Serializes `response` into the scratch buffer and writes it; `false`
/// means the peer is unwritable (counted by the caller).
fn write_response(
    writer: &mut BufWriter<TcpStream>,
    scratch: &mut ConnScratch,
    response: &Response,
) -> bool {
    serde_json::to_string_buf(response, &mut scratch.out).expect("responses always serialize");
    scratch.out.push('\n');
    writer
        .write_all(scratch.out.as_bytes())
        .and_then(|()| writer.flush())
        .is_ok()
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_nodelay(true);
    let opts = &state.options;
    // A response write shares the mid-request budget: a peer that stops
    // reading is indistinguishable from one that stops writing.
    let _ = stream.set_write_timeout(timeout_of(opts.request_timeout_ms));
    let Ok(write_half) = stream.try_clone() else {
        state.io_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BoundedLineReader::new(
        &stream,
        opts.max_request_bytes,
        timeout_of(opts.idle_timeout_ms),
        timeout_of(opts.request_timeout_ms),
    );
    let mut line = Vec::new();
    let mut scratch = ConnScratch::default();
    loop {
        match reader.read_line(&mut line) {
            LineOutcome::Line => {}
            LineOutcome::TooLarge => {
                // Typed rejection, then close: the rest of the oversized
                // line is unread, so the stream cannot be resynchronized.
                state.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &mut scratch,
                    &Response::Error {
                        code: ErrorCode::TooLarge,
                        message: format!(
                            "request line exceeds the {} byte cap",
                            state.options.max_request_bytes
                        ),
                    },
                );
                break;
            }
            LineOutcome::IdleTimeout => break,
            LineOutcome::RequestTimeout => {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                state.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut writer,
                    &mut scratch,
                    &Response::Error {
                        code: ErrorCode::Timeout,
                        message: format!(
                            "request stalled past the {} ms mid-request deadline",
                            state.options.request_timeout_ms
                        ),
                    },
                );
                break;
            }
            LineOutcome::Closed { mid_line } => {
                if mid_line {
                    state.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            LineOutcome::Err => {
                state.io_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        let Ok(text) = std::str::from_utf8(&line) else {
            state.requests.fetch_add(1, Ordering::Relaxed);
            state.errors.fetch_add(1, Ordering::Relaxed);
            let ok = write_response(
                &mut writer,
                &mut scratch,
                &Response::Error {
                    code: ErrorCode::BadRequest,
                    message: "request line is not valid UTF-8".into(),
                },
            );
            if ok {
                continue;
            }
            state.io_errors.fetch_add(1, Ordering::Relaxed);
            break;
        };
        if text.trim().is_empty() {
            continue;
        }
        let start = Instant::now();
        let (response, is_shutdown) = respond(state, text, &mut scratch);
        state.requests.fetch_add(1, Ordering::Relaxed);
        if matches!(response, Response::Error { .. }) {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
        let ok = write_response(&mut writer, &mut scratch, &response);
        if let Response::Scores { probs } = response {
            scratch.probs = probs;
        }
        if !ok {
            state.io_errors.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.record_latency(us);
        if is_shutdown {
            initiate_shutdown(state);
            break;
        }
    }
}

/// Flags shutdown and wakes the (possibly blocked) accept loop with a
/// throwaway local connection.
fn initiate_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(state.addr);
}

fn respond(state: &ServerState, line: &str, scratch: &mut ConnScratch) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("bad request: {e}"),
                },
                false,
            )
        }
    };
    match request {
        Request::Health => {
            let catalog = state.catalog();
            let entry = catalog.default_entry();
            (
                Response::Health {
                    model: entry.model.config().name.clone(),
                    features: entry.model.config().features.len(),
                    trees: entry.model.model().num_trees(),
                    artifact_version: ARTIFACT_VERSION,
                    model_id: entry.model_id.clone(),
                    checksum: entry.checksum.clone(),
                    schema_version: entry.schema_version,
                },
                false,
            )
        }
        Request::Stats => (
            Response::Stats {
                stats: state.snapshot(),
            },
            false,
        ),
        Request::ListModels => {
            let catalog = state.catalog();
            (
                Response::Models {
                    default_model: catalog.default_id().to_owned(),
                    models: catalog
                        .entries()
                        .iter()
                        .map(|e| ModelInfo {
                            model_id: e.model_id.clone(),
                            config: e.model.config().name.clone(),
                            features: e.model.config().features.len(),
                            trees: e.model.model().num_trees(),
                            checksum: e.checksum.clone(),
                            schema_version: e.schema_version,
                            split_layer: e.meta.split_layer.clone(),
                        })
                        .collect(),
                },
                false,
            )
        }
        Request::Reload => (reload(state), false),
        Request::ScorePairs { features, model_id } => {
            let catalog = state.catalog();
            match catalog.resolve(model_id.as_deref()) {
                Err(e) => (not_found(&e), false),
                Ok(entry) => {
                    let response = score_pairs(state, entry, &features, scratch);
                    if let Response::Scores { probs } = &response {
                        shadow_compare(state, &catalog, entry, &features, probs);
                    }
                    (response, false)
                }
            }
        }
        Request::Attack {
            challenge,
            truth,
            threshold,
            detail,
            model_id,
        } => {
            let catalog = state.catalog();
            match catalog.resolve(model_id.as_deref()) {
                Err(e) => (not_found(&e), false),
                Ok(entry) => (
                    run_attack(state, entry, &challenge, &truth, threshold, detail),
                    false,
                ),
            }
        }
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// The `not_found` reply for a `model_id` that is not in the catalog.
fn not_found(e: &RegistryError) -> Response {
    Response::Error {
        code: ErrorCode::NotFound,
        message: e.to_string(),
    }
}

/// Handles `Reload`: rescan the registry directory, and only on a fully
/// successful load swap the catalog `Arc`. Any failure leaves the old
/// catalog serving untouched and reports the typed registry error.
fn reload(state: &ServerState) -> Response {
    let Some(dir) = &state.registry_dir else {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: "server is not registry-backed (started with --model); nothing to reload"
                .into(),
        };
    };
    match Catalog::load(dir, state.default_override.as_deref()) {
        Err(e) => Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("reload failed, previous catalog still serving: {e}"),
        },
        Ok(catalog) => {
            let models = catalog
                .entries()
                .iter()
                .map(|e| e.model_id.clone())
                .collect();
            let default_model = catalog.default_id().to_owned();
            // The swap itself: one pointer store under the lock. Requests
            // that already cloned the old Arc finish on it; the last one
            // out drops the old catalog.
            *state.catalog.lock().expect("catalog lock") = Arc::new(catalog);
            let reloads = state.reloads.fetch_add(1, Ordering::Relaxed) + 1;
            Response::Reloaded {
                default_model,
                models,
                reloads,
            }
        }
    }
}

/// A/B shadow scoring: when configured, re-scores a deterministic
/// fraction of default-routed `ScorePairs` batches against the shadow
/// entry of the *same catalog snapshot* and folds exact divergence
/// totals into the accumulator. Never alters the primary response.
fn shadow_compare(
    state: &ServerState,
    catalog: &Catalog,
    entry: &ModelEntry,
    features: &[Vec<f64>],
    probs: &[f64],
) {
    let Some(cfg) = &state.shadow else { return };
    // Only batches answered by the default model are eligible: the
    // report means "default vs shadow", not a mixture of primaries. A
    // reload may change which id is the default; eligibility tracks it.
    if entry.model_id != catalog.default_id() || entry.model_id == cfg.model_id {
        return;
    }
    let seq = state.shadow_seq.fetch_add(1, Ordering::Relaxed);
    if !shadow_sampled(seq, cfg.fraction) {
        return;
    }
    let shadow_entry = catalog
        .get(&cfg.model_id)
        .filter(|s| s.model.config().features.len() == entry.model.config().features.len());
    let mut accum = state.shadow_accum.lock().expect("shadow lock");
    accum.sampled_requests += 1;
    let Some(shadow_entry) = shadow_entry else {
        // The shadow id vanished (or became feature-incompatible) after
        // a reload; the primary answer is unaffected, just count it.
        accum.shadow_missing += 1;
        return;
    };
    let width = entry.model.config().features.len();
    let mut rows = Vec::with_capacity(features.len() * width);
    for row in features {
        rows.extend_from_slice(row);
    }
    let mut shadow_probs = vec![0.0; features.len()];
    shadow_entry
        .compiled
        .proba_batch(&rows, width, &mut shadow_probs);
    for (&p, &q) in probs.iter().zip(&shadow_probs) {
        let dp = (p - q).abs();
        accum.sum_abs_dp += dp;
        if dp > accum.max_abs_dp {
            accum.max_abs_dp = dp;
        }
        if (p >= cfg.threshold) != (q >= cfg.threshold) {
            accum.disagreements += 1;
        }
    }
    accum.compared_pairs += features.len() as u64;
}

fn score_pairs(
    state: &ServerState,
    entry: &ModelEntry,
    features: &[Vec<f64>],
    scratch: &mut ConnScratch,
) -> Response {
    let expected = entry.model.config().features.len();
    if let Some(bad) = features.iter().position(|row| row.len() != expected) {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "feature row {bad} has {} values, model expects {expected}",
                features[bad].len()
            ),
        };
    }
    let mut probs = std::mem::take(&mut scratch.probs);
    probs.clear();
    if state.options.batch.worker_count(features.len()) <= 1 {
        // Hot path: one worker, reuse the connection-scoped buffers.
        probs.resize(features.len(), 0.0);
        match state.options.kernel {
            Kernel::Compiled => {
                scratch.rows.clear();
                for row in features {
                    scratch.rows.extend_from_slice(row);
                }
                entry
                    .compiled
                    .proba_batch(&scratch.rows, expected, &mut probs);
            }
            Kernel::Reference => {
                for (slot, row) in probs.iter_mut().zip(features) {
                    *slot = entry.model.model().proba(row);
                }
            }
        }
    } else {
        let parts = par_chunks(state.options.batch, features.len(), |range| {
            let mut out = vec![0.0; range.len()];
            match state.options.kernel {
                Kernel::Compiled => {
                    let mut rows = Vec::with_capacity(range.len() * expected);
                    for k in range.clone() {
                        rows.extend_from_slice(&features[k]);
                    }
                    entry.compiled.proba_batch(&rows, expected, &mut out);
                }
                Kernel::Reference => {
                    for (slot, k) in out.iter_mut().zip(range) {
                        *slot = entry.model.model().proba(&features[k]);
                    }
                }
            }
            out
        });
        probs.extend(parts.into_iter().flatten());
    }
    state
        .pairs_scored
        .fetch_add(probs.len() as u64, Ordering::Relaxed);
    Response::Scores { probs }
}

fn run_attack(
    state: &ServerState,
    entry: &ModelEntry,
    challenge: &str,
    truth: &str,
    threshold: f64,
    detail: bool,
) -> Response {
    let view = match read_challenge(challenge, truth) {
        Ok(v) => v,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("bad challenge: {e}"),
            }
        }
    };
    let scored = entry.model.score(
        &view,
        &ScoreOptions {
            parallelism: state.options.batch,
            kernel: state.options.kernel,
            enumeration: state.options.enumeration,
            ..ScoreOptions::default()
        },
    );
    state
        .pairs_scored
        .fetch_add(scored.pairs_scored, Ordering::Relaxed);
    let summary = AttackSummary {
        design: view.name.clone(),
        num_vpins: view.num_vpins(),
        pairs_scored: scored.pairs_scored,
        threshold,
        accuracy: scored.accuracy_at(threshold),
        mean_loc: scored.mean_loc_at(threshold),
        max_accuracy: scored.max_accuracy(),
    };
    Response::AttackResult {
        summary,
        scored: detail.then_some(scored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_pool_with_sequential_batches() {
        let opts = ServeOptions::default();
        assert_eq!(opts.batch, Parallelism::Sequential);
        assert_eq!(opts.kernel, Kernel::Compiled);
        assert_eq!(opts.enumeration, Enumeration::Spatial);
        assert!(opts.workers.worker_count(usize::MAX) >= 1);
        assert!(opts.request_timeout_ms > 0);
        assert!(opts.idle_timeout_ms >= opts.request_timeout_ms);
        assert!(opts.max_request_bytes >= 1 << 20);
        assert_eq!(opts.max_queue, 0, "0 = auto queue depth");
    }

    #[test]
    fn auto_pool_never_collapses_to_one_worker() {
        // Regression: on a 1-CPU host, Auto used to resolve to a single
        // worker, so one held-open idle connection starved every other
        // client forever. Explicit `Threads(1)` still means one worker —
        // only the implicit default is guarded.
        assert!(pool_size(Parallelism::Auto) >= 2);
        assert_eq!(pool_size(Parallelism::Threads(1)), 1);
        assert_eq!(pool_size(Parallelism::Threads(3)), 3);
    }

    #[test]
    fn queue_depth_defaults_to_twice_the_pool_and_honors_overrides() {
        let mut opts = ServeOptions {
            workers: Parallelism::Threads(3),
            ..ServeOptions::default()
        };
        assert_eq!(queue_depth(&opts), 6);
        opts.max_queue = 2;
        assert_eq!(queue_depth(&opts), 2);
        opts.workers = Parallelism::Threads(1);
        opts.max_queue = 0;
        assert_eq!(queue_depth(&opts), 2);
    }

    #[test]
    fn snapshot_of_empty_state_is_all_zero() {
        let lat: Vec<u64> = Vec::new();
        assert_eq!(percentile_us(&lat, 50.0), 0);
        assert_eq!(percentile_us(&lat, 99.0), 0);
    }

    #[test]
    fn latency_ring_rolls_over_to_recent_samples() {
        // Regression: recording used to stop dead at the cap, so a
        // long-lived server reported its first hour forever. The ring
        // must retain exactly the newest `cap` samples.
        let mut ring = LatencyRing::with_capacity(4);
        for v in 1..=4 {
            ring.push(v);
        }
        assert_eq!(ring.sorted(), vec![1, 2, 3, 4]);
        ring.push(5);
        ring.push(6);
        assert_eq!(ring.sorted(), vec![3, 4, 5, 6], "oldest evicted first");
        for v in 7..=14 {
            ring.push(v);
        }
        assert_eq!(ring.sorted(), vec![11, 12, 13, 14], "full wrap-around");
    }

    #[test]
    fn accept_backoff_grows_exponentially_to_a_cap() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(5), Duration::from_millis(16));
        assert_eq!(accept_backoff(10), ACCEPT_BACKOFF_MAX);
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_MAX, "no overflow");
    }

    #[test]
    fn shadow_sampling_is_exact_and_evenly_spread() {
        // Among the first n eligible requests, exactly floor(n·f) are
        // sampled — the divergence report's sample counts are exact, not
        // probabilistic.
        for (fraction, n) in [(0.0, 1000u64), (0.1, 1000), (0.5, 1000), (1.0, 1000)] {
            let sampled = (0..n).filter(|&k| shadow_sampled(k, fraction)).count() as u64;
            let expected = (n as f64 * fraction).floor() as u64;
            assert_eq!(sampled, expected, "fraction {fraction}");
        }
        assert!(
            (0..100).all(|k| shadow_sampled(k, 1.0)),
            "f=1 is every request"
        );
        assert!(!(0..100).any(|k| shadow_sampled(k, 0.0)), "f=0 is never");
        // f=0.5 alternates: odd sequence numbers are the sampled ones.
        assert!(!shadow_sampled(0, 0.5));
        assert!(shadow_sampled(1, 0.5));
        assert!(!shadow_sampled(2, 0.5));
        assert!(shadow_sampled(3, 0.5));
        // Out-of-range fractions clamp instead of misbehaving.
        assert!(shadow_sampled(0, 7.0));
        assert!(!shadow_sampled(0, -1.0));
    }

    #[test]
    fn timeout_of_treats_zero_as_disabled() {
        assert_eq!(timeout_of(0), None);
        assert_eq!(timeout_of(250), Some(Duration::from_millis(250)));
    }

    /// A connected localhost TCP pair for exercising the reader.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connects");
        let (server, _) = listener.accept().expect("accepts");
        (client, server)
    }

    #[test]
    fn bounded_reader_splits_pipelined_lines_and_detects_torn_frames() {
        let (mut client, server) = tcp_pair();
        let mut reader = BoundedLineReader::new(
            &server,
            1024,
            Some(Duration::from_millis(500)),
            Some(Duration::from_millis(500)),
        );
        client.write_all(b"first\nsecond\npartial").expect("writes");
        let mut line = Vec::new();
        assert!(matches!(reader.read_line(&mut line), LineOutcome::Line));
        assert_eq!(line, b"first");
        assert!(matches!(reader.read_line(&mut line), LineOutcome::Line));
        assert_eq!(line, b"second");
        drop(client);
        assert!(matches!(
            reader.read_line(&mut line),
            LineOutcome::Closed { mid_line: true }
        ));
    }

    #[test]
    fn bounded_reader_rejects_oversized_lines_without_buffering_them() {
        let (mut client, server) = tcp_pair();
        let mut reader = BoundedLineReader::new(
            &server,
            64,
            Some(Duration::from_millis(500)),
            Some(Duration::from_millis(500)),
        );
        // Well over the cap, no newline: the reader must give up as soon
        // as the cap is crossed, not slurp the rest.
        client.write_all(&vec![b'x'; 512]).expect("writes");
        client.flush().expect("flushes");
        let mut line = Vec::new();
        assert!(matches!(reader.read_line(&mut line), LineOutcome::TooLarge));
        assert!(line.len() <= 64 + 4096, "bounded retention");

        // A line that is exactly at the cap (terminated) is fine.
        let (mut client, server) = tcp_pair();
        let mut reader = BoundedLineReader::new(&server, 64, None, None);
        let mut msg = vec![b'y'; 64];
        msg.push(b'\n');
        client.write_all(&msg).expect("writes");
        assert!(matches!(reader.read_line(&mut line), LineOutcome::Line));
        assert_eq!(line.len(), 64);
    }

    #[test]
    fn bounded_reader_distinguishes_idle_from_mid_request_timeouts() {
        let (mut client, server) = tcp_pair();
        let mut reader = BoundedLineReader::new(
            &server,
            1024,
            Some(Duration::from_millis(40)),
            Some(Duration::from_millis(120)),
        );
        // Nothing sent: the idle deadline fires.
        let mut line = Vec::new();
        let t0 = Instant::now();
        assert!(matches!(
            reader.read_line(&mut line),
            LineOutcome::IdleTimeout
        ));
        assert!(t0.elapsed() < Duration::from_millis(2000));

        // Half a request then silence: the mid-request deadline fires.
        client.write_all(b"{\"ScorePairs\"").expect("writes");
        client.flush().expect("flushes");
        assert!(matches!(
            reader.read_line(&mut line),
            LineOutcome::RequestTimeout
        ));
    }
}
