//! Versioned, checksummed on-disk model artifacts.
//!
//! An artifact is a two-line UTF-8 file:
//!
//! ```text
//! {"magic":"SPLITMFG-MODEL","version":1,"checksum":"fnv1a64:<16 hex>"}
//! {"parts":{...},"schema":{...},"meta":{...}}
//! ```
//!
//! Line 1 is the **header**: a magic string identifying the file type, the
//! format version, and an FNV-1a-64 checksum of the payload line's bytes.
//! Line 2 is the **payload**: the trained ensemble and everything needed
//! to reconstruct a [`TrainedAttack`] that scores bit-identically
//! ([`sm_attack::TrainedParts`]), the feature/binning schema the model was
//! trained under, and free-form training metadata.
//!
//! [`ModelArtifact::load`] validates magic, version, checksum, payload
//! shape, and schema coherence in that order, each failure mapped to its
//! own [`ArtifactError`] variant — a corrupt or stale file is always a
//! typed error, never a panic.

use std::path::Path;

use serde::{Deserialize, Serialize};
use sm_attack::attack::HIST_BINS;
use sm_attack::{TrainedAttack, TrainedParts};

/// First token of every artifact header; anything else is not an artifact.
pub const ARTIFACT_MAGIC: &str = "SPLITMFG-MODEL";

/// Current artifact format version. Bump policy: see `DESIGN.md` — any
/// change to [`TrainedParts`]' serialized shape, the feature semantics, or
/// the histogram convention requires a bump; readers reject other versions.
pub const ARTIFACT_VERSION: u32 = 1;

/// Typed artifact validation/read failure.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure reading or writing the artifact.
    Io(std::io::Error),
    /// The file is not a two-line header+payload document, or the header
    /// line is not valid JSON of the expected shape.
    Malformed(String),
    /// The header's magic string is wrong — not a model artifact.
    BadMagic {
        /// What the header contained instead of [`ARTIFACT_MAGIC`].
        found: String,
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The single version this build supports ([`ARTIFACT_VERSION`]).
        supported: u32,
    },
    /// The payload bytes do not hash to the header's checksum (corruption
    /// or tampering).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: String,
        /// Checksum of the payload actually present.
        found: String,
    },
    /// The payload passed the checksum but does not decode as a model
    /// payload (written by a different build of the same version — stale).
    Payload(String),
    /// The payload decoded but is incoherent with this build's attack
    /// pipeline (wrong histogram bin count, feature schema mismatch, ...).
    Incompatible(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o: {e}"),
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::BadMagic { found } => {
                write!(f, "not a model artifact (magic '{found}')")
            }
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} unsupported (this build reads {supported})"
                )
            }
            ArtifactError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "artifact checksum mismatch: header says {expected}, payload hashes to {found}"
                )
            }
            ArtifactError::Payload(m) => write!(f, "artifact payload does not decode: {m}"),
            ArtifactError::Incompatible(m) => {
                write!(f, "artifact incompatible with this build: {m}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// Free-form provenance recorded alongside the model.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrainMeta {
    /// Names of the designs the model was trained on.
    pub benchmarks: Vec<String>,
    /// Split layer the training views were cut at (e.g. "V8").
    pub split_layer: String,
    /// The held-out target this model deliberately excludes, if any
    /// (leave-one-out training for a later `attack --model` run).
    pub excluded_target: Option<String>,
    /// Unix timestamp (seconds) of training, 0 if unknown.
    pub created_unix_s: u64,
}

/// The feature/binning contract the model was trained under, validated on
/// load so a stale artifact cannot silently score garbage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSchema {
    /// Feature names in model input order.
    pub feature_names: Vec<String>,
    /// Number of LoC histogram bins ([`HIST_BINS`]); bin `k` spans
    /// `k / bins <= p < (k + 1) / bins` with the top bin closed.
    pub loc_hist_bins: usize,
}

/// The checksummed payload line of an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactPayload {
    /// The trained model components.
    pub parts: TrainedParts,
    /// Feature/binning schema for load-time validation.
    pub schema: FeatureSchema,
    /// Training provenance.
    pub meta: TrainMeta,
}

/// An in-memory model artifact: encode/decode to the two-line on-disk
/// format, or convert to/from a live [`TrainedAttack`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    payload: ArtifactPayload,
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    checksum: String,
}

/// FNV-1a 64-bit hash of `bytes`, formatted as the checksum string used
/// by both artifact headers and registry index entries
/// (`fnv1a64:<16 hex>`). Re-exported from the workspace-wide durability
/// helper so artifacts, registry indexes and attack checkpoints share one
/// definition.
pub(crate) use sm_attack::durable::fnv1a64;

/// Writes `bytes` to `path` crash-durably via
/// [`sm_attack::durable::atomic_write`] (`.tmp` sibling, fsync, atomic
/// rename, **parent-directory fsync** — the last step was missing here
/// before the durability fix: the rename was atomic but a power cut could
/// roll the directory entry back). `site` names the fail-point family
/// (`"artifact"` or `"registry_index"`) so chaos tests can kill the
/// process at each stage.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8], site: &str) -> Result<(), ArtifactError> {
    sm_attack::durable::atomic_write(path, bytes, site).map_err(ArtifactError::Io)
}

impl ModelArtifact {
    /// Wraps a trained model and its provenance into an artifact.
    pub fn from_trained(model: &TrainedAttack, meta: TrainMeta) -> Self {
        let parts = model.to_parts();
        let schema = FeatureSchema {
            feature_names: parts
                .config
                .features
                .features()
                .iter()
                .map(|f| f.name().to_owned())
                .collect(),
            loc_hist_bins: HIST_BINS,
        };
        Self {
            payload: ArtifactPayload {
                parts,
                schema,
                meta,
            },
        }
    }

    /// The payload (model parts, schema, metadata).
    pub fn payload(&self) -> &ArtifactPayload {
        &self.payload
    }

    /// Reconstructs the live model, re-validating schema coherence.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Incompatible`] if the recorded schema does
    /// not match this build's feature set or histogram convention.
    pub fn into_trained(self) -> Result<TrainedAttack, ArtifactError> {
        self.validate_schema()?;
        Ok(TrainedAttack::from_parts(self.payload.parts))
    }

    fn validate_schema(&self) -> Result<(), ArtifactError> {
        let schema = &self.payload.schema;
        if schema.loc_hist_bins != HIST_BINS {
            return Err(ArtifactError::Incompatible(format!(
                "artifact uses {} LoC histogram bins, this build uses {HIST_BINS}",
                schema.loc_hist_bins
            )));
        }
        let current: Vec<String> = self
            .payload
            .parts
            .config
            .features
            .features()
            .iter()
            .map(|f| f.name().to_owned())
            .collect();
        if schema.feature_names != current {
            return Err(ArtifactError::Incompatible(format!(
                "artifact feature schema {:?} does not match the trained config's features {:?}",
                schema.feature_names, current
            )));
        }
        Ok(())
    }

    /// Serializes to the two-line on-disk format.
    pub fn encode(&self) -> String {
        let payload =
            serde_json::to_string(&self.payload).expect("payload serialization is infallible");
        let header = Header {
            magic: ARTIFACT_MAGIC.to_owned(),
            version: ARTIFACT_VERSION,
            checksum: fnv1a64(payload.as_bytes()),
        };
        let header = serde_json::to_string(&header).expect("header serialization is infallible");
        format!("{header}\n{payload}\n")
    }

    /// Parses and fully validates the two-line format.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a typed [`ArtifactError`]:
    /// malformed structure, bad magic, unsupported version, checksum
    /// mismatch, undecodable payload, or incompatible schema.
    pub fn decode(text: &str) -> Result<Self, ArtifactError> {
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| ArtifactError::Malformed("empty file".into()))?;
        let payload_line = lines
            .next()
            .ok_or_else(|| ArtifactError::Malformed("missing payload line".into()))?;
        if lines.next().is_some_and(|l| !l.trim().is_empty()) {
            return Err(ArtifactError::Malformed(
                "unexpected content after payload line".into(),
            ));
        }
        let header: Header = serde_json::from_str(header_line)
            .map_err(|e| ArtifactError::Malformed(format!("header does not parse: {e}")))?;
        if header.magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic {
                found: header.magic,
            });
        }
        if header.version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: header.version,
                supported: ARTIFACT_VERSION,
            });
        }
        let found = fnv1a64(payload_line.as_bytes());
        if header.checksum != found {
            return Err(ArtifactError::ChecksumMismatch {
                expected: header.checksum,
                found,
            });
        }
        let payload: ArtifactPayload = serde_json::from_str(payload_line)
            .map_err(|e| ArtifactError::Payload(e.to_string()))?;
        let artifact = Self { payload };
        artifact.validate_schema()?;
        Ok(artifact)
    }

    /// Writes the artifact to `path` crash-durably: the bytes go to a
    /// `.tmp` sibling first, are fsynced, atomically renamed over `path`,
    /// and the parent directory is fsynced so the rename itself survives
    /// power loss. A crash mid-save therefore leaves either the previous
    /// artifact or a stray `.tmp` — never a truncated file at `path` (and
    /// even a truncated file fails loading with a typed checksum/structure
    /// error, see [`ModelArtifact::decode`]). Fail-point site family:
    /// `artifact`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure; the `.tmp`
    /// sibling is removed best-effort on the error path.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        write_atomic(path, self.encode().as_bytes(), "artifact")
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure, otherwise the typed
    /// validation errors of [`ModelArtifact::decode`].
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_attack::attack::AttackConfig;
    use sm_layout::{SplitLayer, Suite};

    fn small_model() -> TrainedAttack {
        let views = Suite::ispd2011_like(0.01)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid layer"));
        let train: Vec<_> = views[1..].iter().collect();
        TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("trains")
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let model = small_model();
        let art = ModelArtifact::from_trained(&model, TrainMeta::default());
        let back = ModelArtifact::decode(&art.encode()).expect("decodes");
        assert_eq!(art, back);
        assert_eq!(back.into_trained().expect("coherent"), model);
    }

    #[test]
    fn checksum_is_stable_and_position_dependent() {
        assert_eq!(fnv1a64(b""), "fnv1a64:cbf29ce484222325");
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn corrupt_payload_is_a_checksum_mismatch() {
        let art = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        let text = art.encode();
        let flipped = text.replace("\"num_training_samples\"", "\"num_training_sampleZ\"");
        assert_ne!(text, flipped, "corruption must change the payload");
        assert!(matches!(
            ModelArtifact::decode(&flipped),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let art = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        let text = art.encode();
        let bad_magic = text.replacen(ARTIFACT_MAGIC, "NOT-A-MODEL", 1);
        assert!(matches!(
            ModelArtifact::decode(&bad_magic),
            Err(ArtifactError::BadMagic { .. })
        ));
        let bad_version = text.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            ModelArtifact::decode(&bad_version),
            Err(ArtifactError::UnsupportedVersion {
                found: 99,
                supported: ARTIFACT_VERSION
            })
        ));
    }

    #[test]
    fn truncated_and_garbage_inputs_are_malformed() {
        assert!(matches!(
            ModelArtifact::decode(""),
            Err(ArtifactError::Malformed(_))
        ));
        assert!(matches!(
            ModelArtifact::decode(
                "{\"magic\":\"SPLITMFG-MODEL\",\"version\":1,\"checksum\":\"x\"}"
            ),
            Err(ArtifactError::Malformed(_))
        ));
        assert!(matches!(
            ModelArtifact::decode("not json\nnot json either\n"),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn save_is_atomic_and_truncated_files_load_as_typed_errors() {
        let art = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        let dir = std::env::temp_dir().join("smserve_atomic_save");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.artifact");
        art.save(&path).expect("saves");
        assert!(
            !dir.join("model.artifact.tmp").exists(),
            "the staging file must be renamed away on success"
        );
        let text = std::fs::read_to_string(&path).expect("reads");
        assert_eq!(
            ModelArtifact::load(&path).expect("loads"),
            art,
            "atomic save round-trips"
        );

        // A crash mid-write manifests as a truncated file. At *every*
        // sampled truncation point the loader must answer with a typed
        // ArtifactError — never a panic, never a silently-loaded model.
        let cut_points = [
            0,
            1,
            text.len() / 4,
            text.find('\n').expect("two lines"), // header only
            text.find('\n').expect("two lines") + 1, // header + empty payload
            text.len() / 2,
            text.len() - 2,
        ];
        for cut in cut_points {
            std::fs::write(&path, &text[..cut]).expect("writes truncation");
            let err = ModelArtifact::load(&path).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    ArtifactError::Malformed(_)
                        | ArtifactError::ChecksumMismatch { .. }
                        | ArtifactError::Payload(_)
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }

        // Saving over a corrupt file repairs it (rename replaces).
        art.save(&path).expect("saves again");
        assert_eq!(ModelArtifact::load(&path).expect("loads"), art);

        // A directory path (no file name) is a typed Io error.
        assert!(matches!(
            art.save(Path::new("/")),
            Err(ArtifactError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_schema_is_incompatible() {
        let art = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        let mut stale = art.clone();
        stale.payload.schema.loc_hist_bins = 16;
        assert!(matches!(
            stale.clone().into_trained(),
            Err(ArtifactError::Incompatible(_))
        ));
        // Re-encoding the stale payload produces a valid checksum, so decode
        // must still reject it on schema grounds.
        assert!(matches!(
            ModelArtifact::decode(&stale.encode()),
            Err(ArtifactError::Incompatible(_))
        ));
    }
}
