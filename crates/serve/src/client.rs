//! Blocking protocol client and the `bench-serve` load driver.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::protocol::{Request, Response};

/// Client-side failure talking to a `splitmfg serve` instance.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, premature close).
    Io(std::io::Error),
    /// The server's reply line was not a valid protocol response.
    Protocol(String),
    /// The server answered with [`Response::Error`].
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to a serve instance: one request line out, one
/// response line back, any number of times.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] if the connection cannot be opened.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure or server close,
    /// [`ClientError::Protocol`] if the reply is not a response line. A
    /// [`Response::Error`] reply is returned as a normal `Ok` response so
    /// callers can distinguish per-request failures from dead connections;
    /// use [`Client::call_ok`] to promote it to [`ClientError::Remote`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("unencodable request: {e}")))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// [`Client::call`], but a [`Response::Error`] reply becomes
    /// [`ClientError::Remote`].
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Remote`].
    pub fn call_ok(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { message } => Err(ClientError::Remote(message)),
            other => Ok(other),
        }
    }
}

/// Exact percentile over an already-sorted latency sample (nearest-rank on
/// the `(n - 1)`-scaled index; 0 for an empty sample).
pub fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Load-test shape for [`bench`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// `ScorePairs` requests issued per connection.
    pub requests_per_connection: usize,
    /// Feature vectors per request (the per-request batch size).
    pub batch_size: usize,
    /// Seed for the synthetic feature vectors.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests_per_connection: 50,
            batch_size: 64,
            seed: 0xbe7c,
        }
    }
}

/// Throughput / latency report of one [`bench`] run, JSON-serializable for
/// perf trajectory files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Connections driven concurrently.
    pub connections: usize,
    /// Total requests completed across all connections.
    pub total_requests: u64,
    /// Total candidate pairs scored (requests × batch size).
    pub total_pairs: u64,
    /// Requests that failed (remote error or transport failure).
    pub errors: u64,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub requests_per_s: f64,
    /// Scored pairs per second.
    pub pairs_per_s: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} connections, {} requests ({} pairs), {} errors in {:.3} s",
            self.connections, self.total_requests, self.total_pairs, self.errors, self.wall_s
        )?;
        writeln!(
            f,
            "throughput : {:.0} req/s, {:.0} pairs/s",
            self.requests_per_s, self.pairs_per_s
        )?;
        write!(
            f,
            "latency    : p50 {} us, p95 {} us, p99 {} us, max {} us",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

/// Drives `connections` concurrent clients against a running server, each
/// issuing `requests_per_connection` `ScorePairs` batches of deterministic
/// synthetic feature vectors, and reports throughput and latency
/// percentiles.
///
/// # Errors
///
/// Returns [`ClientError`] if the initial `Health` probe fails (no server
/// or wrong protocol); per-request failures during the run are counted in
/// the report instead.
pub fn bench(addr: &str, config: &BenchConfig) -> Result<BenchReport, ClientError> {
    // One up-front probe learns the model's feature count and fails fast.
    let features = match Client::connect(addr)?.call_ok(&Request::Health)? {
        Response::Health { features, .. } => features,
        other => {
            return Err(ClientError::Protocol(format!(
                "health probe answered with unexpected response {other:?}"
            )))
        }
    };
    let start = Instant::now();
    let per_conn: Vec<(Vec<u64>, u64)> = sm_ml::par_map(
        sm_ml::Parallelism::Threads(config.connections.max(1)),
        config.connections,
        |conn| {
            let mut latencies = Vec::with_capacity(config.requests_per_connection);
            let mut errors = 0u64;
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ ((conn as u64) << 17));
            let Ok(mut client) = Client::connect(addr) else {
                return (latencies, config.requests_per_connection as u64);
            };
            for _ in 0..config.requests_per_connection {
                let batch: Vec<Vec<f64>> = (0..config.batch_size)
                    .map(|_| (0..features).map(|_| rng.gen_range(0.0..5000.0)).collect())
                    .collect();
                let t = Instant::now();
                match client.call(&Request::ScorePairs { features: batch }) {
                    Ok(Response::Scores { .. }) => {
                        latencies.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                    }
                    Ok(_) | Err(_) => errors += 1,
                }
            }
            (latencies, errors)
        },
    );
    let wall_s = start.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for (lat, err) in per_conn {
        latencies.extend(lat);
        errors += err;
    }
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;
    let total_pairs = total_requests * config.batch_size as u64;
    Ok(BenchReport {
        connections: config.connections,
        total_requests,
        total_pairs,
        errors,
        wall_s,
        requests_per_s: total_requests as f64 / wall_s.max(1e-9),
        pairs_per_s: total_pairs as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p95_us: percentile_us(&latencies, 95.0),
        p99_us: percentile_us(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&lat, 0.0), 1);
        assert_eq!(percentile_us(&lat, 50.0), 51); // round(0.5 * 99) = 50
        assert_eq!(percentile_us(&lat, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 99.0), 7);
    }

    #[test]
    fn bench_report_renders_every_number() {
        let report = BenchReport {
            connections: 2,
            total_requests: 10,
            total_pairs: 640,
            errors: 1,
            wall_s: 0.5,
            requests_per_s: 20.0,
            pairs_per_s: 1280.0,
            p50_us: 10,
            p95_us: 20,
            p99_us: 30,
            max_us: 40,
        };
        let text = report.to_string();
        for needle in ["2 connections", "1 errors", "p95 20 us", "1280 pairs/s"] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
        let back: BenchReport =
            serde_json::from_str(&serde_json::to_string(&report).expect("ser")).expect("de");
        assert_eq!(report, back);
    }
}
