//! Blocking protocol client, retry policy, and the `bench-serve` load
//! driver.
//!
//! Every entry point speaks either wire format ([`Wire::Ndjson`] or the
//! length-prefixed [`Wire::Binary`] protocol v2): the server detects the
//! format per connection from the first byte, so a client just picks one
//! at connect time and sticks with it.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::protocol::{binary, ErrorCode, Request, Response, StatsSnapshot, Wire};

/// Client-side failure talking to a `splitmfg serve` instance.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, premature close).
    Io(std::io::Error),
    /// The server's reply line was not a valid protocol response.
    Protocol(String),
    /// The server shed the connection with [`Response::Busy`].
    Busy {
        /// The server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The server answered with [`Response::Error`] — a semantic
    /// rejection of this request, never retried.
    Remote {
        /// Machine-readable failure class from the server.
        code: ErrorCode,
        /// The server's human-readable description.
        message: String,
    },
}

impl ClientError {
    /// Whether a retry of the same request can plausibly succeed:
    /// transport failures and shed connections are retryable, semantic
    /// rejections ([`ClientError::Remote`]) and protocol violations are
    /// not.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Busy { .. })
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy (retry after {retry_after_ms} ms)")
            }
            ClientError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Socket deadlines for [`Client::connect_with`]; `0` disables the
/// respective deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// TCP connect deadline, milliseconds.
    pub connect_ms: u64,
    /// Per-call read/write deadline, milliseconds.
    pub io_ms: u64,
}

impl Default for ClientTimeouts {
    fn default() -> Self {
        Self {
            connect_ms: 2_000,
            io_ms: 30_000,
        }
    }
}

impl ClientTimeouts {
    /// No deadlines at all (block forever), the pre-hardening behavior.
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            connect_ms: 0,
            io_ms: 0,
        }
    }
}

/// A persistent connection to a serve instance: one framed request out,
/// one framed response back, any number of times, over either wire
/// format.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    wire: Wire,
    json_payload: bool,
}

impl Client {
    /// Connects to `addr` speaking NDJSON with no socket deadlines (a
    /// dead server can block forever; prefer [`Client::connect_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] if the connection cannot be opened.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_wire(addr, ClientTimeouts::unbounded(), Wire::Ndjson)
    }

    /// Connects to `addr` speaking NDJSON under `timeouts`: the connect
    /// itself must complete within `connect_ms`, and every subsequent
    /// read/write within `io_ms`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] if resolution or connection fails.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeouts: ClientTimeouts,
    ) -> Result<Self, ClientError> {
        Self::connect_wire(addr, timeouts, Wire::Ndjson)
    }

    /// Connects to `addr` under `timeouts`, speaking `wire`. The server
    /// auto-detects the format from the first byte of the connection, so
    /// no negotiation round-trip happens — a binary client simply starts
    /// sending binary frames.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] if resolution or connection fails.
    pub fn connect_wire<A: ToSocketAddrs>(
        addr: A,
        timeouts: ClientTimeouts,
        wire: Wire,
    ) -> Result<Self, ClientError> {
        let stream = if timeouts.connect_ms == 0 {
            TcpStream::connect(addr)?
        } else {
            let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "address resolved to nothing",
                ))
            })?;
            TcpStream::connect_timeout(&sock_addr, Duration::from_millis(timeouts.connect_ms))?
        };
        Self::from_stream(stream, timeouts, wire)
    }

    fn from_stream(
        stream: TcpStream,
        timeouts: ClientTimeouts,
        wire: Wire,
    ) -> Result<Self, ClientError> {
        let _ = stream.set_nodelay(true);
        if timeouts.io_ms > 0 {
            let io = Some(Duration::from_millis(timeouts.io_ms));
            stream.set_read_timeout(io)?;
            stream.set_write_timeout(io)?;
        }
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            wire,
            json_payload: false,
        })
    }

    /// The wire format this connection speaks.
    #[must_use]
    pub fn wire(&self) -> Wire {
        self.wire
    }

    /// On a [`Wire::Binary`] connection, frame every request as a JSON
    /// payload (frame `0x01`) even when a dense layout exists — exactly
    /// what a pre-dense binary client sends. The server mirrors the
    /// request framing in its reply, so this measures the JSON
    /// encode/parse tax over the same socket discipline. No effect on
    /// NDJSON connections.
    pub fn set_json_payload(&mut self, on: bool) {
        self.json_payload = on;
    }

    /// Sends one request and reads the matching response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure or server close,
    /// [`ClientError::Protocol`] if the reply is not a well-formed
    /// response (line or frame). A [`Response::Error`] or
    /// [`Response::Busy`] reply is returned as a normal `Ok` response so
    /// callers can distinguish per-request failures from dead
    /// connections; use [`Client::call_ok`] to promote them to
    /// [`ClientError::Remote`] / [`ClientError::Busy`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Writes one framed request and flushes it, without waiting for the
    /// reply. Callers may pipeline: issue several `send`s back to back,
    /// then [`Client::recv`] the same number of responses — the server
    /// answers strictly in request order on one connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure, [`ClientError::Protocol`]
    /// if the request cannot be encoded.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.wire {
            Wire::Ndjson => {
                let line = serde_json::to_string(request)
                    .map_err(|e| ClientError::Protocol(format!("unencodable request: {e}")))?;
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            Wire::Binary => {
                let frame = if self.json_payload {
                    binary::encode_request_json(request)
                } else {
                    binary::encode_request(request)
                };
                self.writer.write_all(&frame)?;
            }
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next framed response — the reply to the oldest
    /// [`Client::send`] that has not been answered yet.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure or server close,
    /// [`ClientError::Protocol`] on a malformed reply.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match self.wire {
            Wire::Ndjson => self.recv_ndjson(),
            Wire::Binary => self.recv_binary(),
        }
    }

    fn recv_ndjson(&mut self) -> Result<Response, ClientError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        serde_json::from_str(reply.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    fn recv_binary(&mut self) -> Result<Response, ClientError> {
        let mut header = [0u8; binary::HEADER_LEN];
        self.reader.read_exact(&mut header)?;
        // A shed server answers with an NDJSON Busy line before any wire
        // detection could happen (it never read our first byte). Spot
        // the JSON opener and fall back to line framing for this reply.
        if header[0] == b'{' {
            let mut reply = Vec::from(header);
            let mut rest = Vec::new();
            self.reader.read_until(b'\n', &mut rest)?;
            reply.extend_from_slice(&rest);
            let text = std::str::from_utf8(&reply)
                .map_err(|_| ClientError::Protocol("non-UTF-8 reply line".into()))?;
            return serde_json::from_str(text.trim_end())
                .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")));
        }
        let h = binary::decode_header(header, u64::MAX)
            .map_err(|e| ClientError::Protocol(format!("bad response frame: {e}")))?;
        let mut payload = vec![0u8; h.len as usize];
        self.reader.read_exact(&mut payload)?;
        binary::decode_response(h.frame_type, &payload)
            .map_err(|e| ClientError::Protocol(format!("bad response frame: {e}")))
    }

    /// [`Client::call`], but a [`Response::Error`] reply becomes
    /// [`ClientError::Remote`] and a [`Response::Busy`] reply becomes
    /// [`ClientError::Busy`].
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Remote`] and
    /// [`ClientError::Busy`].
    pub fn call_ok(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ClientError::Remote { code, message }),
            Response::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            other => Ok(other),
        }
    }
}

/// Bounded-retry schedule: exponential backoff with deterministic,
/// seed-derived jitter. Retries apply **only** to transport failures and
/// `Busy` sheds ([`ClientError::is_retryable`]); a semantic
/// [`ClientError::Remote`] is final on the first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `1` means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter hash — the schedule is a pure function of
    /// `(seed, retry index)`, so tests and reproductions see identical
    /// delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 25,
            max_backoff_ms: 1_000,
            jitter_seed: 0x5eed,
        }
    }
}

/// SplitMix64 — a tiny, high-quality hash for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A default-shaped policy allowing `retries` retries after the
    /// first attempt.
    #[must_use]
    pub fn with_retries(retries: u32) -> Self {
        Self {
            max_attempts: retries.saturating_add(1),
            ..Self::default()
        }
    }

    /// The backoff before retry `retry` (1-based), in milliseconds:
    /// "equal jitter" around the exponential envelope — half the capped
    /// exponential plus a seeded-hash fraction of the other half.
    /// Deterministic: the same `(jitter_seed, retry)` always yields the
    /// same delay.
    #[must_use]
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(20);
        let envelope = self
            .base_backoff_ms
            .saturating_mul(1 << exp)
            .min(self.max_backoff_ms);
        let half = envelope / 2;
        half + splitmix64(self.jitter_seed ^ u64::from(retry)) % (envelope - half + 1)
    }
}

/// A [`Client`] wrapper that transparently reconnects and retries under a
/// [`RetryPolicy`]: `Io` failures and `Busy` sheds are retried (with the
/// server's `retry_after_ms` hint respected as a floor), semantic
/// [`ClientError::Remote`] replies are returned immediately.
pub struct RetryingClient {
    addr: String,
    timeouts: ClientTimeouts,
    policy: RetryPolicy,
    wire: Wire,
    json_payload: bool,
    conn: Option<Client>,
    retries: u64,
    busy_retries: u64,
}

impl RetryingClient {
    /// Creates a lazy NDJSON client for `addr`; the first [`Self::call`]
    /// connects.
    #[must_use]
    pub fn new(addr: &str, timeouts: ClientTimeouts, policy: RetryPolicy) -> Self {
        Self::new_wire(addr, timeouts, policy, Wire::Ndjson)
    }

    /// [`Self::new`] with an explicit wire format; every connection
    /// (including reconnects) speaks it.
    #[must_use]
    pub fn new_wire(addr: &str, timeouts: ClientTimeouts, policy: RetryPolicy, wire: Wire) -> Self {
        Self {
            addr: addr.to_owned(),
            timeouts,
            policy,
            wire,
            json_payload: false,
            conn: None,
            retries: 0,
            busy_retries: 0,
        }
    }

    /// See [`Client::set_json_payload`]; applies to the current
    /// connection and to every reconnect.
    pub fn set_json_payload(&mut self, on: bool) {
        self.json_payload = on;
        if let Some(conn) = self.conn.as_mut() {
            conn.set_json_payload(on);
        }
    }

    /// Retries performed so far across all calls (a call that succeeds
    /// on its first attempt contributes 0).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The subset of [`Self::retries`] caused by [`Response::Busy`]
    /// sheds (as opposed to transport failures) — lets callers audit a
    /// server's `shed` counter exactly.
    #[must_use]
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Sends `request`, reconnecting and retrying per the policy.
    ///
    /// # Errors
    ///
    /// The final attempt's error once the policy is exhausted, or
    /// immediately for non-retryable failures ([`ClientError::Remote`],
    /// [`ClientError::Protocol`]).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(request) {
                Ok(response) => return Ok(response),
                Err(e) if e.is_retryable() => {
                    // The connection is dead (Io) or about to be closed
                    // by the server (Busy): reconnect on the next try.
                    self.conn = None;
                    if attempt >= max_attempts {
                        return Err(e);
                    }
                    self.retries += 1;
                    let mut delay = self.policy.backoff_ms(attempt);
                    if let ClientError::Busy { retry_after_ms } = e {
                        self.busy_retries += 1;
                        delay = delay.max(retry_after_ms);
                    }
                    std::thread::sleep(Duration::from_millis(delay));
                }
                Err(e) => {
                    if matches!(e, ClientError::Protocol(_)) {
                        // The stream is desynchronized; don't reuse it.
                        self.conn = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    fn attempt(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            let mut conn = Client::connect_wire(self.addr.as_str(), self.timeouts, self.wire)?;
            conn.set_json_payload(self.json_payload);
            self.conn = Some(conn);
        }
        self.conn
            .as_mut()
            .expect("connection just established")
            .call_ok(request)
    }
}

/// Exact percentile over an already-sorted latency sample (nearest-rank on
/// the `(n - 1)`-scaled index; 0 for an empty sample).
pub fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[percentile_rank(sorted.len(), pct)]
}

/// The sorted-order rank [`percentile_us`] reads for `pct` over `len`
/// samples. Shared with the server's latency ring so its select-nth
/// quantiles land on the very same element a full sort would pick.
pub(crate) fn percentile_rank(len: usize, pct: f64) -> usize {
    debug_assert!(len > 0);
    let idx = ((pct / 100.0) * (len - 1) as f64).round() as usize;
    idx.min(len - 1)
}

/// Whole-challenge `Attack` workload for [`bench`], replacing the default
/// synthetic `ScorePairs` stream. The challenge/truth strings are file
/// *contents* (the same text `splitmfg gen` writes), sent verbatim with
/// every request.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackWorkload {
    /// `.challenge` file contents (the attacker-visible FEOL view).
    pub challenge: String,
    /// `.truth` file contents (for the server-side accuracy summary).
    pub truth: String,
    /// Summary threshold sent with every request.
    pub threshold: f64,
    /// Request the complete scored view (`detail: true`) — much larger
    /// responses, exercising the dense `ScoredView` encoding.
    pub detail: bool,
}

impl Default for AttackWorkload {
    fn default() -> Self {
        Self {
            challenge: String::new(),
            truth: String::new(),
            threshold: 0.5,
            detail: false,
        }
    }
}

/// Load-test shape for [`bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Feature vectors per request (the per-request batch size for the
    /// `ScorePairs` workload; ignored for an attack workload).
    pub batch_size: usize,
    /// Seed for the synthetic feature vectors.
    pub seed: u64,
    /// Registry model id every request routes to; `None` targets the
    /// server's default model.
    pub model_id: Option<String>,
    /// Socket deadlines for every bench connection.
    pub timeouts: ClientTimeouts,
    /// Retry policy for every bench request (the per-connection jitter
    /// seed is further mixed with the connection index). Only the
    /// lockstep path (`pipeline == 1`) retries individual requests;
    /// pipelined connections reconnect and press on instead.
    pub retry: RetryPolicy,
    /// Wire format every bench connection speaks.
    pub wire: Wire,
    /// Requests kept in flight per connection. `1` (the default) is the
    /// classic lockstep loop; higher values send ahead through
    /// [`Client::send`] and drain replies in order, measuring the
    /// server's pipelining behavior.
    pub pipeline: usize,
    /// Force JSON payload framing on binary connections
    /// ([`Client::set_json_payload`]) — benches the pre-dense framing
    /// for apples-to-apples dense-vs-JSON comparisons.
    pub json_payload: bool,
    /// When set, every request is a whole-challenge `Attack` instead of
    /// a synthetic `ScorePairs` batch.
    pub attack: Option<AttackWorkload>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests_per_connection: 50,
            batch_size: 64,
            seed: 0xbe7c,
            model_id: None,
            timeouts: ClientTimeouts::default(),
            retry: RetryPolicy::default(),
            wire: Wire::Ndjson,
            pipeline: 1,
            json_payload: false,
            attack: None,
        }
    }
}

/// Throughput / latency report of one [`bench`] run, JSON-serializable for
/// perf trajectory files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Wire format the run spoke (`ndjson` or `binary`).
    pub wire: String,
    /// Connections driven concurrently.
    pub connections: usize,
    /// Requests kept in flight per connection (1 = lockstep).
    pub pipeline: usize,
    /// Workload the run issued: `score_pairs` or `attack`, with a
    /// `+json` suffix when binary connections forced JSON payloads.
    pub workload: String,
    /// The catalog id that served the run: the `--model-id` target when
    /// one was set, otherwise the server default reported by the `Health`
    /// probe.
    pub served_model: String,
    /// Total requests completed across all connections.
    pub total_requests: u64,
    /// Total candidate pairs scored (requests × batch size).
    pub total_pairs: u64,
    /// Requests that failed even after retries.
    pub errors: u64,
    /// Reconnect-and-retry attempts consumed across all connections
    /// (`Busy` sheds and transport failures that were recovered).
    pub retries: u64,
    /// Wall-clock duration of the whole run, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub requests_per_s: f64,
    /// Scored pairs per second.
    pub pairs_per_s: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
    /// Mean rows per coalescing scoring invocation *during this run*,
    /// from the server's `batched_rows`/`score_batches` deltas between
    /// the pre- and post-run `Stats` probes. `0` when the probes failed
    /// or no coalescible scoring happened.
    pub mean_batch_fill: f64,
    /// The server's own counters sampled right after the run (shed /
    /// timed-out / failed connections are visible here), when the final
    /// `Stats` probe succeeded.
    pub server_stats: Option<StatsSnapshot>,
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pipe = if self.pipeline > 1 {
            format!(", pipeline {}", self.pipeline)
        } else {
            String::new()
        };
        writeln!(
            f,
            "{} connections ({}, {}{}), {} requests ({} pairs), {} errors, {} retries in {:.3} s \
             [model {}]",
            self.connections,
            self.wire,
            self.workload,
            pipe,
            self.total_requests,
            self.total_pairs,
            self.errors,
            self.retries,
            self.wall_s,
            self.served_model
        )?;
        writeln!(
            f,
            "throughput : {:.0} req/s, {:.0} pairs/s",
            self.requests_per_s, self.pairs_per_s
        )?;
        write!(
            f,
            "latency    : p50 {} us, p95 {} us, p99 {} us, max {} us",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        )?;
        if let Some(stats) = &self.server_stats {
            write!(
                f,
                "\nserver     : {} requests, {} errors, {} io_errors, {} shed, {} timeouts",
                stats.requests, stats.errors, stats.io_errors, stats.shed, stats.timeouts
            )?;
        }
        if self.mean_batch_fill > 0.0 {
            write!(
                f,
                "\nbatching   : {:.1} rows/kernel call",
                self.mean_batch_fill
            )?;
        }
        Ok(())
    }
}

/// Drives `connections` concurrent clients against a running server,
/// each issuing `requests_per_connection` requests of the configured
/// workload (synthetic `ScorePairs` batches by default, whole-challenge
/// `Attack`s via [`BenchConfig::attack`]), lockstep or pipelined, and
/// reports throughput, latency percentiles, retries, and the server's
/// post-run counters.
///
/// # Errors
///
/// Returns [`ClientError`] if the initial `Health` probe fails (no server
/// or wrong protocol); per-request failures during the run are counted in
/// the report instead.
pub fn bench(addr: &str, config: &BenchConfig) -> Result<BenchReport, ClientError> {
    // One up-front probe learns the model's feature count and fails fast.
    // With an explicit target, ListModels resolves that entry's feature
    // count (models in one registry may disagree on width); otherwise
    // Health describes the default model.
    let mut probe = Client::connect_with(addr, config.timeouts)?;
    let (served_model, features) = match &config.model_id {
        None => match probe.call_ok(&Request::Health)? {
            Response::Health {
                model_id, features, ..
            } => (model_id, features),
            other => {
                return Err(ClientError::Protocol(format!(
                    "health probe answered with unexpected response {other:?}"
                )))
            }
        },
        Some(target) => match probe.call_ok(&Request::ListModels)? {
            Response::Models { models, .. } => {
                let entry = models
                    .iter()
                    .find(|m| &m.model_id == target)
                    .ok_or_else(|| ClientError::Remote {
                        code: ErrorCode::NotFound,
                        message: format!("model '{target}' is not in the serving catalog"),
                    })?;
                (entry.model_id.clone(), entry.features)
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "model listing answered with unexpected response {other:?}"
                )))
            }
        },
    };
    // A pre-run Stats sample turns the post-run counters into *this
    // run's* deltas (batch fill would otherwise smear across runs
    // against a long-lived server). Best-effort like the post-run probe.
    let pre_stats = match probe.call_ok(&Request::Stats) {
        Ok(Response::Stats { stats }) => Some(stats),
        _ => None,
    };
    drop(probe);
    let start = Instant::now();
    let per_conn: Vec<ConnOutcome> = sm_ml::par_map(
        sm_ml::Parallelism::Threads(config.connections.max(1)),
        config.connections,
        |conn| {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ ((conn as u64) << 17));
            if config.pipeline <= 1 {
                bench_conn_lockstep(addr, config, conn, features, &mut rng)
            } else {
                bench_conn_pipelined(addr, config, features, &mut rng)
            }
        },
    );
    let wall_s = start.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    let mut retries = 0u64;
    let mut total_pairs = 0u64;
    for out in per_conn {
        latencies.extend(out.latencies);
        errors += out.errors;
        retries += out.retries;
        total_pairs += out.pairs;
    }
    latencies.sort_unstable();
    let total_requests = latencies.len() as u64;
    let server_stats = match Client::connect_with(addr, config.timeouts)
        .and_then(|mut c| c.call_ok(&Request::Stats))
    {
        Ok(Response::Stats { stats }) => Some(stats),
        _ => None,
    };
    let mean_batch_fill = match (&pre_stats, &server_stats) {
        (Some(pre), Some(post)) => {
            let calls = post.score_batches.saturating_sub(pre.score_batches);
            let rows = post.batched_rows.saturating_sub(pre.batched_rows);
            if calls == 0 {
                0.0
            } else {
                rows as f64 / calls as f64
            }
        }
        _ => 0.0,
    };
    let mut workload = if config.attack.is_some() {
        "attack".to_owned()
    } else {
        "score_pairs".to_owned()
    };
    if config.json_payload && config.wire == Wire::Binary {
        workload.push_str("+json");
    }
    Ok(BenchReport {
        wire: config.wire.as_str().to_owned(),
        connections: config.connections,
        pipeline: config.pipeline.max(1),
        workload,
        served_model,
        total_requests,
        total_pairs,
        errors,
        retries,
        wall_s,
        requests_per_s: total_requests as f64 / wall_s.max(1e-9),
        pairs_per_s: total_pairs as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&latencies, 50.0),
        p95_us: percentile_us(&latencies, 95.0),
        p99_us: percentile_us(&latencies, 99.0),
        max_us: latencies.last().copied().unwrap_or(0),
        mean_batch_fill,
        server_stats,
    })
}

/// What one bench connection produced: per-request latencies for the
/// successful requests, plus error/retry/pair totals.
struct ConnOutcome {
    latencies: Vec<u64>,
    errors: u64,
    retries: u64,
    pairs: u64,
}

/// Builds the next request of the configured workload.
fn build_request(config: &BenchConfig, features: usize, rng: &mut ChaCha8Rng) -> Request {
    match &config.attack {
        None => Request::ScorePairs {
            features: (0..config.batch_size)
                .map(|_| (0..features).map(|_| rng.gen_range(0.0..5000.0)).collect())
                .collect(),
            model_id: config.model_id.clone(),
        },
        Some(w) => Request::Attack {
            challenge: w.challenge.clone(),
            truth: w.truth.clone(),
            threshold: w.threshold,
            detail: w.detail,
            model_id: config.model_id.clone(),
        },
    }
}

/// Pairs credited by a successful reply of the configured workload, or
/// `None` when the reply does not answer that workload (an error, a
/// `Busy`, or a mismatched variant).
fn reply_pairs(config: &BenchConfig, response: &Response) -> Option<u64> {
    match (response, &config.attack) {
        (Response::Scores { probs }, None) => Some(probs.len() as u64),
        (Response::AttackResult { summary, .. }, Some(_)) => Some(summary.pairs_scored),
        _ => None,
    }
}

fn elapsed_us(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The classic lockstep loop: one request in flight, full retry policy.
fn bench_conn_lockstep(
    addr: &str,
    config: &BenchConfig,
    conn: usize,
    features: usize,
    rng: &mut ChaCha8Rng,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        latencies: Vec::with_capacity(config.requests_per_connection),
        errors: 0,
        retries: 0,
        pairs: 0,
    };
    let policy = RetryPolicy {
        jitter_seed: config.retry.jitter_seed ^ ((conn as u64) << 23),
        ..config.retry
    };
    let mut client = RetryingClient::new_wire(addr, config.timeouts, policy, config.wire);
    client.set_json_payload(config.json_payload);
    for _ in 0..config.requests_per_connection {
        let request = build_request(config, features, rng);
        let t = Instant::now();
        match client.call(&request) {
            Ok(reply) => match reply_pairs(config, &reply) {
                Some(pairs) => {
                    out.pairs += pairs;
                    out.latencies.push(elapsed_us(t));
                }
                None => out.errors += 1,
            },
            Err(_) => out.errors += 1,
        }
    }
    out.retries = client.retries();
    out
}

/// The pipelined loop: up to `config.pipeline` requests in flight on one
/// connection, replies drained strictly in order. A transport failure
/// voids every in-flight request (their replies will never arrive),
/// reconnects, and presses on — individual requests are not retried, so
/// the measured stream stays back-to-back.
fn bench_conn_pipelined(
    addr: &str,
    config: &BenchConfig,
    features: usize,
    rng: &mut ChaCha8Rng,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        latencies: Vec::with_capacity(config.requests_per_connection),
        errors: 0,
        retries: 0,
        pairs: 0,
    };
    let total = config.requests_per_connection;
    let window = config.pipeline.max(1);
    let mut issued = 0usize;
    loop {
        let mut client = match Client::connect_wire(addr, config.timeouts, config.wire) {
            Ok(c) => c,
            Err(_) => {
                // A refused connect burns one request slot so a dead
                // server terminates the loop instead of spinning.
                out.errors += 1;
                issued += 1;
                if issued >= total {
                    return out;
                }
                continue;
            }
        };
        client.set_json_payload(config.json_payload);
        let mut inflight: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
        let mut broken = false;
        while issued < total || !inflight.is_empty() {
            // Fill the window before draining the oldest reply.
            if issued < total && inflight.len() < window {
                let request = build_request(config, features, rng);
                issued += 1;
                if client.send(&request).is_err() {
                    // The failed send plus everything in flight dies.
                    out.errors += 1 + inflight.len() as u64;
                    inflight.clear();
                    broken = true;
                    break;
                }
                inflight.push_back(Instant::now());
                continue;
            }
            let t = inflight.pop_front().expect("drain implies in-flight");
            match client.recv() {
                Ok(reply) => match reply_pairs(config, &reply) {
                    Some(pairs) => {
                        out.pairs += pairs;
                        out.latencies.push(elapsed_us(t));
                    }
                    None => out.errors += 1,
                },
                Err(_) => {
                    // Everything still in flight dies with the stream.
                    out.errors += 1 + inflight.len() as u64;
                    inflight.clear();
                    broken = true;
                    break;
                }
            }
        }
        if !broken || issued >= total {
            return out;
        }
        out.retries += 1; // one reconnect consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_expected_ranks() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&lat, 0.0), 1);
        assert_eq!(percentile_us(&lat, 50.0), 51); // round(0.5 * 99) = 50
        assert_eq!(percentile_us(&lat, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 99.0), 7);
    }

    #[test]
    fn bench_report_renders_every_number() {
        let report = BenchReport {
            wire: "binary".into(),
            connections: 2,
            pipeline: 8,
            workload: "attack+json".into(),
            served_model: "incumbent".into(),
            total_requests: 10,
            total_pairs: 640,
            errors: 1,
            retries: 3,
            wall_s: 0.5,
            requests_per_s: 20.0,
            pairs_per_s: 1280.0,
            p50_us: 10,
            p95_us: 20,
            p99_us: 30,
            max_us: 40,
            mean_batch_fill: 96.5,
            server_stats: Some(StatsSnapshot {
                requests: 11,
                errors: 1,
                io_errors: 2,
                shed: 3,
                timeouts: 4,
                ..StatsSnapshot::default()
            }),
        };
        let text = report.to_string();
        for needle in [
            "2 connections (binary, attack+json, pipeline 8)",
            "1 errors",
            "3 retries",
            "p95 20 us",
            "1280 pairs/s",
            "3 shed",
            "4 timeouts",
            "[model incumbent]",
            "96.5 rows/kernel call",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
        let back: BenchReport =
            serde_json::from_str(&serde_json::to_string(&report).expect("ser")).expect("de");
        assert_eq!(report, back);
    }

    #[test]
    fn send_recv_pipelines_replies_in_request_order() {
        // An NDJSON peer that answers each line with an identifying
        // Scores reply: three pipelined sends must drain as replies
        // 0, 1, 2 — the ordering contract the pipelined bench rests on.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            for k in 0..u32::MAX {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let reply = Response::Scores {
                    probs: vec![f64::from(k)],
                };
                let mut out = serde_json::to_string(&reply).expect("ser");
                out.push('\n');
                if (&stream).write_all(out.as_bytes()).is_err() {
                    return;
                }
            }
        });
        let timeouts = ClientTimeouts {
            connect_ms: 2_000,
            io_ms: 2_000,
        };
        let mut client = Client::connect_with(addr.to_string(), timeouts).expect("connects");
        for _ in 0..3 {
            client.send(&Request::Health).expect("pipelined send");
        }
        for k in 0..3u32 {
            match client.recv().expect("reply arrives") {
                Response::Scores { probs } => assert_eq!(probs, vec![f64::from(k)]),
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 25,
            max_backoff_ms: 400,
            jitter_seed: 42,
        };
        let schedule: Vec<u64> = (1..=7).map(|r| policy.backoff_ms(r)).collect();
        // Deterministic: the same seed reproduces the same delays.
        let again: Vec<u64> = (1..=7).map(|r| policy.backoff_ms(r)).collect();
        assert_eq!(schedule, again);
        // Each delay lives in the "equal jitter" envelope
        // [env/2, env] for env = min(base * 2^(r-1), max).
        for (k, &delay) in schedule.iter().enumerate() {
            let envelope = (25u64 << k).min(400);
            assert!(
                delay >= envelope / 2 && delay <= envelope,
                "retry {}: {delay} outside [{}, {envelope}]",
                k + 1,
                envelope / 2
            );
        }
        // A different seed jitters differently somewhere in the schedule.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        let shifted: Vec<u64> = (1..=7).map(|r| other.backoff_ms(r)).collect();
        assert_ne!(schedule, shifted, "jitter must depend on the seed");
        // And the envelope saturates instead of overflowing.
        assert!(policy.backoff_ms(u32::MAX) <= 400);
    }

    #[test]
    fn retry_policy_constructors_bound_attempts() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(0).max_attempts, 1);
        assert_eq!(RetryPolicy::with_retries(3).max_attempts, 4);
        assert_eq!(RetryPolicy::with_retries(u32::MAX).max_attempts, u32::MAX);
    }

    #[test]
    fn error_classification_matches_the_retry_rule() {
        let io = ClientError::Io(std::io::Error::other("x"));
        let busy = ClientError::Busy { retry_after_ms: 5 };
        let remote = ClientError::Remote {
            code: ErrorCode::BadRequest,
            message: "nope".into(),
        };
        let protocol = ClientError::Protocol("garbled".into());
        assert!(io.is_retryable());
        assert!(busy.is_retryable());
        assert!(!remote.is_retryable(), "semantic errors are final");
        assert!(!protocol.is_retryable());
        assert!(busy.to_string().contains("retry after 5 ms"));
        assert!(remote.to_string().contains("[bad_request]"));
    }

    /// A canned `Health` reply with placeholder identity fields.
    fn health_reply(model: &str, features: usize, trees: usize) -> Response {
        Response::Health {
            model: model.into(),
            features,
            trees,
            artifact_version: 1,
            model_id: "default".into(),
            checksum: "fnv1a64:0000000000000000".into(),
            schema_version: 1,
        }
    }

    /// A scripted single-shot TCP peer: for each accepted connection it
    /// sends the next canned reply line after reading one line, then
    /// closes. Lets retry behavior be tested without a real model.
    fn scripted_server(replies: Vec<Option<Response>>) -> std::net::SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for reply in replies {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                if let Some(response) = reply {
                    let mut out = serde_json::to_string(&response).expect("ser");
                    out.push('\n');
                    let _ = (&stream).write_all(out.as_bytes());
                }
                // `None` (and fall-through) close the connection.
            }
        });
        addr
    }

    #[test]
    fn busy_then_success_costs_exactly_one_retry() {
        let addr = scripted_server(vec![
            Some(Response::Busy { retry_after_ms: 1 }),
            Some(health_reply("Imp-9", 9, 10)),
        ]);
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            jitter_seed: 7,
        };
        let mut client = RetryingClient::new(
            &addr.to_string(),
            ClientTimeouts {
                connect_ms: 2_000,
                io_ms: 2_000,
            },
            policy,
        );
        match client.call(&Request::Health).expect("retry succeeds") {
            Response::Health { model, .. } => assert_eq!(model, "Imp-9"),
            other => panic!("unexpected reply: {other:?}"),
        }
        assert_eq!(client.retries(), 1, "exactly one retry consumed");
    }

    #[test]
    fn remote_errors_are_never_retried() {
        let addr = scripted_server(vec![
            Some(Response::Error {
                code: ErrorCode::BadRequest,
                message: "bad batch".into(),
            }),
            // A second accept would absorb an (incorrect) retry; the
            // assertion on retries() proves it was never consumed.
            Some(health_reply("never", 0, 0)),
        ]);
        let mut client = RetryingClient::new(
            &addr.to_string(),
            ClientTimeouts {
                connect_ms: 2_000,
                io_ms: 2_000,
            },
            RetryPolicy {
                max_attempts: 5,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                jitter_seed: 7,
            },
        );
        let err = client.call(&Request::Health).expect_err("remote is final");
        assert!(
            matches!(
                err,
                ClientError::Remote {
                    code: ErrorCode::BadRequest,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(client.retries(), 0);
    }

    #[test]
    fn not_found_is_a_final_typed_remote_error() {
        // `not_found` is a routing mistake, not congestion: it must
        // surface as ClientError::Remote on the first attempt and never
        // be retried the way Busy is — the id stays absent until a
        // reload publishes it, so retrying is pure waste.
        let err = ClientError::Remote {
            code: ErrorCode::NotFound,
            message: "model 'ghost' not found".into(),
        };
        assert!(!err.is_retryable());
        assert!(!ErrorCode::NotFound.retryable());
        assert!(err.to_string().contains("[not_found]"));

        let addr = scripted_server(vec![
            Some(Response::Error {
                code: ErrorCode::NotFound,
                message: "model 'ghost' not found in the serving catalog".into(),
            }),
            // Bait for an incorrect retry, like the remote-error test.
            Some(health_reply("never", 0, 0)),
        ]);
        let mut client = RetryingClient::new(
            &addr.to_string(),
            ClientTimeouts {
                connect_ms: 2_000,
                io_ms: 2_000,
            },
            RetryPolicy {
                max_attempts: 5,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                jitter_seed: 11,
            },
        );
        let request = Request::ScorePairs {
            features: vec![vec![1.0]],
            model_id: Some("ghost".into()),
        };
        let err = client.call(&request).expect_err("not_found is final");
        assert!(
            matches!(
                err,
                ClientError::Remote {
                    code: ErrorCode::NotFound,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(client.retries(), 0, "never retried");
        assert_eq!(client.busy_retries(), 0);
    }

    #[test]
    fn attempts_are_bounded_when_every_try_fails() {
        // Three Busy replies, then the server thread stops accepting: a
        // 3-attempt policy must consume exactly 2 retries and surface
        // the last Busy.
        let addr = scripted_server(vec![
            Some(Response::Busy { retry_after_ms: 1 }),
            Some(Response::Busy { retry_after_ms: 1 }),
            Some(Response::Busy { retry_after_ms: 1 }),
        ]);
        let mut client = RetryingClient::new(
            &addr.to_string(),
            ClientTimeouts {
                connect_ms: 2_000,
                io_ms: 2_000,
            },
            RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                jitter_seed: 9,
            },
        );
        let err = client.call(&Request::Health).expect_err("exhausts");
        assert!(matches!(err, ClientError::Busy { .. }), "{err}");
        assert_eq!(client.retries(), 2, "max_attempts bounds total work");
    }
}
