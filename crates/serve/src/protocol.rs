//! The wire protocols spoken by `splitmfg serve`.
//!
//! **NDJSON (v1).** Each request is one JSON document on one line; the
//! server answers with exactly one JSON response line. Requests and
//! responses use serde's externally-tagged enum encoding: a unit variant
//! is its name in quotes (`"Health"`), a data variant wraps its payload
//! (`{"ScorePairs":{"features":[[...]]}}`). A connection may issue any
//! number of requests; `"Shutdown"` asks the whole server to stop
//! gracefully after draining queued connections.
//!
//! **Binary (v2).** Length-prefixed frames with raw little-endian `f64`
//! payloads for the hot path, so scores round-trip bit-identically
//! without text formatting. Every frame starts with an 8-byte header:
//!
//! | offset | size | field                                   |
//! |--------|------|-----------------------------------------|
//! | 0      | 1    | magic `0xB5`                            |
//! | 1      | 1    | magic `0x53`                            |
//! | 2      | 1    | protocol version (`2`)                  |
//! | 3      | 1    | frame type                              |
//! | 4      | 4    | payload length, u32 little-endian       |
//!
//! Frame types `0x01`/`0x81` carry a JSON-encoded [`Request`]/
//! [`Response`] payload (the control plane reuses the v1 encoding
//! verbatim). Types `0x02` (`ScorePairs` request), `0x03` (`Attack`
//! request), `0x82` (`Scores` response) and `0x83` (`AttackResult`
//! response) carry dense binary payloads — see [`binary`]. Both sides of
//! a connection speak the same wire; the server auto-detects it from the
//! first byte (`0xB5` is a UTF-8 continuation byte, so it can never
//! start an NDJSON request line) and the choice is sticky per
//! connection. Responses mirror the request's framing: a JSON-framed
//! `Attack` is answered with a JSON-framed `AttackResult`, a dense one
//! densely, so pre-0x03 binary clients keep working unchanged.

use serde::{Deserialize, Serialize};
use sm_attack::ScoredView;

/// A client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness/identity probe; always answered.
    Health,
    /// Snapshot of the server's running counters.
    Stats,
    /// List every model in the serving catalog and the default id.
    ListModels,
    /// Rescan the registry directory and atomically swap the serving
    /// catalog. Only meaningful on a registry-backed server (`serve
    /// --registry`); a single-model server answers `bad_request`. On
    /// failure the old catalog keeps serving untouched.
    Reload,
    /// Score a batch of pre-computed feature vectors (one per candidate
    /// v-pin pair, in the model's feature order).
    ScorePairs {
        /// `features[k]` is pair `k`'s feature vector; every row must have
        /// exactly the model's feature count.
        features: Vec<Vec<f64>>,
        /// Which catalog entry scores the batch; absent routes to the
        /// server's default model. Unknown ids answer `not_found`.
        model_id: Option<String>,
    },
    /// Run the full attack on a challenge: parse, score every candidate
    /// pair, and report LoC/accuracy numbers.
    Attack {
        /// `.challenge` file contents (the attacker-visible FEOL view).
        challenge: String,
        /// `.truth` file contents (for scoring the attack's accuracy).
        truth: String,
        /// Probability threshold for the summary's accuracy/LoC numbers.
        threshold: f64,
        /// When true, the response carries the complete [`ScoredView`]
        /// (bit-exact, for verification); when false, only the summary.
        detail: bool,
        /// Which catalog entry runs the attack; absent routes to the
        /// server's default model. Unknown ids answer `not_found`.
        model_id: Option<String>,
    },
    /// Gracefully stop the server.
    Shutdown,
}

/// Accuracy/LoC summary of one remote attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Design name from the challenge.
    pub design: String,
    /// Number of v-pins in the challenge.
    pub num_vpins: usize,
    /// Candidate pairs evaluated.
    pub pairs_scored: u64,
    /// Threshold the summary numbers were computed at.
    pub threshold: f64,
    /// Fraction of v-pins whose true match clears the threshold.
    pub accuracy: f64,
    /// Mean list-of-candidates size at the threshold.
    pub mean_loc: f64,
    /// Accuracy ceiling over all thresholds.
    pub max_accuracy: f64,
}

/// Machine-readable classification of a [`Response::Error`], so clients
/// can tell retryable congestion from fatal misuse without parsing the
/// message text. On the wire a code is serde's unit-variant encoding
/// (`"BadRequest"`, `"TooLarge"`, `"Timeout"`); [`ErrorCode::as_str`]
/// gives the conventional snake_case name for logs and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line did not parse, or its payload was semantically
    /// invalid (wrong feature-row width, malformed challenge). Retrying
    /// the same bytes will fail the same way.
    BadRequest,
    /// The request line exceeded the server's `max_request_bytes` cap.
    /// The server closes the connection after this reply (the rest of
    /// the oversized line is unread). Not retryable as-is.
    TooLarge,
    /// The request stalled past the server's mid-request read deadline
    /// (slow-loris defence). The server closes the connection after
    /// this reply.
    Timeout,
    /// Reserved for [`Response::Busy`]'s code in logs; the server sheds
    /// load with the dedicated `Busy` variant, which carries a retry
    /// hint. Retryable after backing off.
    Busy,
    /// The request named a `model_id` that is not in the serving
    /// catalog. Not retryable: the same id keeps failing until a reload
    /// publishes it (use `ListModels` to see what is served).
    NotFound,
}

impl ErrorCode {
    /// The conventional snake_case name (`bad_request`, `too_large`,
    /// `timeout`, `busy`, `not_found`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Busy => "busy",
            ErrorCode::NotFound => "not_found",
        }
    }

    /// Whether a client may reasonably retry the same request. Only
    /// congestion (`busy`) is retryable; the other codes indicate the
    /// request itself (or its delivery) was defective.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Busy)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Exact divergence report from A/B shadow scoring: a sampled fraction
/// of `ScorePairs` requests is re-scored against a second catalog entry
/// and compared probability-by-probability. All statistics are exact
/// over the compared pairs (no sketching), so two identical models must
/// report `max_abs_dp == 0.0` bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Catalog id of the shadow model.
    pub shadow_model: String,
    /// Decision threshold the disagreement count is computed at.
    pub threshold: f64,
    /// `ScorePairs` requests selected for shadow scoring so far.
    pub sampled_requests: u64,
    /// Individual pair probabilities compared so far.
    pub compared_pairs: u64,
    /// Largest `|p_primary - p_shadow|` observed.
    pub max_abs_dp: f64,
    /// Mean `|p_primary - p_shadow|` over all compared pairs (0 until
    /// data exists).
    pub mean_abs_dp: f64,
    /// Pairs where primary and shadow fall on opposite sides of the
    /// decision threshold.
    pub disagreements: u64,
    /// Sampled requests skipped because the shadow id vanished from the
    /// catalog (a reload removed it). The primary answer is unaffected.
    pub shadow_missing: u64,
}

/// Running server counters, as returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Catalog id of the current default model.
    pub model_id: String,
    /// Artifact checksum of the current default model.
    pub model_checksum: String,
    /// Artifact format version of the current default model.
    pub schema_version: u32,
    /// Successful catalog reloads since startup.
    pub reloads: u64,
    /// Shadow-scoring divergence report, when a shadow model is
    /// configured.
    pub shadow: Option<ShadowReport>,
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Connections that ended in a socket-level failure: a read error,
    /// a response write that could not complete, or a peer that
    /// vanished mid-request-line (torn frame).
    pub io_errors: u64,
    /// Connections shed with [`Response::Busy`] because the worker pool
    /// and its queue were both full.
    pub shed: u64,
    /// Connections closed for exceeding the mid-request read deadline
    /// (a [`Response::Error`] with [`ErrorCode::Timeout`] is sent
    /// first, best-effort). Idle connections closed by the idle
    /// deadline are a normal lifecycle event and are not counted here.
    pub timeouts: u64,
    /// Total candidate pairs scored across `ScorePairs` and `Attack`.
    pub pairs_scored: u64,
    /// Reactor event-loop threads driving connections (the scoring
    /// executor's size is a separate knob; see `pool_size`).
    pub event_loops: u64,
    /// Scoring invocations on the executor's coalescing path — one
    /// `proba_batch` call each, possibly covering several requests.
    pub score_batches: u64,
    /// Feature rows scored through those coalescing invocations
    /// (`batched_rows / score_batches` is the mean batch fill).
    pub batched_rows: u64,
    /// Requests that shared a scoring invocation with at least one
    /// other request — cross-connection micro-batching actually fired.
    pub batched_requests: u64,
    /// Median request latency in microseconds (0 until data exists).
    pub p50_us: u64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// Worst observed request latency in microseconds.
    pub max_us: u64,
}

/// One catalog entry as reported by [`Request::ListModels`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Routing key clients put in `model_id` fields.
    pub model_id: String,
    /// Configuration name of the model (e.g. `Imp-11`).
    pub config: String,
    /// Model input feature count.
    pub features: usize,
    /// Ensemble size.
    pub trees: usize,
    /// Artifact checksum the entry was loaded against.
    pub checksum: String,
    /// Artifact format version of the loaded file.
    pub schema_version: u32,
    /// Split layer recorded in the model's train metadata.
    pub split_layer: String,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Health`]. Identity fields describe the
    /// current *default* model (use [`Request::ListModels`] for the
    /// whole catalog).
    Health {
        /// Configuration name of the served model (e.g. `Imp-11`).
        model: String,
        /// Model input feature count — `ScorePairs` rows must match.
        features: usize,
        /// Ensemble size of the served model.
        trees: usize,
        /// Artifact format version the server was built against.
        artifact_version: u32,
        /// Catalog id of the default model.
        model_id: String,
        /// Artifact checksum of the default model.
        checksum: String,
        /// Artifact format version of the default model's loaded file.
        schema_version: u32,
    },
    /// Answer to [`Request::ListModels`].
    Models {
        /// The id requests without a `model_id` route to.
        default_model: String,
        /// Every servable model, sorted by id.
        models: Vec<ModelInfo>,
    },
    /// Answer to a successful [`Request::Reload`]: the catalog now
    /// serving.
    Reloaded {
        /// Default model id after the swap.
        default_model: String,
        /// Ids now servable, sorted.
        models: Vec<String>,
        /// Successful reloads since startup, including this one.
        reloads: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The counters at the time the request was handled.
        stats: StatsSnapshot,
    },
    /// Answer to [`Request::ScorePairs`].
    Scores {
        /// `probs[k]` is the ensemble probability for input row `k`,
        /// bit-identical to an in-process `Bagging::proba` call.
        probs: Vec<f64>,
    },
    /// Answer to [`Request::Attack`].
    AttackResult {
        /// Accuracy/LoC summary at the requested threshold.
        summary: AttackSummary,
        /// Complete scoring result when `detail` was requested.
        scored: Option<ScoredView>,
    },
    /// Answer to [`Request::Shutdown`]; the server stops accepting new
    /// connections after sending this.
    ShuttingDown,
    /// The server is saturated (worker pool and connection queue full)
    /// and shed this connection instead of queueing it. The connection
    /// is closed after this reply; reconnect after roughly
    /// `retry_after_ms`.
    Busy {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The request could not be served. Whether the connection stays
    /// usable depends on the code: `bad_request` leaves it open,
    /// `too_large` and `timeout` close it (the request's remaining
    /// bytes cannot be safely resynchronized).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable description of what was wrong.
        message: String,
    },
}

/// Which wire encoding a client speaks. The server needs no such knob:
/// it detects the wire per connection from the first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Wire {
    /// Newline-delimited JSON (protocol v1); the default, spoken by
    /// every client since PR 2.
    #[default]
    Ndjson,
    /// Length-prefixed binary frames (protocol v2).
    Binary,
}

impl Wire {
    /// The CLI/report name (`ndjson`, `binary`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Wire::Ndjson => "ndjson",
            Wire::Binary => "binary",
        }
    }
}

impl std::fmt::Display for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Wire {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ndjson" => Ok(Wire::Ndjson),
            "binary" => Ok(Wire::Binary),
            other => Err(format!("unknown wire format {other:?} (ndjson|binary)")),
        }
    }
}

/// The length-prefixed binary protocol v2: frame header codec plus the
/// dense payloads for the two hot-path messages. Everything here is
/// pure encode/decode — no I/O — so the server's state machine and the
/// blocking client share one implementation.
pub mod binary {
    use super::{Request, Response};
    use sm_attack::attack::{Cand, VpinScore};
    use sm_attack::ScoredView;

    /// First magic byte. Chosen to be a UTF-8 continuation byte so a
    /// binary connection can never be mistaken for NDJSON: no valid
    /// JSON request line can start with `0xB5`.
    pub const MAGIC0: u8 = 0xB5;
    /// Second magic byte (`b'S'` for "splitmfg serve").
    pub const MAGIC1: u8 = 0x53;
    /// Protocol version carried in every frame header.
    pub const VERSION: u8 = 2;
    /// Bytes in a frame header.
    pub const HEADER_LEN: usize = 8;

    /// Frame type: JSON-encoded [`Request`] payload (control plane).
    pub const FRAME_JSON_REQUEST: u8 = 0x01;
    /// Frame type: dense [`Request::ScorePairs`] payload.
    pub const FRAME_SCORE_PAIRS: u8 = 0x02;
    /// Frame type: dense [`Request::Attack`] payload.
    pub const FRAME_ATTACK: u8 = 0x03;
    /// Frame type: JSON-encoded [`Response`] payload.
    pub const FRAME_JSON_RESPONSE: u8 = 0x81;
    /// Frame type: dense [`Response::Scores`] payload.
    pub const FRAME_SCORES: u8 = 0x82;
    /// Frame type: dense [`Response::AttackResult`] payload.
    pub const FRAME_ATTACK_RESULT: u8 = 0x83;

    /// In a ScorePairs payload, this `model_id` length sentinel means
    /// "no model id" (route to the server's default model).
    pub const NO_MODEL_ID: u32 = u32::MAX;

    /// Why a frame failed to decode. [`FrameError::TooLarge`] maps to
    /// the `too_large` error code on the server; everything else is
    /// `bad_request`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum FrameError {
        /// The first two bytes were not `B5 53`.
        BadMagic([u8; 2]),
        /// The version byte was not [`VERSION`].
        BadVersion(u8),
        /// The frame type byte was not one this side understands.
        UnknownType(u8),
        /// The declared payload length exceeds the receiver's byte cap.
        /// Detected from the header alone, before reading the payload.
        TooLarge {
            /// Payload length the header declared.
            declared: u64,
            /// The receiver's cap.
            cap: u64,
        },
        /// The payload did not match its declared structure (truncated
        /// field, row-count/length mismatch, invalid UTF-8 model id,
        /// JSON payload that did not parse).
        Malformed(String),
    }

    impl std::fmt::Display for FrameError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                FrameError::BadMagic(bytes) => {
                    write!(f, "bad frame magic {bytes:02x?} (expected [b5, 53])")
                }
                FrameError::BadVersion(v) => {
                    write!(f, "unsupported protocol version {v} (expected {VERSION})")
                }
                FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
                FrameError::TooLarge { declared, cap } => {
                    write!(f, "declared payload of {declared} bytes exceeds cap {cap}")
                }
                FrameError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            }
        }
    }

    /// A decoded frame header: what follows on the wire is `len` bytes
    /// of `frame_type` payload.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FrameHeader {
        /// One of the `FRAME_*` constants.
        pub frame_type: u8,
        /// Payload byte length.
        pub len: u32,
    }

    /// Encodes a frame header.
    #[must_use]
    pub fn encode_header(frame_type: u8, len: u32) -> [u8; HEADER_LEN] {
        let l = len.to_le_bytes();
        [MAGIC0, MAGIC1, VERSION, frame_type, l[0], l[1], l[2], l[3]]
    }

    /// Decodes and validates a frame header against the receiver's
    /// payload cap. Magic, version, and known-type checks happen here so
    /// a server can reject a stream as garbage from 8 bytes, and the
    /// cap check happens *before* any payload is read so an attacker
    /// declaring a huge length never makes the receiver buffer it.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadMagic`], [`FrameError::BadVersion`],
    /// [`FrameError::UnknownType`], or [`FrameError::TooLarge`].
    pub fn decode_header(bytes: [u8; HEADER_LEN], cap: u64) -> Result<FrameHeader, FrameError> {
        if [bytes[0], bytes[1]] != [MAGIC0, MAGIC1] {
            return Err(FrameError::BadMagic([bytes[0], bytes[1]]));
        }
        if bytes[2] != VERSION {
            return Err(FrameError::BadVersion(bytes[2]));
        }
        let frame_type = bytes[3];
        if !matches!(
            frame_type,
            FRAME_JSON_REQUEST
                | FRAME_SCORE_PAIRS
                | FRAME_ATTACK
                | FRAME_JSON_RESPONSE
                | FRAME_SCORES
                | FRAME_ATTACK_RESULT
        ) {
            return Err(FrameError::UnknownType(frame_type));
        }
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if u64::from(len) > cap {
            return Err(FrameError::TooLarge {
                declared: u64::from(len),
                cap,
            });
        }
        Ok(FrameHeader { frame_type, len })
    }

    /// Little-endian cursor over a payload slice.
    struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn u8(&mut self) -> Result<u8, FrameError> {
            let b = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| FrameError::Malformed("truncated u8 field".into()))?;
            self.pos += 1;
            Ok(b)
        }

        fn u32(&mut self) -> Result<u32, FrameError> {
            let bytes: [u8; 4] = self
                .buf
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| FrameError::Malformed("truncated u32 field".into()))?
                .try_into()
                .expect("4-byte slice");
            self.pos += 4;
            Ok(u32::from_le_bytes(bytes))
        }

        fn u64(&mut self) -> Result<u64, FrameError> {
            let bytes: [u8; 8] = self
                .buf
                .get(self.pos..self.pos + 8)
                .ok_or_else(|| FrameError::Malformed("truncated u64 field".into()))?
                .try_into()
                .expect("8-byte slice");
            self.pos += 8;
            Ok(u64::from_le_bytes(bytes))
        }

        fn i64(&mut self) -> Result<i64, FrameError> {
            self.u64().map(|v| v as i64)
        }

        fn f64(&mut self) -> Result<f64, FrameError> {
            self.u64().map(f64::from_bits)
        }

        fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
            let s = self
                .buf
                .get(self.pos..self.pos + n)
                .ok_or_else(|| FrameError::Malformed(format!("truncated {n}-byte field")))?;
            self.pos += n;
            Ok(s)
        }

        /// A `u32` length-prefixed UTF-8 string field.
        fn str_field(&mut self, what: &str) -> Result<&'a str, FrameError> {
            let len = self.u32()? as usize;
            let raw = self.bytes(len)?;
            std::str::from_utf8(raw)
                .map_err(|_| FrameError::Malformed(format!("{what} is not valid UTF-8")))
        }

        /// The optional model id convention shared by the dense request
        /// payloads: a length of [`NO_MODEL_ID`] means "route to the
        /// default model", anything else prefixes that many id bytes.
        fn opt_model_id(&mut self) -> Result<Option<&'a str>, FrameError> {
            let id_len = self.u32()?;
            if id_len == NO_MODEL_ID {
                return Ok(None);
            }
            let raw = self.bytes(id_len as usize)?;
            std::str::from_utf8(raw)
                .map(Some)
                .map_err(|_| FrameError::Malformed("model id is not valid UTF-8".into()))
        }

        fn finish(self) -> Result<(), FrameError> {
            if self.pos == self.buf.len() {
                Ok(())
            } else {
                Err(FrameError::Malformed(format!(
                    "{} trailing bytes after payload",
                    self.buf.len() - self.pos
                )))
            }
        }
    }

    /// Appends a `u32` length-prefixed byte string.
    fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    /// Appends the optional-model-id field (see [`Reader::opt_model_id`]).
    fn put_opt_model_id(out: &mut Vec<u8>, model_id: Option<&str>) {
        match model_id {
            None => out.extend_from_slice(&NO_MODEL_ID.to_le_bytes()),
            Some(id) => put_bytes(out, id.as_bytes()),
        }
    }

    /// A borrowed view of a dense `ScorePairs` payload: the header fields
    /// decoded, the `f64` row bytes still sitting in the input buffer.
    /// The server's hot path decodes rows straight from the connection
    /// buffer into the kernel batch through this view — no intermediate
    /// `Vec<Vec<f64>>`, no payload copy.
    #[derive(Debug, Clone, Copy)]
    pub struct ScorePairsView<'a> {
        /// Routing id, borrowed from the payload; `None` routes to the
        /// server's default model.
        pub model_id: Option<&'a str>,
        /// Feature rows in the payload.
        pub rows: usize,
        /// Columns per row (must equal the model's feature count).
        pub cols: usize,
        /// `rows * cols` little-endian `f64`s, exactly `rows * cols * 8`
        /// bytes.
        data: &'a [u8],
    }

    impl ScorePairsView<'_> {
        /// Appends the payload's `rows x cols` values to `out` in
        /// row-major order, bit-exactly.
        pub fn extend_rows_into(&self, out: &mut Vec<f64>) {
            out.reserve(self.rows * self.cols);
            for c in self.data.chunks_exact(8) {
                out.push(f64::from_le_bytes(c.try_into().expect("8-byte chunk")));
            }
        }
    }

    /// Decodes a dense `ScorePairs` payload into a borrowed
    /// [`ScorePairsView`] without copying the row bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on any structural mismatch.
    pub fn decode_score_pairs(payload: &[u8]) -> Result<ScorePairsView<'_>, FrameError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let model_id = r.opt_model_id()?;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let need = rows
            .checked_mul(cols)
            .and_then(|cells| cells.checked_mul(8))
            .ok_or_else(|| FrameError::Malformed("row/col counts overflow".into()))?;
        let data = r.bytes(need)?;
        r.finish()?;
        Ok(ScorePairsView {
            model_id,
            rows,
            cols,
            data,
        })
    }

    /// Encodes a complete request frame (header + payload).
    /// `ScorePairs` and `Attack` use their dense layouts; every other
    /// request is a JSON payload in a [`FRAME_JSON_REQUEST`] frame.
    #[must_use]
    pub fn encode_request(req: &Request) -> Vec<u8> {
        match req {
            Request::ScorePairs { features, model_id } => {
                let cols = features.first().map_or(0, Vec::len);
                let id_len = model_id.as_ref().map_or(4, |id| 4 + id.len());
                let mut out =
                    Vec::with_capacity(HEADER_LEN + id_len + 8 + features.len() * cols * 8);
                out.extend_from_slice(&[0u8; HEADER_LEN]);
                put_opt_model_id(&mut out, model_id.as_deref());
                out.extend_from_slice(&(features.len() as u32).to_le_bytes());
                out.extend_from_slice(&(cols as u32).to_le_bytes());
                for row in features {
                    for &v in row {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                seal_frame(out, FRAME_SCORE_PAIRS)
            }
            Request::Attack {
                challenge,
                truth,
                threshold,
                detail,
                model_id,
            } => {
                let mut out =
                    Vec::with_capacity(HEADER_LEN + 32 + challenge.len() + truth.len() + 64);
                out.extend_from_slice(&[0u8; HEADER_LEN]);
                put_opt_model_id(&mut out, model_id.as_deref());
                out.extend_from_slice(&threshold.to_le_bytes());
                out.push(u8::from(*detail));
                put_bytes(&mut out, challenge.as_bytes());
                put_bytes(&mut out, truth.as_bytes());
                seal_frame(out, FRAME_ATTACK)
            }
            other => encode_request_json(other),
        }
    }

    /// Encodes a request as a JSON payload in a [`FRAME_JSON_REQUEST`]
    /// frame even when a dense layout exists — the compatibility framing
    /// pre-0x03 clients send, kept callable for cross-framing tests and
    /// benchmarks.
    #[must_use]
    pub fn encode_request_json(req: &Request) -> Vec<u8> {
        encode_json_frame(
            FRAME_JSON_REQUEST,
            &serde_json::to_string(req).expect("requests always serialize"),
        )
    }

    /// Encodes a complete response frame (header + payload). `Scores`
    /// and `AttackResult` use their dense layouts; every other response
    /// is a JSON payload in a [`FRAME_JSON_RESPONSE`] frame.
    #[must_use]
    pub fn encode_response(resp: &Response) -> Vec<u8> {
        match resp {
            Response::Scores { probs } => {
                let mut out = Vec::with_capacity(HEADER_LEN + 4 + probs.len() * 8);
                out.extend_from_slice(&encode_header(FRAME_SCORES, (4 + probs.len() * 8) as u32));
                out.extend_from_slice(&(probs.len() as u32).to_le_bytes());
                for &p in probs {
                    out.extend_from_slice(&p.to_le_bytes());
                }
                out
            }
            Response::AttackResult { summary, scored } => {
                let mut out = Vec::with_capacity(HEADER_LEN + 128);
                out.extend_from_slice(&[0u8; HEADER_LEN]);
                put_bytes(&mut out, summary.design.as_bytes());
                out.extend_from_slice(&(summary.num_vpins as u64).to_le_bytes());
                out.extend_from_slice(&summary.pairs_scored.to_le_bytes());
                out.extend_from_slice(&summary.threshold.to_le_bytes());
                out.extend_from_slice(&summary.accuracy.to_le_bytes());
                out.extend_from_slice(&summary.mean_loc.to_le_bytes());
                out.extend_from_slice(&summary.max_accuracy.to_le_bytes());
                match scored {
                    None => out.push(0),
                    Some(view) => {
                        out.push(1);
                        put_scored_view(&mut out, view);
                    }
                }
                seal_frame(out, FRAME_ATTACK_RESULT)
            }
            other => encode_response_json(other),
        }
    }

    /// Encodes a response as a JSON payload in a [`FRAME_JSON_RESPONSE`]
    /// frame even when a dense layout exists. The server answers
    /// JSON-framed `Attack` requests through this, mirroring the
    /// client's framing.
    #[must_use]
    pub fn encode_response_json(resp: &Response) -> Vec<u8> {
        encode_json_frame(
            FRAME_JSON_RESPONSE,
            &serde_json::to_string(resp).expect("responses always serialize"),
        )
    }

    /// Fills in the header of a frame built with a zeroed header
    /// placeholder, now that the payload length is known.
    fn seal_frame(mut out: Vec<u8>, frame_type: u8) -> Vec<u8> {
        let len = (out.len() - HEADER_LEN) as u32;
        out[..HEADER_LEN].copy_from_slice(&encode_header(frame_type, len));
        out
    }

    fn encode_json_frame(frame_type: u8, json: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + json.len());
        out.extend_from_slice(&encode_header(frame_type, json.len() as u32));
        out.extend_from_slice(json.as_bytes());
        out
    }

    /// Dense [`ScoredView`] layout: the scalar fields, the histogram,
    /// then each slot (`vpin`, optional `true_prob`, candidate list).
    /// All integers little-endian fixed width, all `f64`s raw bits.
    fn put_scored_view(out: &mut Vec<u8>, view: &ScoredView) {
        out.extend_from_slice(&(view.num_view_vpins as u64).to_le_bytes());
        out.extend_from_slice(&view.pairs_scored.to_le_bytes());
        out.extend_from_slice(&(view.hist.len() as u32).to_le_bytes());
        for &count in &view.hist {
            out.extend_from_slice(&count.to_le_bytes());
        }
        out.extend_from_slice(&(view.slots.len() as u32).to_le_bytes());
        for slot in &view.slots {
            out.extend_from_slice(&slot.vpin.to_le_bytes());
            match slot.true_prob {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            out.extend_from_slice(&(slot.top.len() as u32).to_le_bytes());
            for cand in &slot.top {
                out.extend_from_slice(&cand.p.to_le_bytes());
                out.extend_from_slice(&cand.index.to_le_bytes());
                out.extend_from_slice(&cand.dist.to_le_bytes());
            }
        }
    }

    /// Decodes a `0`/`1` presence byte; anything else is malformed (the
    /// flag doubles as a frame-desync detector).
    fn flag(r: &mut Reader<'_>, what: &str) -> Result<bool, FrameError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(FrameError::Malformed(format!(
                "{what} flag must be 0 or 1, got {other}"
            ))),
        }
    }

    fn read_scored_view(r: &mut Reader<'_>) -> Result<ScoredView, FrameError> {
        let num_view_vpins = r.u64()? as usize;
        let pairs_scored = r.u64()?;
        let hist_len = r.u32()? as usize;
        let mut hist = Vec::with_capacity(hist_len.min(r.buf.len() / 8 + 1));
        for _ in 0..hist_len {
            hist.push(r.u64()?);
        }
        let num_slots = r.u32()? as usize;
        let mut slots = Vec::with_capacity(num_slots.min(r.buf.len() / 9 + 1));
        for _ in 0..num_slots {
            let vpin = r.u32()?;
            let true_prob = flag(r, "true_prob")?.then(|| r.f64()).transpose()?;
            let top_len = r.u32()? as usize;
            let mut top = Vec::with_capacity(top_len.min(r.buf.len() / 20 + 1));
            for _ in 0..top_len {
                top.push(Cand {
                    p: r.f64()?,
                    index: r.u32()?,
                    dist: r.i64()?,
                });
            }
            slots.push(VpinScore {
                vpin,
                true_prob,
                top,
            });
        }
        Ok(ScoredView {
            slots,
            hist,
            num_view_vpins,
            pairs_scored,
        })
    }

    /// Decodes a request payload whose header declared `frame_type`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on any structural mismatch, or
    /// [`FrameError::UnknownType`] for a response-direction type.
    pub fn decode_request(frame_type: u8, payload: &[u8]) -> Result<Request, FrameError> {
        match frame_type {
            FRAME_JSON_REQUEST => serde_json::from_str(
                std::str::from_utf8(payload)
                    .map_err(|_| FrameError::Malformed("request JSON is not UTF-8".into()))?,
            )
            .map_err(|e| FrameError::Malformed(format!("request JSON: {e}"))),
            FRAME_SCORE_PAIRS => {
                let view = decode_score_pairs(payload)?;
                let features = if view.cols == 0 {
                    vec![Vec::new(); view.rows]
                } else {
                    let mut flat = Vec::new();
                    view.extend_rows_into(&mut flat);
                    flat.chunks_exact(view.cols).map(<[f64]>::to_vec).collect()
                };
                Ok(Request::ScorePairs {
                    features,
                    model_id: view.model_id.map(str::to_owned),
                })
            }
            FRAME_ATTACK => {
                let mut r = Reader {
                    buf: payload,
                    pos: 0,
                };
                let model_id = r.opt_model_id()?.map(str::to_owned);
                let threshold = r.f64()?;
                let detail = flag(&mut r, "detail")?;
                let challenge = r.str_field("challenge")?.to_owned();
                let truth = r.str_field("truth")?.to_owned();
                r.finish()?;
                Ok(Request::Attack {
                    challenge,
                    truth,
                    threshold,
                    detail,
                    model_id,
                })
            }
            other => Err(FrameError::UnknownType(other)),
        }
    }

    /// Decodes a response payload whose header declared `frame_type`.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on any structural mismatch, or
    /// [`FrameError::UnknownType`] for a request-direction type.
    pub fn decode_response(frame_type: u8, payload: &[u8]) -> Result<Response, FrameError> {
        match frame_type {
            FRAME_JSON_RESPONSE => serde_json::from_str(
                std::str::from_utf8(payload)
                    .map_err(|_| FrameError::Malformed("response JSON is not UTF-8".into()))?,
            )
            .map_err(|e| FrameError::Malformed(format!("response JSON: {e}"))),
            FRAME_SCORES => {
                let mut r = Reader {
                    buf: payload,
                    pos: 0,
                };
                let count = r.u32()? as usize;
                let raw = r.bytes(count * 8)?;
                let probs = raw
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                r.finish()?;
                Ok(Response::Scores { probs })
            }
            FRAME_ATTACK_RESULT => {
                let mut r = Reader {
                    buf: payload,
                    pos: 0,
                };
                let design = r.str_field("design")?.to_owned();
                let num_vpins = r.u64()? as usize;
                let pairs_scored = r.u64()?;
                let threshold = r.f64()?;
                let accuracy = r.f64()?;
                let mean_loc = r.f64()?;
                let max_accuracy = r.f64()?;
                let scored = flag(&mut r, "scored")?
                    .then(|| read_scored_view(&mut r))
                    .transpose()?;
                r.finish()?;
                Ok(Response::AttackResult {
                    summary: super::AttackSummary {
                        design,
                        num_vpins,
                        pairs_scored,
                        threshold,
                        accuracy,
                        mean_loc,
                        max_accuracy,
                    },
                    scored,
                })
            }
            other => Err(FrameError::UnknownType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_and_are_single_line() {
        let reqs = vec![
            Request::Health,
            Request::Stats,
            Request::ListModels,
            Request::Reload,
            Request::ScorePairs {
                features: vec![vec![1.0, 2.5], vec![0.0, -3.0]],
                model_id: None,
            },
            Request::ScorePairs {
                features: vec![vec![1.0]],
                model_id: Some("retrained".into()),
            },
            Request::Attack {
                challenge: "design sb1\n".into(),
                truth: "0 1\n".into(),
                threshold: 0.5,
                detail: true,
                model_id: Some("incumbent".into()),
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).expect("serializes");
            assert!(!line.contains('\n'), "one request per line: {line}");
            let back: Request = serde_json::from_str(&line).expect("parses");
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Health {
                model: "Imp-11".into(),
                features: 11,
                trees: 10,
                artifact_version: 1,
                model_id: "incumbent".into(),
                checksum: "fnv1a64:00000000000000ab".into(),
                schema_version: 1,
            },
            Response::Stats {
                stats: StatsSnapshot {
                    model_id: "incumbent".into(),
                    model_checksum: "fnv1a64:00000000000000ab".into(),
                    schema_version: 1,
                    reloads: 2,
                    shadow: Some(ShadowReport {
                        shadow_model: "retrained".into(),
                        threshold: 0.5,
                        sampled_requests: 7,
                        compared_pairs: 448,
                        max_abs_dp: 0.25,
                        mean_abs_dp: 0.125,
                        disagreements: 3,
                        shadow_missing: 1,
                    }),
                    requests: 5,
                    errors: 1,
                    io_errors: 2,
                    shed: 3,
                    timeouts: 4,
                    pairs_scored: 1234,
                    event_loops: 2,
                    score_batches: 10,
                    batched_rows: 2048,
                    batched_requests: 6,
                    p50_us: 40,
                    p95_us: 90,
                    p99_us: 99,
                    max_us: 120,
                },
            },
            Response::Models {
                default_model: "incumbent".into(),
                models: vec![ModelInfo {
                    model_id: "incumbent".into(),
                    config: "Imp-11".into(),
                    features: 11,
                    trees: 10,
                    checksum: "fnv1a64:00000000000000ab".into(),
                    schema_version: 1,
                    split_layer: "V8".into(),
                }],
            },
            Response::Reloaded {
                default_model: "retrained".into(),
                models: vec!["incumbent".into(), "retrained".into()],
                reloads: 3,
            },
            Response::Scores {
                probs: vec![0.25, 1.0 / 3.0],
            },
            Response::ShuttingDown,
            Response::Busy { retry_after_ms: 50 },
            Response::Error {
                code: ErrorCode::BadRequest,
                message: "bad batch".into(),
            },
            Response::Error {
                code: ErrorCode::TooLarge,
                message: "request line over the byte cap".into(),
            },
            Response::Error {
                code: ErrorCode::Timeout,
                message: "request read timed out".into(),
            },
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).expect("serializes");
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).expect("parses");
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn error_codes_name_themselves_and_classify_retryability() {
        for (code, name, retryable) in [
            (ErrorCode::BadRequest, "bad_request", false),
            (ErrorCode::TooLarge, "too_large", false),
            (ErrorCode::Timeout, "timeout", false),
            (ErrorCode::Busy, "busy", true),
            (ErrorCode::NotFound, "not_found", false),
        ] {
            assert_eq!(code.as_str(), name);
            assert_eq!(code.to_string(), name);
            assert_eq!(code.retryable(), retryable, "{name}");
            let line = serde_json::to_string(&code).expect("serializes");
            let back: ErrorCode = serde_json::from_str(&line).expect("parses");
            assert_eq!(code, back);
        }
    }

    #[test]
    fn pre_registry_request_lines_still_parse() {
        // Wire compatibility: a client built before per-model routing
        // sends no `model_id` key at all — that must parse as `None`
        // (route to default), not as a bad request.
        let line = r#"{"ScorePairs":{"features":[[1.0,2.0]]}}"#;
        let req: Request = serde_json::from_str(line).expect("parses");
        assert_eq!(
            req,
            Request::ScorePairs {
                features: vec![vec![1.0, 2.0]],
                model_id: None,
            }
        );
        let line = r#"{"Attack":{"challenge":"c","truth":"t","threshold":0.5,"detail":false}}"#;
        let req: Request = serde_json::from_str(line).expect("parses");
        assert_eq!(
            req,
            Request::Attack {
                challenge: "c".into(),
                truth: "t".into(),
                threshold: 0.5,
                detail: false,
                model_id: None,
            }
        );
    }

    fn frame_roundtrip_request(req: &Request) -> Request {
        let frame = binary::encode_request(req);
        let header = binary::decode_header(
            frame[..binary::HEADER_LEN].try_into().expect("header"),
            1 << 20,
        )
        .expect("valid header");
        assert_eq!(header.len as usize, frame.len() - binary::HEADER_LEN);
        binary::decode_request(header.frame_type, &frame[binary::HEADER_LEN..]).expect("decodes")
    }

    fn frame_roundtrip_response(resp: &Response) -> Response {
        let frame = binary::encode_response(resp);
        let header = binary::decode_header(
            frame[..binary::HEADER_LEN].try_into().expect("header"),
            1 << 20,
        )
        .expect("valid header");
        assert_eq!(header.len as usize, frame.len() - binary::HEADER_LEN);
        binary::decode_response(header.frame_type, &frame[binary::HEADER_LEN..]).expect("decodes")
    }

    #[test]
    fn binary_frames_roundtrip_every_request_variant() {
        let reqs = vec![
            Request::Health,
            Request::Stats,
            Request::ListModels,
            Request::Reload,
            Request::ScorePairs {
                features: vec![
                    vec![1.0, 2.5, -0.0],
                    vec![f64::MIN_POSITIVE, 3.0, 1.0 / 3.0],
                ],
                model_id: None,
            },
            Request::ScorePairs {
                features: vec![],
                model_id: Some(String::new()),
            },
            Request::ScorePairs {
                features: vec![vec![(0.1f64).sqrt()]],
                model_id: Some("retrained".into()),
            },
            Request::Attack {
                challenge: "design sb1\n".into(),
                truth: "0 1\n".into(),
                threshold: 0.5,
                detail: true,
                model_id: Some("incumbent".into()),
            },
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(req, frame_roundtrip_request(&req), "{req:?}");
        }
    }

    #[test]
    fn binary_frames_roundtrip_responses_bit_for_bit() {
        let probs: Vec<f64> = (0..300).map(|k| (k as f64 / 299.0).sqrt()).collect();
        let Response::Scores { probs: back } = frame_roundtrip_response(&Response::Scores {
            probs: probs.clone(),
        }) else {
            panic!("wrong variant");
        };
        for (a, b) in probs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for resp in [
            Response::ShuttingDown,
            Response::Busy { retry_after_ms: 50 },
            Response::Error {
                code: ErrorCode::NotFound,
                message: "no such model".into(),
            },
        ] {
            assert_eq!(resp, frame_roundtrip_response(&resp), "{resp:?}");
        }
    }

    fn sample_scored_view() -> ScoredView {
        use sm_attack::attack::{Cand, VpinScore};
        ScoredView {
            slots: vec![
                VpinScore {
                    vpin: 0,
                    true_prob: Some((0.3f64).sqrt()),
                    top: vec![
                        Cand {
                            p: 0.875,
                            index: 3,
                            dist: -1200,
                        },
                        Cand {
                            p: 1.0 / 3.0,
                            index: 1,
                            dist: i64::MAX,
                        },
                    ],
                },
                VpinScore {
                    vpin: 7,
                    true_prob: None,
                    top: vec![],
                },
            ],
            hist: vec![0, 3, u64::MAX, 42],
            num_view_vpins: 9,
            pairs_scored: 1234,
        }
    }

    #[test]
    fn dense_attack_request_roundtrips_on_its_own_frame_type() {
        let req = Request::Attack {
            challenge: "design sb1\nvpin 0 10 20\n".into(),
            truth: "0 1\n".into(),
            threshold: 0.65,
            detail: true,
            model_id: Some("incumbent".into()),
        };
        let frame = binary::encode_request(&req);
        let header =
            binary::decode_header(frame[..binary::HEADER_LEN].try_into().expect("header"), 1 << 20)
                .expect("valid header");
        assert_eq!(
            header.frame_type,
            binary::FRAME_ATTACK,
            "Attack must ride its dense frame, not JSON"
        );
        assert_eq!(req, frame_roundtrip_request(&req));
        // No model id and no detail also roundtrip.
        let req = Request::Attack {
            challenge: String::new(),
            truth: String::new(),
            threshold: f64::MIN_POSITIVE,
            detail: false,
            model_id: None,
        };
        assert_eq!(req, frame_roundtrip_request(&req));
    }

    #[test]
    fn dense_attack_result_roundtrips_scored_view_bit_for_bit() {
        let resp = Response::AttackResult {
            summary: AttackSummary {
                design: "sb1".into(),
                num_vpins: 9,
                pairs_scored: 1234,
                threshold: 0.65,
                accuracy: (0.7f64).sqrt(),
                mean_loc: 3.5,
                max_accuracy: 0.875,
            },
            scored: Some(sample_scored_view()),
        };
        let frame = binary::encode_response(&resp);
        let header =
            binary::decode_header(frame[..binary::HEADER_LEN].try_into().expect("header"), 1 << 20)
                .expect("valid header");
        assert_eq!(header.frame_type, binary::FRAME_ATTACK_RESULT);
        let back = frame_roundtrip_response(&resp);
        // PartialEq on f64 treats -0.0 == 0.0; check the bits explicitly
        // for the fields that travel as raw f64.
        let (Response::AttackResult { summary, scored }, Response::AttackResult { summary: s2, scored: sc2 }) =
            (&resp, &back)
        else {
            panic!("wrong variant");
        };
        assert_eq!(summary.accuracy.to_bits(), s2.accuracy.to_bits());
        let (a, b) = (scored.as_ref().expect("view"), sc2.as_ref().expect("view"));
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.num_view_vpins, b.num_view_vpins);
        assert_eq!(a.slots.len(), b.slots.len());
        for (sa, sb) in a.slots.iter().zip(&b.slots) {
            assert_eq!(sa.vpin, sb.vpin);
            assert_eq!(
                sa.true_prob.map(f64::to_bits),
                sb.true_prob.map(f64::to_bits)
            );
            for (ca, cb) in sa.top.iter().zip(&sb.top) {
                assert_eq!(ca.p.to_bits(), cb.p.to_bits());
                assert_eq!(ca.index, cb.index);
                assert_eq!(ca.dist, cb.dist);
            }
        }
        assert_eq!(resp, back);

        // A summary-only result (detail=false) roundtrips too.
        let lean = Response::AttackResult {
            summary: AttackSummary {
                design: "sb1".into(),
                num_vpins: 9,
                pairs_scored: 1234,
                threshold: 0.65,
                accuracy: 0.5,
                mean_loc: 3.5,
                max_accuracy: 0.875,
            },
            scored: None,
        };
        assert_eq!(lean, frame_roundtrip_response(&lean));
    }

    #[test]
    fn json_forced_framing_mirrors_for_compat_clients() {
        // A pre-0x03 client sends Attack as a JSON frame; both forced
        // encoders must produce JSON frame types that still decode.
        let req = Request::Attack {
            challenge: "c".into(),
            truth: "t".into(),
            threshold: 0.5,
            detail: false,
            model_id: None,
        };
        let frame = binary::encode_request_json(&req);
        let header =
            binary::decode_header(frame[..binary::HEADER_LEN].try_into().expect("header"), 1 << 20)
                .expect("valid header");
        assert_eq!(header.frame_type, binary::FRAME_JSON_REQUEST);
        assert_eq!(
            binary::decode_request(header.frame_type, &frame[binary::HEADER_LEN..])
                .expect("decodes"),
            req
        );
        let resp = Response::AttackResult {
            summary: AttackSummary {
                design: "sb1".into(),
                num_vpins: 9,
                pairs_scored: 12,
                threshold: 0.5,
                accuracy: 0.25,
                mean_loc: 2.0,
                max_accuracy: 0.5,
            },
            scored: Some(sample_scored_view()),
        };
        let frame = binary::encode_response_json(&resp);
        let header =
            binary::decode_header(frame[..binary::HEADER_LEN].try_into().expect("header"), 1 << 20)
                .expect("valid header");
        assert_eq!(header.frame_type, binary::FRAME_JSON_RESPONSE);
        assert_eq!(
            binary::decode_response(header.frame_type, &frame[binary::HEADER_LEN..])
                .expect("decodes"),
            resp
        );
    }

    #[test]
    fn dense_attack_rejects_structural_garbage() {
        use binary::FrameError;
        // A presence flag outside {0,1} is a desync, not a bool.
        let req = Request::Attack {
            challenge: "c".into(),
            truth: "t".into(),
            threshold: 0.5,
            detail: true,
            model_id: None,
        };
        let frame = binary::encode_request(&req);
        let mut payload = frame[binary::HEADER_LEN..].to_vec();
        payload[4 + 8] = 2; // the detail flag, after model-id sentinel + threshold
        assert!(matches!(
            binary::decode_request(binary::FRAME_ATTACK, &payload),
            Err(FrameError::Malformed(_))
        ));
        // Truncated challenge field.
        let mut short = frame[binary::HEADER_LEN..].to_vec();
        short.truncate(short.len() - 1);
        assert!(matches!(
            binary::decode_request(binary::FRAME_ATTACK, &short),
            Err(FrameError::Malformed(_))
        ));
        // Trailing junk after a well-formed result payload.
        let resp = Response::AttackResult {
            summary: AttackSummary {
                design: "sb1".into(),
                num_vpins: 9,
                pairs_scored: 12,
                threshold: 0.5,
                accuracy: 0.25,
                mean_loc: 2.0,
                max_accuracy: 0.5,
            },
            scored: Some(sample_scored_view()),
        };
        let frame = binary::encode_response(&resp);
        let mut payload = frame[binary::HEADER_LEN..].to_vec();
        payload.push(0xEE);
        assert!(matches!(
            binary::decode_response(binary::FRAME_ATTACK_RESULT, &payload),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn score_pairs_view_borrows_rows_without_copying() {
        let req = Request::ScorePairs {
            features: vec![vec![1.5, -2.25], vec![0.0, 1.0 / 3.0]],
            model_id: Some("m".into()),
        };
        let frame = binary::encode_request(&req);
        let view =
            binary::decode_score_pairs(&frame[binary::HEADER_LEN..]).expect("view decodes");
        assert_eq!(view.model_id, Some("m"));
        assert_eq!((view.rows, view.cols), (2, 2));
        let mut flat = Vec::new();
        view.extend_rows_into(&mut flat);
        let expect = [1.5f64, -2.25, 0.0, 1.0 / 3.0];
        assert_eq!(flat.len(), 4);
        for (a, b) in flat.iter().zip(expect.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn binary_header_rejects_garbage_and_oversized_declarations() {
        use binary::FrameError;
        let ok = binary::encode_header(binary::FRAME_SCORE_PAIRS, 16);
        assert!(binary::decode_header(ok, 16).is_ok());

        let mut bad_magic = ok;
        bad_magic[0] = b'{';
        assert!(matches!(
            binary::decode_header(bad_magic, 16),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = ok;
        bad_version[2] = 3;
        assert_eq!(
            binary::decode_header(bad_version, 16),
            Err(FrameError::BadVersion(3))
        );

        let mut bad_type = ok;
        bad_type[3] = 0x7f;
        assert_eq!(
            binary::decode_header(bad_type, 16),
            Err(FrameError::UnknownType(0x7f))
        );

        // The cap is enforced from the header alone: a declared length
        // one past the cap is rejected before any payload exists.
        assert_eq!(
            binary::decode_header(ok, 15),
            Err(FrameError::TooLarge {
                declared: 16,
                cap: 15
            })
        );
        assert_eq!(
            binary::decode_header(
                binary::encode_header(binary::FRAME_SCORE_PAIRS, u32::MAX),
                15
            ),
            Err(FrameError::TooLarge {
                declared: u64::from(u32::MAX),
                cap: 15
            })
        );
    }

    #[test]
    fn binary_payload_rejects_structural_mismatches() {
        use binary::FrameError;
        // Truncated mid-row: declared 2×2 rows but only 3 f64s present.
        let mut payload = Vec::new();
        payload.extend_from_slice(&binary::NO_MODEL_ID.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        for v in [1.0f64, 2.0, 3.0] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(
            binary::decode_request(binary::FRAME_SCORE_PAIRS, &payload),
            Err(FrameError::Malformed(_))
        ));

        // Trailing junk after a well-formed payload is rejected too.
        let mut frame = binary::encode_request(&Request::ScorePairs {
            features: vec![vec![1.0]],
            model_id: None,
        });
        frame.push(0xEE);
        assert!(matches!(
            binary::decode_request(binary::FRAME_SCORE_PAIRS, &frame[binary::HEADER_LEN..]),
            Err(FrameError::Malformed(_))
        ));

        // A model id that is not UTF-8.
        let mut payload = Vec::new();
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            binary::decode_request(binary::FRAME_SCORE_PAIRS, &payload),
            Err(FrameError::Malformed(_))
        ));

        // Response-direction frame type on the request decoder.
        assert_eq!(
            binary::decode_request(binary::FRAME_SCORES, &[]),
            Err(FrameError::UnknownType(binary::FRAME_SCORES))
        );
    }

    #[test]
    fn binary_magic_cannot_start_an_ndjson_line() {
        // Wire auto-detection hinges on this: 0xB5 is a UTF-8
        // continuation byte, so no valid JSON text can begin with it.
        assert!(std::str::from_utf8(&[binary::MAGIC0]).is_err());
        assert!(std::str::from_utf8(&[binary::MAGIC0, b'{', b'}']).is_err());
    }

    #[test]
    fn probabilities_survive_json_bit_for_bit() {
        // The transport must not perturb scores: shortest-roundtrip floats.
        let probs: Vec<f64> = (0..64).map(|k| (k as f64 / 63.0).sqrt()).collect();
        let line = serde_json::to_string(&Response::Scores {
            probs: probs.clone(),
        })
        .expect("serializes");
        let Response::Scores { probs: back } = serde_json::from_str(&line).expect("parses") else {
            panic!("wrong variant");
        };
        assert_eq!(probs.len(), back.len());
        for (a, b) in probs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
