//! The newline-delimited JSON protocol spoken by `splitmfg serve`.
//!
//! Each request is one JSON document on one line; the server answers with
//! exactly one JSON response line. Requests and responses use serde's
//! externally-tagged enum encoding: a unit variant is its name in quotes
//! (`"Health"`), a data variant wraps its payload
//! (`{"ScorePairs":{"features":[[...]]}}`). A connection may issue any
//! number of requests; `"Shutdown"` asks the whole server to stop
//! gracefully after draining queued connections.

use serde::{Deserialize, Serialize};
use sm_attack::ScoredView;

/// A client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness/identity probe; always answered.
    Health,
    /// Snapshot of the server's running counters.
    Stats,
    /// List every model in the serving catalog and the default id.
    ListModels,
    /// Rescan the registry directory and atomically swap the serving
    /// catalog. Only meaningful on a registry-backed server (`serve
    /// --registry`); a single-model server answers `bad_request`. On
    /// failure the old catalog keeps serving untouched.
    Reload,
    /// Score a batch of pre-computed feature vectors (one per candidate
    /// v-pin pair, in the model's feature order).
    ScorePairs {
        /// `features[k]` is pair `k`'s feature vector; every row must have
        /// exactly the model's feature count.
        features: Vec<Vec<f64>>,
        /// Which catalog entry scores the batch; absent routes to the
        /// server's default model. Unknown ids answer `not_found`.
        model_id: Option<String>,
    },
    /// Run the full attack on a challenge: parse, score every candidate
    /// pair, and report LoC/accuracy numbers.
    Attack {
        /// `.challenge` file contents (the attacker-visible FEOL view).
        challenge: String,
        /// `.truth` file contents (for scoring the attack's accuracy).
        truth: String,
        /// Probability threshold for the summary's accuracy/LoC numbers.
        threshold: f64,
        /// When true, the response carries the complete [`ScoredView`]
        /// (bit-exact, for verification); when false, only the summary.
        detail: bool,
        /// Which catalog entry runs the attack; absent routes to the
        /// server's default model. Unknown ids answer `not_found`.
        model_id: Option<String>,
    },
    /// Gracefully stop the server.
    Shutdown,
}

/// Accuracy/LoC summary of one remote attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSummary {
    /// Design name from the challenge.
    pub design: String,
    /// Number of v-pins in the challenge.
    pub num_vpins: usize,
    /// Candidate pairs evaluated.
    pub pairs_scored: u64,
    /// Threshold the summary numbers were computed at.
    pub threshold: f64,
    /// Fraction of v-pins whose true match clears the threshold.
    pub accuracy: f64,
    /// Mean list-of-candidates size at the threshold.
    pub mean_loc: f64,
    /// Accuracy ceiling over all thresholds.
    pub max_accuracy: f64,
}

/// Machine-readable classification of a [`Response::Error`], so clients
/// can tell retryable congestion from fatal misuse without parsing the
/// message text. On the wire a code is serde's unit-variant encoding
/// (`"BadRequest"`, `"TooLarge"`, `"Timeout"`); [`ErrorCode::as_str`]
/// gives the conventional snake_case name for logs and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line did not parse, or its payload was semantically
    /// invalid (wrong feature-row width, malformed challenge). Retrying
    /// the same bytes will fail the same way.
    BadRequest,
    /// The request line exceeded the server's `max_request_bytes` cap.
    /// The server closes the connection after this reply (the rest of
    /// the oversized line is unread). Not retryable as-is.
    TooLarge,
    /// The request stalled past the server's mid-request read deadline
    /// (slow-loris defence). The server closes the connection after
    /// this reply.
    Timeout,
    /// Reserved for [`Response::Busy`]'s code in logs; the server sheds
    /// load with the dedicated `Busy` variant, which carries a retry
    /// hint. Retryable after backing off.
    Busy,
    /// The request named a `model_id` that is not in the serving
    /// catalog. Not retryable: the same id keeps failing until a reload
    /// publishes it (use `ListModels` to see what is served).
    NotFound,
}

impl ErrorCode {
    /// The conventional snake_case name (`bad_request`, `too_large`,
    /// `timeout`, `busy`, `not_found`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Busy => "busy",
            ErrorCode::NotFound => "not_found",
        }
    }

    /// Whether a client may reasonably retry the same request. Only
    /// congestion (`busy`) is retryable; the other codes indicate the
    /// request itself (or its delivery) was defective.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Busy)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Exact divergence report from A/B shadow scoring: a sampled fraction
/// of `ScorePairs` requests is re-scored against a second catalog entry
/// and compared probability-by-probability. All statistics are exact
/// over the compared pairs (no sketching), so two identical models must
/// report `max_abs_dp == 0.0` bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Catalog id of the shadow model.
    pub shadow_model: String,
    /// Decision threshold the disagreement count is computed at.
    pub threshold: f64,
    /// `ScorePairs` requests selected for shadow scoring so far.
    pub sampled_requests: u64,
    /// Individual pair probabilities compared so far.
    pub compared_pairs: u64,
    /// Largest `|p_primary - p_shadow|` observed.
    pub max_abs_dp: f64,
    /// Mean `|p_primary - p_shadow|` over all compared pairs (0 until
    /// data exists).
    pub mean_abs_dp: f64,
    /// Pairs where primary and shadow fall on opposite sides of the
    /// decision threshold.
    pub disagreements: u64,
    /// Sampled requests skipped because the shadow id vanished from the
    /// catalog (a reload removed it). The primary answer is unaffected.
    pub shadow_missing: u64,
}

/// Running server counters, as returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Catalog id of the current default model.
    pub model_id: String,
    /// Artifact checksum of the current default model.
    pub model_checksum: String,
    /// Artifact format version of the current default model.
    pub schema_version: u32,
    /// Successful catalog reloads since startup.
    pub reloads: u64,
    /// Shadow-scoring divergence report, when a shadow model is
    /// configured.
    pub shadow: Option<ShadowReport>,
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Connections that ended in a socket-level failure: a read error,
    /// a response write that could not complete, or a peer that
    /// vanished mid-request-line (torn frame).
    pub io_errors: u64,
    /// Connections shed with [`Response::Busy`] because the worker pool
    /// and its queue were both full.
    pub shed: u64,
    /// Connections closed for exceeding the mid-request read deadline
    /// (a [`Response::Error`] with [`ErrorCode::Timeout`] is sent
    /// first, best-effort). Idle connections closed by the idle
    /// deadline are a normal lifecycle event and are not counted here.
    pub timeouts: u64,
    /// Total candidate pairs scored across `ScorePairs` and `Attack`.
    pub pairs_scored: u64,
    /// Median request latency in microseconds (0 until data exists).
    pub p50_us: u64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
    /// Worst observed request latency in microseconds.
    pub max_us: u64,
}

/// One catalog entry as reported by [`Request::ListModels`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Routing key clients put in `model_id` fields.
    pub model_id: String,
    /// Configuration name of the model (e.g. `Imp-11`).
    pub config: String,
    /// Model input feature count.
    pub features: usize,
    /// Ensemble size.
    pub trees: usize,
    /// Artifact checksum the entry was loaded against.
    pub checksum: String,
    /// Artifact format version of the loaded file.
    pub schema_version: u32,
    /// Split layer recorded in the model's train metadata.
    pub split_layer: String,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Health`]. Identity fields describe the
    /// current *default* model (use [`Request::ListModels`] for the
    /// whole catalog).
    Health {
        /// Configuration name of the served model (e.g. `Imp-11`).
        model: String,
        /// Model input feature count — `ScorePairs` rows must match.
        features: usize,
        /// Ensemble size of the served model.
        trees: usize,
        /// Artifact format version the server was built against.
        artifact_version: u32,
        /// Catalog id of the default model.
        model_id: String,
        /// Artifact checksum of the default model.
        checksum: String,
        /// Artifact format version of the default model's loaded file.
        schema_version: u32,
    },
    /// Answer to [`Request::ListModels`].
    Models {
        /// The id requests without a `model_id` route to.
        default_model: String,
        /// Every servable model, sorted by id.
        models: Vec<ModelInfo>,
    },
    /// Answer to a successful [`Request::Reload`]: the catalog now
    /// serving.
    Reloaded {
        /// Default model id after the swap.
        default_model: String,
        /// Ids now servable, sorted.
        models: Vec<String>,
        /// Successful reloads since startup, including this one.
        reloads: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The counters at the time the request was handled.
        stats: StatsSnapshot,
    },
    /// Answer to [`Request::ScorePairs`].
    Scores {
        /// `probs[k]` is the ensemble probability for input row `k`,
        /// bit-identical to an in-process `Bagging::proba` call.
        probs: Vec<f64>,
    },
    /// Answer to [`Request::Attack`].
    AttackResult {
        /// Accuracy/LoC summary at the requested threshold.
        summary: AttackSummary,
        /// Complete scoring result when `detail` was requested.
        scored: Option<ScoredView>,
    },
    /// Answer to [`Request::Shutdown`]; the server stops accepting new
    /// connections after sending this.
    ShuttingDown,
    /// The server is saturated (worker pool and connection queue full)
    /// and shed this connection instead of queueing it. The connection
    /// is closed after this reply; reconnect after roughly
    /// `retry_after_ms`.
    Busy {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The request could not be served. Whether the connection stays
    /// usable depends on the code: `bad_request` leaves it open,
    /// `too_large` and `timeout` close it (the request's remaining
    /// bytes cannot be safely resynchronized).
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable description of what was wrong.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_and_are_single_line() {
        let reqs = vec![
            Request::Health,
            Request::Stats,
            Request::ListModels,
            Request::Reload,
            Request::ScorePairs {
                features: vec![vec![1.0, 2.5], vec![0.0, -3.0]],
                model_id: None,
            },
            Request::ScorePairs {
                features: vec![vec![1.0]],
                model_id: Some("retrained".into()),
            },
            Request::Attack {
                challenge: "design sb1\n".into(),
                truth: "0 1\n".into(),
                threshold: 0.5,
                detail: true,
                model_id: Some("incumbent".into()),
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).expect("serializes");
            assert!(!line.contains('\n'), "one request per line: {line}");
            let back: Request = serde_json::from_str(&line).expect("parses");
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Health {
                model: "Imp-11".into(),
                features: 11,
                trees: 10,
                artifact_version: 1,
                model_id: "incumbent".into(),
                checksum: "fnv1a64:00000000000000ab".into(),
                schema_version: 1,
            },
            Response::Stats {
                stats: StatsSnapshot {
                    model_id: "incumbent".into(),
                    model_checksum: "fnv1a64:00000000000000ab".into(),
                    schema_version: 1,
                    reloads: 2,
                    shadow: Some(ShadowReport {
                        shadow_model: "retrained".into(),
                        threshold: 0.5,
                        sampled_requests: 7,
                        compared_pairs: 448,
                        max_abs_dp: 0.25,
                        mean_abs_dp: 0.125,
                        disagreements: 3,
                        shadow_missing: 1,
                    }),
                    requests: 5,
                    errors: 1,
                    io_errors: 2,
                    shed: 3,
                    timeouts: 4,
                    pairs_scored: 1234,
                    p50_us: 40,
                    p95_us: 90,
                    p99_us: 99,
                    max_us: 120,
                },
            },
            Response::Models {
                default_model: "incumbent".into(),
                models: vec![ModelInfo {
                    model_id: "incumbent".into(),
                    config: "Imp-11".into(),
                    features: 11,
                    trees: 10,
                    checksum: "fnv1a64:00000000000000ab".into(),
                    schema_version: 1,
                    split_layer: "V8".into(),
                }],
            },
            Response::Reloaded {
                default_model: "retrained".into(),
                models: vec!["incumbent".into(), "retrained".into()],
                reloads: 3,
            },
            Response::Scores {
                probs: vec![0.25, 1.0 / 3.0],
            },
            Response::ShuttingDown,
            Response::Busy { retry_after_ms: 50 },
            Response::Error {
                code: ErrorCode::BadRequest,
                message: "bad batch".into(),
            },
            Response::Error {
                code: ErrorCode::TooLarge,
                message: "request line over the byte cap".into(),
            },
            Response::Error {
                code: ErrorCode::Timeout,
                message: "request read timed out".into(),
            },
        ];
        for resp in resps {
            let line = serde_json::to_string(&resp).expect("serializes");
            assert!(!line.contains('\n'));
            let back: Response = serde_json::from_str(&line).expect("parses");
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn error_codes_name_themselves_and_classify_retryability() {
        for (code, name, retryable) in [
            (ErrorCode::BadRequest, "bad_request", false),
            (ErrorCode::TooLarge, "too_large", false),
            (ErrorCode::Timeout, "timeout", false),
            (ErrorCode::Busy, "busy", true),
            (ErrorCode::NotFound, "not_found", false),
        ] {
            assert_eq!(code.as_str(), name);
            assert_eq!(code.to_string(), name);
            assert_eq!(code.retryable(), retryable, "{name}");
            let line = serde_json::to_string(&code).expect("serializes");
            let back: ErrorCode = serde_json::from_str(&line).expect("parses");
            assert_eq!(code, back);
        }
    }

    #[test]
    fn pre_registry_request_lines_still_parse() {
        // Wire compatibility: a client built before per-model routing
        // sends no `model_id` key at all — that must parse as `None`
        // (route to default), not as a bad request.
        let line = r#"{"ScorePairs":{"features":[[1.0,2.0]]}}"#;
        let req: Request = serde_json::from_str(line).expect("parses");
        assert_eq!(
            req,
            Request::ScorePairs {
                features: vec![vec![1.0, 2.0]],
                model_id: None,
            }
        );
        let line = r#"{"Attack":{"challenge":"c","truth":"t","threshold":0.5,"detail":false}}"#;
        let req: Request = serde_json::from_str(line).expect("parses");
        assert_eq!(
            req,
            Request::Attack {
                challenge: "c".into(),
                truth: "t".into(),
                threshold: 0.5,
                detail: false,
                model_id: None,
            }
        );
    }

    #[test]
    fn probabilities_survive_json_bit_for_bit() {
        // The transport must not perturb scores: shortest-roundtrip floats.
        let probs: Vec<f64> = (0..64).map(|k| (k as f64 / 63.0).sqrt()).collect();
        let line = serde_json::to_string(&Response::Scores {
            probs: probs.clone(),
        })
        .expect("serializes");
        let Response::Scores { probs: back } = serde_json::from_str(&line).expect("parses") else {
            panic!("wrong variant");
        };
        assert_eq!(probs.len(), back.len());
        for (a, b) in probs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
