//! Versioned on-disk model registry and the in-memory catalog it loads
//! into.
//!
//! A registry is a directory of [`ModelArtifact`](crate::ModelArtifact)
//! files plus one checksummed `index` file naming them:
//!
//! ```text
//! registry/
//!   index            <- two-line header + payload, FNV-1a-64 checksummed
//!   incumbent.model  <- ordinary model artifacts (themselves checksummed)
//!   retrained.model
//! ```
//!
//! The `index` file reuses the artifact discipline exactly — line 1 is a
//! header (`{"magic":"SPLITMFG-REGISTRY","version":1,"checksum":...}`),
//! line 2 the payload: the default model id plus one [`IndexEntry`] per
//! model (`model_id → artifact path, artifact checksum, schema version,
//! train metadata`). [`RegistryIndex::load`] validates magic, version and
//! checksum with typed [`RegistryError`]s; [`publish`] writes an artifact
//! plus the updated index crash-safely (tmp + fsync + rename, both
//! files).
//!
//! [`Catalog::load`] turns a registry into the in-memory serving set: it
//! re-hashes every artifact file against the index's recorded checksum,
//! decodes it, and lowers each ensemble into a
//! [`CompiledEnsemble`](sm_ml::CompiledEnsemble) once at load time
//! (compilation is load-time lowering — the wire format is untouched).
//! The server holds the whole catalog behind one atomically-swapped
//! `Arc`, so a `Reload` replaces every model in one pointer store while
//! in-flight requests keep the `Arc` they started with.

use std::collections::HashSet;
use std::path::{Component, Path};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use sm_attack::TrainedAttack;
use sm_ml::CompiledEnsemble;

use crate::artifact::{fnv1a64, write_atomic, ArtifactError, ModelArtifact, TrainMeta};

/// First token of every registry index header.
pub const REGISTRY_MAGIC: &str = "SPLITMFG-REGISTRY";

/// Current index format version. Bump policy: see `DESIGN.md` — any
/// change to the [`IndexEntry`] shape or the checksum convention requires
/// a bump; readers reject other versions. Artifact *payload* changes bump
/// [`crate::ARTIFACT_VERSION`] instead, which every entry records as its
/// `schema_version`.
pub const REGISTRY_VERSION: u32 = 1;

/// The model id a single-model (non-registry) server publishes itself
/// under, so routing and reporting work identically in both modes.
pub const SINGLE_MODEL_ID: &str = "default";

/// File name of the index inside a registry directory.
pub const INDEX_FILE: &str = "index";

/// Typed registry failure: every way a registry directory, its index, or
/// one of its artifacts can be unusable maps to its own variant — a
/// corrupt registry is always a typed error, never a panic and never a
/// silently half-loaded catalog.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure reading or writing the registry.
    Io(std::io::Error),
    /// The index file is structurally broken (not two lines, header not
    /// JSON, payload not JSON of the expected shape).
    Malformed(String),
    /// The index header's magic string is wrong — not a registry index.
    BadMagic {
        /// What the header contained instead of [`REGISTRY_MAGIC`].
        found: String,
    },
    /// The index was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The single version this build supports ([`REGISTRY_VERSION`]).
        supported: u32,
    },
    /// The index payload does not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: String,
        /// Checksum of the payload actually present.
        found: String,
    },
    /// A model id is empty, too long, or contains characters outside
    /// `[A-Za-z0-9._-]` (ids become file names; anything fancier is a
    /// path-traversal lever).
    BadModelId(String),
    /// The same model id appears twice in the index.
    DuplicateModel(String),
    /// A referenced model id (default, shadow, or an entry's artifact
    /// path target) does not exist.
    UnknownModel(String),
    /// The index lists no models at all.
    Empty,
    /// An entry's artifact path escapes the registry directory.
    BadPath {
        /// The offending entry.
        model_id: String,
        /// The path as recorded in the index.
        path: String,
    },
    /// An entry's artifact file does not hash to the checksum recorded in
    /// the index (the artifact was overwritten or corrupted after
    /// publication).
    ArtifactChecksum {
        /// The offending entry.
        model_id: String,
        /// Checksum recorded in the index.
        expected: String,
        /// Checksum of the file actually on disk.
        found: String,
    },
    /// An entry's recorded schema version does not match this build.
    UnsupportedSchema {
        /// The offending entry.
        model_id: String,
        /// Schema version recorded in the index.
        found: u32,
        /// The version this build serves ([`crate::ARTIFACT_VERSION`]).
        supported: u32,
    },
    /// An entry's artifact failed its own (artifact-level) validation.
    Artifact {
        /// The offending entry.
        model_id: String,
        /// The underlying artifact failure.
        error: ArtifactError,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o: {e}"),
            RegistryError::Malformed(m) => write!(f, "malformed registry index: {m}"),
            RegistryError::BadMagic { found } => {
                write!(f, "not a registry index (magic '{found}')")
            }
            RegistryError::UnsupportedVersion { found, supported } => write!(
                f,
                "registry index version {found} unsupported (this build reads {supported})"
            ),
            RegistryError::ChecksumMismatch { expected, found } => write!(
                f,
                "registry index checksum mismatch: header says {expected}, payload hashes to {found}"
            ),
            RegistryError::BadModelId(id) => write!(
                f,
                "bad model id '{id}' (need 1-64 chars of [A-Za-z0-9._-])"
            ),
            RegistryError::DuplicateModel(id) => {
                write!(f, "model id '{id}' appears twice in the index")
            }
            RegistryError::UnknownModel(id) => write!(f, "model '{id}' not found in the registry"),
            RegistryError::Empty => write!(f, "registry index lists no models"),
            RegistryError::BadPath { model_id, path } => write!(
                f,
                "model '{model_id}' has artifact path '{path}' escaping the registry directory"
            ),
            RegistryError::ArtifactChecksum {
                model_id,
                expected,
                found,
            } => write!(
                f,
                "model '{model_id}' artifact checksum mismatch: index says {expected}, file hashes to {found}"
            ),
            RegistryError::UnsupportedSchema {
                model_id,
                found,
                supported,
            } => write!(
                f,
                "model '{model_id}' has schema version {found} (this build serves {supported})"
            ),
            RegistryError::Artifact { model_id, error } => {
                write!(f, "model '{model_id}': {error}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Checks the model-id contract: 1–64 chars of `[A-Za-z0-9._-]`, and not
/// a dotfile-ish name (`.`/`..`). Ids become artifact file names, so the
/// charset is the path-traversal defence.
///
/// # Errors
///
/// Returns [`RegistryError::BadModelId`] naming the offender.
pub fn validate_model_id(id: &str) -> Result<(), RegistryError> {
    let ok_len = !id.is_empty() && id.len() <= 64;
    let ok_chars = id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if ok_len && ok_chars && id != "." && id != ".." {
        Ok(())
    } else {
        Err(RegistryError::BadModelId(id.to_owned()))
    }
}

/// One model's row in the registry index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Routing key: the id clients put in `model_id` request fields.
    pub model_id: String,
    /// Artifact file path relative to the registry directory.
    pub path: String,
    /// FNV-1a-64 checksum of the artifact file's exact bytes (both
    /// lines), re-verified on every catalog load.
    pub checksum: String,
    /// Artifact format version the entry was published under
    /// ([`crate::ARTIFACT_VERSION`] at publish time).
    pub schema_version: u32,
    /// Training provenance copied out of the artifact for listing
    /// without decoding the model.
    pub meta: TrainMeta,
}

/// The checksummed payload of a registry `index` file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryIndex {
    /// The id requests without a `model_id` route to.
    pub default_model: String,
    /// Every published model, in publication order.
    pub entries: Vec<IndexEntry>,
}

#[derive(Debug, Serialize, Deserialize)]
struct IndexHeader {
    magic: String,
    version: u32,
    checksum: String,
}

impl RegistryIndex {
    /// Structural validation shared by decode and publish: ids are legal
    /// and unique, paths stay inside the registry, the default exists,
    /// and the index is non-empty.
    fn validate(&self) -> Result<(), RegistryError> {
        if self.entries.is_empty() {
            return Err(RegistryError::Empty);
        }
        let mut seen = HashSet::new();
        for entry in &self.entries {
            validate_model_id(&entry.model_id)?;
            if !seen.insert(entry.model_id.as_str()) {
                return Err(RegistryError::DuplicateModel(entry.model_id.clone()));
            }
            let path = Path::new(&entry.path);
            let escapes = path.is_absolute()
                || path
                    .components()
                    .any(|c| !matches!(c, Component::Normal(_)));
            if escapes {
                return Err(RegistryError::BadPath {
                    model_id: entry.model_id.clone(),
                    path: entry.path.clone(),
                });
            }
        }
        if !self
            .entries
            .iter()
            .any(|e| e.model_id == self.default_model)
        {
            return Err(RegistryError::UnknownModel(self.default_model.clone()));
        }
        Ok(())
    }

    /// The entry for `model_id`, if published.
    #[must_use]
    pub fn get(&self, model_id: &str) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.model_id == model_id)
    }

    /// Serializes to the two-line checksummed on-disk format.
    pub fn encode(&self) -> String {
        let payload = serde_json::to_string(self).expect("index serialization is infallible");
        let header = IndexHeader {
            magic: REGISTRY_MAGIC.to_owned(),
            version: REGISTRY_VERSION,
            checksum: fnv1a64(payload.as_bytes()),
        };
        let header = serde_json::to_string(&header).expect("header serialization is infallible");
        format!("{header}\n{payload}\n")
    }

    /// Parses and fully validates the two-line index format.
    ///
    /// # Errors
    ///
    /// The first failing check as a typed [`RegistryError`]: malformed
    /// structure, bad magic, unsupported version, checksum mismatch,
    /// undecodable payload, or an incoherent entry set.
    pub fn decode(text: &str) -> Result<Self, RegistryError> {
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| RegistryError::Malformed("empty file".into()))?;
        let payload_line = lines
            .next()
            .ok_or_else(|| RegistryError::Malformed("missing payload line".into()))?;
        if lines.next().is_some_and(|l| !l.trim().is_empty()) {
            return Err(RegistryError::Malformed(
                "unexpected content after payload line".into(),
            ));
        }
        let header: IndexHeader = serde_json::from_str(header_line)
            .map_err(|e| RegistryError::Malformed(format!("header does not parse: {e}")))?;
        if header.magic != REGISTRY_MAGIC {
            return Err(RegistryError::BadMagic {
                found: header.magic,
            });
        }
        if header.version != REGISTRY_VERSION {
            return Err(RegistryError::UnsupportedVersion {
                found: header.version,
                supported: REGISTRY_VERSION,
            });
        }
        let found = fnv1a64(payload_line.as_bytes());
        if header.checksum != found {
            return Err(RegistryError::ChecksumMismatch {
                expected: header.checksum,
                found,
            });
        }
        let index: RegistryIndex = serde_json::from_str(payload_line)
            .map_err(|e| RegistryError::Malformed(format!("payload does not decode: {e}")))?;
        index.validate()?;
        Ok(index)
    }

    /// Reads and validates `dir`'s index file.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] on filesystem failure (including a missing
    /// index), otherwise the typed validation errors of
    /// [`RegistryIndex::decode`].
    pub fn load(dir: &Path) -> Result<Self, RegistryError> {
        let text = std::fs::read_to_string(dir.join(INDEX_FILE))?;
        Self::decode(&text)
    }

    /// Writes the index into `dir` crash-durably (tmp + fsync + rename +
    /// parent-dir fsync; fail-point site family `registry_index`).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] on filesystem failure; re-validates first so
    /// an incoherent index can never be published.
    pub fn save(&self, dir: &Path) -> Result<(), RegistryError> {
        self.validate()?;
        write_atomic(
            &dir.join(INDEX_FILE),
            self.encode().as_bytes(),
            "registry_index",
        )
        .map_err(|e| match e {
            ArtifactError::Io(io) => RegistryError::Io(io),
            other => RegistryError::Malformed(other.to_string()),
        })
    }
}

/// Publishes `artifact` into the registry at `dir` under `model_id`:
/// writes `<model_id>.model` (atomic), then installs/replaces the id's
/// index entry (atomic). A new registry's first published model becomes
/// the default; `make_default` promotes on republish. Readers racing a
/// publish see either the old index or the new one, never a torn state.
///
/// # Errors
///
/// [`RegistryError::BadModelId`] for an illegal id,
/// [`RegistryError::Io`]/[`RegistryError::Artifact`] for filesystem or
/// artifact-save failures, plus index validation errors for a
/// pre-existing corrupt index.
pub fn publish(
    dir: &Path,
    model_id: &str,
    artifact: &ModelArtifact,
    make_default: bool,
) -> Result<IndexEntry, RegistryError> {
    validate_model_id(model_id)?;
    std::fs::create_dir_all(dir)?;
    let encoded = artifact.encode();
    let file_name = format!("{model_id}.model");
    artifact
        .save(&dir.join(&file_name))
        .map_err(|error| match error {
            ArtifactError::Io(io) => RegistryError::Io(io),
            other => RegistryError::Artifact {
                model_id: model_id.to_owned(),
                error: other,
            },
        })?;
    // The window between publish's two atomic writes: a crash here leaves
    // the artifact on disk but not yet in the index — readers never see
    // it, and a re-publish simply overwrites it.
    sm_attack::failpoint::hit("registry.after_artifact");
    let entry = IndexEntry {
        model_id: model_id.to_owned(),
        path: file_name,
        checksum: fnv1a64(encoded.as_bytes()),
        schema_version: crate::ARTIFACT_VERSION,
        meta: artifact.payload().meta.clone(),
    };
    let mut index = match RegistryIndex::load(dir) {
        Ok(index) => index,
        // A fresh directory has no index yet; anything else is real.
        Err(RegistryError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => RegistryIndex {
            default_model: model_id.to_owned(),
            entries: Vec::new(),
        },
        Err(e) => return Err(e),
    };
    match index.entries.iter_mut().find(|e| e.model_id == model_id) {
        Some(slot) => *slot = entry.clone(),
        None => index.entries.push(entry.clone()),
    }
    if make_default {
        index.default_model = model_id.to_owned();
    }
    index.save(dir)?;
    // The index is durable; anything it no longer references is garbage.
    gc_unreferenced(dir, &index);
    Ok(entry)
}

/// Best-effort sweep of `*.model` files in `dir` that no index entry
/// references — the leftovers of a publish that crashed between its two
/// atomic writes (artifact on disk, index never updated; see the
/// `registry.after_artifact` fail point). Runs after every successful
/// [`publish`] index save, so orphans survive at most until the next
/// publish. Only files ending in `.model` are candidates; the index and
/// any unrelated files are never touched. Deletion failures are ignored
/// — the next publish simply retries.
fn gc_unreferenced(dir: &Path, index: &RegistryIndex) {
    let live: std::collections::HashSet<&str> =
        index.entries.iter().map(|e| e.path.as_str()).collect();
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    for item in listing.flatten() {
        let name = item.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if name.ends_with(".model") && !live.contains(name) {
            let _ = std::fs::remove_file(item.path());
        }
    }
}

/// One model's verdict from [`verify`]: `Ok(checksum)` when the artifact
/// file hashes to the index's recorded checksum, decodes, and matches
/// this build's schema version; `Err(reason)` otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedModel {
    /// The index entry's model id.
    pub model_id: String,
    /// Per-model verdict.
    pub status: Result<String, String>,
}

/// Offline integrity sweep of the registry at `dir` (the `models
/// --verify` command): validates the index (magic, version, checksum,
/// coherence), then checks **every** artifact — file readable, bytes hash
/// to the index's recorded checksum, payload decodes, schema version
/// supported — reporting per model instead of failing at the first
/// corruption the way the fail-fast [`Catalog::load`] does.
///
/// # Errors
///
/// A typed [`RegistryError`] when the index itself is unreadable or
/// corrupt (there is nothing meaningful to sweep). Per-artifact problems
/// are *not* errors — they come back as `Err` statuses in the report.
pub fn verify(dir: &Path) -> Result<Vec<VerifiedModel>, RegistryError> {
    let index = RegistryIndex::load(dir)?;
    let mut report = Vec::with_capacity(index.entries.len());
    for entry in &index.entries {
        let status = (|| {
            if entry.schema_version != crate::ARTIFACT_VERSION {
                return Err(format!(
                    "schema version {} unsupported (this build reads {})",
                    entry.schema_version,
                    crate::ARTIFACT_VERSION
                ));
            }
            let bytes = std::fs::read(dir.join(&entry.path))
                .map_err(|e| format!("artifact {} unreadable: {e}", entry.path))?;
            let found = fnv1a64(&bytes);
            if found != entry.checksum {
                return Err(format!(
                    "checksum mismatch: index records {}, file hashes to {found}",
                    entry.checksum
                ));
            }
            let text =
                String::from_utf8(bytes).map_err(|e| format!("artifact is not UTF-8: {e}"))?;
            ModelArtifact::decode(&text).map_err(|e| format!("artifact does not decode: {e}"))?;
            Ok(entry.checksum.clone())
        })();
        report.push(VerifiedModel {
            model_id: entry.model_id.clone(),
            status,
        });
    }
    Ok(report)
}

/// One servable model: the decoded ensemble, its load-time-compiled form,
/// and the provenance/identity fields Health/Stats/ListModels report.
#[derive(Debug)]
pub struct ModelEntry {
    /// Routing key.
    pub model_id: String,
    /// FNV-1a-64 checksum of the artifact file this entry was loaded
    /// from — the identity a client can compare against the registry.
    pub checksum: String,
    /// Artifact format version of the loaded file.
    pub schema_version: u32,
    /// Training provenance from the artifact.
    pub meta: TrainMeta,
    /// The live model (reference scoring path, attack entry points).
    pub model: TrainedAttack,
    /// The ensemble lowered once at load time (compiled scoring path).
    pub compiled: CompiledEnsemble,
}

impl ModelEntry {
    fn from_trained(
        model_id: &str,
        checksum: String,
        schema_version: u32,
        meta: TrainMeta,
        model: TrainedAttack,
    ) -> Arc<Self> {
        let compiled = model.model().compile();
        Arc::new(Self {
            model_id: model_id.to_owned(),
            checksum,
            schema_version,
            meta,
            model,
            compiled,
        })
    }
}

/// The in-memory serving set: every loaded model keyed by id, plus the
/// default. Immutable once built — the server swaps whole catalogs behind
/// an `Arc`, so a request that resolved an entry keeps scoring against
/// that exact model even if a `Reload` lands mid-request.
#[derive(Debug)]
pub struct Catalog {
    default_id: String,
    /// Sorted by `model_id` for deterministic lookups and listings.
    entries: Vec<Arc<ModelEntry>>,
}

impl Catalog {
    /// Loads and fully validates every model in the registry at `dir`.
    /// `default_override` replaces the index's default (it must name a
    /// published model). Each artifact file is re-hashed against the
    /// index's recorded checksum before decoding, so a silently replaced
    /// or corrupted artifact can never be served.
    ///
    /// # Errors
    ///
    /// Any [`RegistryError`]: index validation, per-entry checksum or
    /// schema mismatches, or artifact-level failures (each naming the
    /// offending `model_id`).
    pub fn load(dir: &Path, default_override: Option<&str>) -> Result<Self, RegistryError> {
        let index = RegistryIndex::load(dir)?;
        let default_id = match default_override {
            Some(id) => {
                if index.get(id).is_none() {
                    return Err(RegistryError::UnknownModel(id.to_owned()));
                }
                id.to_owned()
            }
            None => index.default_model.clone(),
        };
        let mut entries = Vec::with_capacity(index.entries.len());
        for entry in &index.entries {
            if entry.schema_version != crate::ARTIFACT_VERSION {
                return Err(RegistryError::UnsupportedSchema {
                    model_id: entry.model_id.clone(),
                    found: entry.schema_version,
                    supported: crate::ARTIFACT_VERSION,
                });
            }
            let bytes = std::fs::read(dir.join(&entry.path))?;
            let found = fnv1a64(&bytes);
            if found != entry.checksum {
                return Err(RegistryError::ArtifactChecksum {
                    model_id: entry.model_id.clone(),
                    expected: entry.checksum.clone(),
                    found,
                });
            }
            let wrap = |error: ArtifactError| RegistryError::Artifact {
                model_id: entry.model_id.clone(),
                error,
            };
            let text = String::from_utf8(bytes).map_err(|e| {
                wrap(ArtifactError::Malformed(format!(
                    "artifact is not UTF-8: {e}"
                )))
            })?;
            let artifact = ModelArtifact::decode(&text).map_err(wrap)?;
            let meta = artifact.payload().meta.clone();
            let model = artifact.into_trained().map_err(wrap)?;
            entries.push(ModelEntry::from_trained(
                &entry.model_id,
                entry.checksum.clone(),
                entry.schema_version,
                meta,
                model,
            ));
        }
        entries.sort_by(|a, b| a.model_id.cmp(&b.model_id));
        Ok(Self {
            default_id,
            entries,
        })
    }

    /// Wraps one already-trained model as a single-entry catalog under
    /// [`SINGLE_MODEL_ID`] — the `serve --model FILE` mode. The checksum
    /// is computed over the model's canonical artifact encoding, so it
    /// matches what `publish` would record for the same model.
    #[must_use]
    pub fn single(model: TrainedAttack) -> Self {
        let artifact = ModelArtifact::from_trained(&model, TrainMeta::default());
        let checksum = fnv1a64(artifact.encode().as_bytes());
        Self {
            default_id: SINGLE_MODEL_ID.to_owned(),
            entries: vec![ModelEntry::from_trained(
                SINGLE_MODEL_ID,
                checksum,
                crate::ARTIFACT_VERSION,
                TrainMeta::default(),
                model,
            )],
        }
    }

    /// The id requests without a `model_id` route to.
    #[must_use]
    pub fn default_id(&self) -> &str {
        &self.default_id
    }

    /// The default entry (always present — catalogs cannot be empty).
    #[must_use]
    pub fn default_entry(&self) -> &Arc<ModelEntry> {
        self.get(&self.default_id)
            .expect("catalog default always resolves")
    }

    /// Looks up a model by id.
    #[must_use]
    pub fn get(&self, model_id: &str) -> Option<&Arc<ModelEntry>> {
        self.entries
            .binary_search_by(|e| e.model_id.as_str().cmp(model_id))
            .ok()
            .map(|k| &self.entries[k])
    }

    /// Routes a request's optional `model_id`: `None` means the default.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] if an explicit id is not in the
    /// catalog — the server maps this to the `not_found` error code.
    pub fn resolve(&self, model_id: Option<&str>) -> Result<&Arc<ModelEntry>, RegistryError> {
        match model_id {
            None => Ok(self.default_entry()),
            Some(id) => self
                .get(id)
                .ok_or_else(|| RegistryError::UnknownModel(id.to_owned())),
        }
    }

    /// All entries, sorted by model id.
    #[must_use]
    pub fn entries(&self) -> &[Arc<ModelEntry>] {
        &self.entries
    }

    /// Number of loaded models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Catalogs are never empty, but clippy insists `len` has a partner.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_attack::attack::AttackConfig;
    use sm_layout::{SplitLayer, Suite};
    use std::path::PathBuf;

    fn small_model() -> TrainedAttack {
        let views = Suite::ispd2011_like(0.01)
            .expect("valid scale")
            .split_all(SplitLayer::new(8).expect("valid layer"));
        let train: Vec<_> = views[1..].iter().collect();
        TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("trains")
    }

    fn tmp_registry(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smserve_registry_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn model_id_charset_is_enforced() {
        for ok in ["a", "incumbent", "v1.2-rc_3", "A-Z.09", &"x".repeat(64)] {
            assert!(validate_model_id(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            ".",
            "..",
            "a/b",
            "../up",
            "sp ace",
            "ünïcode",
            &"x".repeat(65),
        ] {
            assert!(
                matches!(validate_model_id(bad), Err(RegistryError::BadModelId(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn index_encode_decode_roundtrips_and_rejects_corruption() {
        let index = RegistryIndex {
            default_model: "a".into(),
            entries: vec![
                IndexEntry {
                    model_id: "a".into(),
                    path: "a.model".into(),
                    checksum: "fnv1a64:0000000000000000".into(),
                    schema_version: crate::ARTIFACT_VERSION,
                    meta: TrainMeta::default(),
                },
                IndexEntry {
                    model_id: "b".into(),
                    path: "b.model".into(),
                    checksum: "fnv1a64:0000000000000001".into(),
                    schema_version: crate::ARTIFACT_VERSION,
                    meta: TrainMeta::default(),
                },
            ],
        };
        let text = index.encode();
        assert_eq!(RegistryIndex::decode(&text).expect("decodes"), index);

        let flipped = text.replace("\"b.model\"", "\"c.model\"");
        assert!(matches!(
            RegistryIndex::decode(&flipped),
            Err(RegistryError::ChecksumMismatch { .. })
        ));
        let bad_magic = text.replacen(REGISTRY_MAGIC, "NOT-AN-INDEX", 1);
        assert!(matches!(
            RegistryIndex::decode(&bad_magic),
            Err(RegistryError::BadMagic { .. })
        ));
        let bad_version = text.replacen("\"version\":1", "\"version\":9", 1);
        assert!(matches!(
            RegistryIndex::decode(&bad_version),
            Err(RegistryError::UnsupportedVersion {
                found: 9,
                supported: REGISTRY_VERSION
            })
        ));
        assert!(matches!(
            RegistryIndex::decode(""),
            Err(RegistryError::Malformed(_))
        ));
    }

    #[test]
    fn incoherent_indexes_are_typed_errors() {
        let entry = |id: &str| IndexEntry {
            model_id: id.into(),
            path: format!("{id}.model"),
            checksum: "fnv1a64:0000000000000000".into(),
            schema_version: crate::ARTIFACT_VERSION,
            meta: TrainMeta::default(),
        };
        let empty = RegistryIndex {
            default_model: "a".into(),
            entries: vec![],
        };
        assert!(matches!(empty.validate(), Err(RegistryError::Empty)));

        let dup = RegistryIndex {
            default_model: "a".into(),
            entries: vec![entry("a"), entry("a")],
        };
        assert!(matches!(
            dup.validate(),
            Err(RegistryError::DuplicateModel(_))
        ));

        let no_default = RegistryIndex {
            default_model: "ghost".into(),
            entries: vec![entry("a")],
        };
        assert!(matches!(
            no_default.validate(),
            Err(RegistryError::UnknownModel(_))
        ));

        let mut escape = RegistryIndex {
            default_model: "a".into(),
            entries: vec![entry("a")],
        };
        escape.entries[0].path = "../outside.model".into();
        assert!(matches!(
            escape.validate(),
            Err(RegistryError::BadPath { .. })
        ));
        escape.entries[0].path = "/abs/path.model".into();
        assert!(matches!(
            escape.validate(),
            Err(RegistryError::BadPath { .. })
        ));
    }

    #[test]
    fn publish_then_load_roundtrips_and_first_publish_sets_default() {
        let dir = tmp_registry("publish");
        let model = small_model();
        let artifact = ModelArtifact::from_trained(&model, TrainMeta::default());
        let entry = publish(&dir, "incumbent", &artifact, false).expect("publishes");
        assert_eq!(entry.path, "incumbent.model");
        assert_eq!(entry.schema_version, crate::ARTIFACT_VERSION);

        let index = RegistryIndex::load(&dir).expect("index loads");
        assert_eq!(index.default_model, "incumbent", "first publish is default");
        assert_eq!(index.entries.len(), 1);

        // Second publish under a new id does not steal the default ...
        publish(&dir, "retrained", &artifact, false).expect("publishes");
        let index = RegistryIndex::load(&dir).expect("index loads");
        assert_eq!(index.default_model, "incumbent");
        assert_eq!(index.entries.len(), 2);

        // ... unless promoted.
        publish(&dir, "retrained", &artifact, true).expect("republish promotes");
        let index = RegistryIndex::load(&dir).expect("index loads");
        assert_eq!(index.default_model, "retrained");
        assert_eq!(index.entries.len(), 2, "republish replaces, not appends");

        let catalog = Catalog::load(&dir, None).expect("catalog loads");
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.default_id(), "retrained");
        assert_eq!(
            catalog.get("incumbent").expect("present").checksum,
            entry.checksum
        );
        // Loaded models score bit-identically to the one we published.
        let loaded = &catalog.get("incumbent").expect("present").model;
        assert_eq!(loaded, &model);

        assert!(matches!(
            publish(&dir, "../evil", &artifact, false),
            Err(RegistryError::BadModelId(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_load_rejects_tampered_artifacts_and_unknown_overrides() {
        let dir = tmp_registry("tamper");
        let artifact = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        publish(&dir, "only", &artifact, true).expect("publishes");

        assert!(matches!(
            Catalog::load(&dir, Some("ghost")),
            Err(RegistryError::UnknownModel(_))
        ));

        // Overwrite the artifact *without* updating the index: the file is
        // a perfectly valid artifact, but not the one the index promised.
        let other = ModelArtifact::from_trained(
            &small_model(),
            TrainMeta {
                split_layer: "V6".into(),
                ..TrainMeta::default()
            },
        );
        other.save(&dir.join("only.model")).expect("overwrites");
        assert!(matches!(
            Catalog::load(&dir, None),
            Err(RegistryError::ArtifactChecksum { model_id, .. }) if model_id == "only"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_catalog_routes_like_a_registry() {
        let model = small_model();
        let catalog = Catalog::single(model.clone());
        assert_eq!(catalog.default_id(), SINGLE_MODEL_ID);
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.resolve(None).expect("default").model, model);
        assert_eq!(
            catalog.resolve(Some(SINGLE_MODEL_ID)).expect("by id").model,
            model
        );
        assert!(matches!(
            catalog.resolve(Some("nope")),
            Err(RegistryError::UnknownModel(_))
        ));
        // The synthetic checksum matches what publishing the same model
        // would record — identity is stable across both serve modes.
        let canonical = fnv1a64(
            ModelArtifact::from_trained(&model, TrainMeta::default())
                .encode()
                .as_bytes(),
        );
        assert_eq!(catalog.default_entry().checksum, canonical);
    }

    #[test]
    fn publish_garbage_collects_unreferenced_artifacts() {
        let dir = tmp_registry("gc");
        let artifact = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        publish(&dir, "live", &artifact, true).expect("publishes");
        // An orphan from a crashed publish (artifact written, index never
        // updated) and an unrelated stray file.
        std::fs::write(dir.join("orphan.model"), b"leftover bytes").expect("writes orphan");
        std::fs::write(dir.join("notes.txt"), b"keep me").expect("writes stray");
        publish(&dir, "second", &artifact, false).expect("publishes again");
        assert!(!dir.join("orphan.model").exists(), "stale artifact removed");
        assert!(dir.join("live.model").exists(), "live artifact survives");
        assert!(dir.join("second.model").exists(), "new artifact survives");
        assert!(dir.join("notes.txt").exists(), "non-artifact files untouched");
        // The swept registry still verifies clean end to end.
        let report = verify(&dir).expect("verifies");
        assert_eq!(report.len(), 2);
        assert!(report.iter().all(|m| m.status.is_ok()), "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_save_is_atomic_and_truncations_fail_typed() {
        let dir = tmp_registry("atomic");
        let artifact = ModelArtifact::from_trained(&small_model(), TrainMeta::default());
        publish(&dir, "m", &artifact, true).expect("publishes");
        assert!(
            !dir.join("index.tmp").exists(),
            "staging file renamed away on success"
        );
        let text = std::fs::read_to_string(dir.join(INDEX_FILE)).expect("reads");
        for cut in [0, 1, text.len() / 2, text.len() - 2] {
            std::fs::write(dir.join(INDEX_FILE), &text[..cut]).expect("writes truncation");
            let err = RegistryIndex::load(&dir).expect_err("truncated index must fail");
            assert!(
                matches!(
                    err,
                    RegistryError::Malformed(_) | RegistryError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
