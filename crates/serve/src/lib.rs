//! # sm-serve — model artifact store and attack inference service
//!
//! The paper's threat model (and its deep-learning scale-up successors)
//! assumes an attacker who trains *once* and then scores millions of v-pin
//! pairs cheaply. This crate turns the reproduction into exactly that
//! system:
//!
//! - [`artifact`] — a versioned, checksummed on-disk format for trained
//!   [`sm_attack::TrainedAttack`] models (`splitmfg train` writes one,
//!   every other entry point loads it back with typed validation errors).
//! - [`registry`] — a versioned on-disk model registry (checksummed
//!   artifacts plus a checksummed `index` file) loaded into an immutable
//!   in-memory [`registry::Catalog`] that the server hot-swaps atomically
//!   on `Reload` — deploy a retrained attacker next to the incumbent
//!   without dropping a connection.
//! - [`protocol`] — the request/response types the server speaks
//!   (`score_pairs`, `attack`, `list_models`, `reload`, `health`,
//!   `stats`, `shutdown`) with per-model routing via an optional
//!   `model_id` field, over two interchangeable wire encodings: NDJSON
//!   (protocol v1) and length-prefixed binary frames (protocol v2,
//!   [`protocol::binary`]). The server detects the wire per connection
//!   from its first byte; no negotiation round-trip.
//! - [`server`] — an event-driven TCP server: an epoll reactor (the
//!   vendored `mio` shim) drives every connection as a nonblocking state
//!   machine, a bounded scoring executor (sized by
//!   [`sm_ml::Parallelism`]) runs the kernels, and concurrent small
//!   `ScorePairs` requests for the same model are coalesced into full
//!   kernel batches (bit-identical by row independence). Hardened for
//!   hostile traffic: idle and mid-request deadlines, a hard cap on
//!   request bytes (checked from the binary header before buffering),
//!   `Busy` load shedding past the admission capacity, graceful
//!   shutdown, and exponential backoff on `accept()` errors — with
//!   exact request/latency/error/shed accounting.
//! - [`client`] — a blocking protocol client for either wire with
//!   connect/io deadlines, a deterministic [`client::RetryPolicy`]
//!   (bounded attempts, exponential backoff, seeded jitter; retries
//!   only `Io`/`Busy` failures), plus the `bench-serve` load driver
//!   reporting throughput, p50/p95/p99 latency, and observed batch
//!   fill.
//!
//! Everything is offline-buildable: no async runtime, only `std::net`,
//! `std::sync` and the workspace's vendored crates.
//!
//! ## Quick start
//!
//! ```
//! use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
//! use sm_layout::{SplitLayer, Suite};
//! use sm_serve::artifact::{ModelArtifact, TrainMeta};
//!
//! // Train once ...
//! let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(8)?);
//! let train: Vec<_> = views[1..].iter().collect();
//! let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None)?;
//!
//! // ... checkpoint, reload, and the restored model scores bit-identically.
//! let artifact = ModelArtifact::from_trained(&model, TrainMeta::default());
//! let restored = ModelArtifact::decode(&artifact.encode())?.into_trained()?;
//! let opts = ScoreOptions::default();
//! assert_eq!(model.score(&views[0], &opts), restored.score(&views[0], &opts));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod artifact;
pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

pub use artifact::{ArtifactError, ModelArtifact, TrainMeta, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use client::{
    percentile_us, AttackWorkload, BenchConfig, BenchReport, Client, ClientError, ClientTimeouts,
    RetryPolicy, RetryingClient,
};
pub use protocol::{
    AttackSummary, ErrorCode, ModelInfo, Request, Response, ShadowReport, StatsSnapshot, Wire,
};
pub use registry::{
    publish, validate_model_id, verify, Catalog, IndexEntry, ModelEntry, RegistryError,
    RegistryIndex, VerifiedModel, REGISTRY_MAGIC, REGISTRY_VERSION, SINGLE_MODEL_ID,
};
pub use server::{
    event_loop_count, pool_size, queue_depth, serve_source_with, BatchLinger, ModelSource,
    ServeOptions, ServerHandle, ShadowConfig, ShutdownHandle, BUSY_RETRY_AFTER_MS,
};
