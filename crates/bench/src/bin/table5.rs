//! Table V: proximity-attack success rates per design, configuration and
//! split layer, with the PA-LoC fraction chosen by cross-validation, plus
//! the prior work's [5] nearest-in-window PA and the fixed-threshold PA of
//! the conference version [18].
//!
//! Expected shape: validated PA beats the fixed `t = 0.5` PA (especially
//! at layers 6 and 4), both beat [5] by an order of magnitude, layer 8 is
//! far easier than the lower layers, and the `Y` variants help at layer 8.

use std::time::Instant;

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use sm_attack::baseline::PriorWorkModel;
use sm_attack::proximity::{
    pa_at_threshold, proximity_attack, validate_pa_fraction, DEFAULT_PA_FRACTIONS,
};
use sm_bench::{dur, header, pct, row, Harness};
use sm_layout::SplitView;

fn main() {
    let harness = Harness::from_env();

    for layer in [8u8, 6, 4] {
        let configs = if layer == 8 {
            AttackConfig::standard_eight()
        } else {
            AttackConfig::standard_four()
        };
        let views = harness.views(layer);
        let refs: Vec<&SplitView> = views.iter().collect();
        let prior = PriorWorkModel::fit(&refs);

        println!("\n=== Table V — split layer {layer} ===");
        let mut head: Vec<String> = vec!["[5] %PA".into(), "[18] %PA".into()];
        head.extend(configs.iter().map(|c| c.name.clone()));
        let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
        header("design", &head_refs);

        // Per-design validated PA rates per config; [18] column uses the
        // first config (ML-9) at the fixed 0.5 threshold.
        let mut rates = vec![vec![0.0f64; views.len()]; configs.len()];
        let mut fixed18 = vec![0.0f64; views.len()];
        let mut prior5 = vec![0.0f64; views.len()];
        let mut val_time = vec![std::time::Duration::ZERO; configs.len()];

        for (ci, config) in configs.iter().enumerate() {
            for t in 0..views.len() {
                let train: Vec<&SplitView> = views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != t)
                    .map(|(_, v)| v)
                    .collect();
                let tv = Instant::now();
                let val = validate_pa_fraction(config, &train, &DEFAULT_PA_FRACTIONS, 17)
                    .expect("validation");
                val_time[ci] += tv.elapsed();
                let model = TrainedAttack::train(config, &train, None).expect("train");
                let scored = model.score(&views[t], &ScoreOptions::default());
                rates[ci][t] = proximity_attack(&scored, &views[t], val.best_fraction, 23).rate();
                if ci == 0 {
                    fixed18[t] = pa_at_threshold(&scored, &views[t], 0.5, 29).rate();
                    prior5[t] = prior.evaluate(&views[t], 1.5).pa_rate;
                }
            }
        }

        for (t, view) in views.iter().enumerate() {
            let mut cells = vec![pct(Some(prior5[t])), pct(Some(fixed18[t]))];
            cells.extend((0..configs.len()).map(|ci| pct(Some(rates[ci][t]))));
            row(view.name.as_str(), &cells);
        }
        let n = views.len() as f64;
        let mut cells = vec![
            pct(Some(prior5.iter().sum::<f64>() / n)),
            pct(Some(fixed18.iter().sum::<f64>() / n)),
        ];
        cells.extend(rates.iter().map(|r| pct(Some(r.iter().sum::<f64>() / n))));
        row("Avg", &cells);
        let mut cells = vec!["".to_owned(), "".to_owned()];
        cells.extend(val_time.iter().map(|d| dur(*d)));
        row("Val. time", &cells);
    }
}
