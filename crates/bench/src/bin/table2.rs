//! Table II: RandomTree ([18], as in Weka's RandomForest with 100 trees)
//! versus REPTree (this paper, Bagging with 10 trees) as the base
//! classifier, with the `Imp-7` configuration at split layers 8 and 6.
//!
//! Expected shape: near-identical |LoC| and accuracy, with the REPTree
//! ensemble roughly an order of magnitude faster.

use sm_attack::attack::{AttackConfig, BaseClassifier, ScoreOptions};
use sm_bench::{dur, header, pct, row, run_config, Harness};

fn main() {
    let harness = Harness::from_env();

    let mut random_tree = AttackConfig::imp7();
    random_tree.name = "Imp-7/RT[18]".into();
    random_tree.base = BaseClassifier::RandomTreeBagging { n_trees: 100 };
    let mut rep_tree = AttackConfig::imp7();
    rep_tree.name = "Imp-7/REP".into();
    rep_tree.base = BaseClassifier::RepTreeBagging { n_trees: 10 };

    for layer in [8u8, 6] {
        let views = harness.views(layer);
        let rt = run_config(&random_tree, &views, &ScoreOptions::default());
        let rep = run_config(&rep_tree, &views, &ScoreOptions::default());

        println!("\n=== Table II — split layer {layer} (Imp-7) ===");
        header("design", &["RT |LoC|", "RT Acc", "REP |LoC|", "REP Acc"]);
        let mut avg = [0.0f64; 4];
        for (d, view) in views.iter().enumerate() {
            let (a, b) = (&rt.folds[d].scored, &rep.folds[d].scored);
            let cells = vec![
                format!("{:.1}", a.mean_loc_at(0.5)),
                pct(Some(a.accuracy_at(0.5))),
                format!("{:.1}", b.mean_loc_at(0.5)),
                pct(Some(b.accuracy_at(0.5))),
            ];
            avg[0] += a.mean_loc_at(0.5) / views.len() as f64;
            avg[1] += a.accuracy_at(0.5) / views.len() as f64;
            avg[2] += b.mean_loc_at(0.5) / views.len() as f64;
            avg[3] += b.accuracy_at(0.5) / views.len() as f64;
            row(view.name.as_str(), &cells);
        }
        row(
            "Avg",
            &[
                format!("{:.1}", avg[0]),
                pct(Some(avg[1])),
                format!("{:.1}", avg[2]),
                pct(Some(avg[3])),
            ],
        );
        println!(
            "  runtime: RandomTree(100) {} vs REPTree(10) {}  (speedup {:.1}x)",
            dur(rt.runtime),
            dur(rep.runtime),
            rt.runtime.as_secs_f64() / rep.runtime.as_secs_f64().max(1e-9),
        );
    }
}
