//! Defence bake-off (extension of Table VI): every defence strategy in
//! `sm_attack::defenses` evaluated against the identical Imp-11 attack at
//! split layer 6, reporting attack accuracy at fixed LoC fractions and the
//! proximity-attack success rate.
//!
//! Expected shape: position noise (y or xy) is the strongest per unit of
//! overhead (it corrupts the two most important features); decoys dilute
//! the LoC proportionally; wirelength/area camouflage barely matter
//! (those features rank low in Fig. 7).

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use sm_attack::defenses::{area_camouflage, decoy_pairs, wirelength_scramble, xy_noise};
use sm_attack::obfuscate::obfuscate_views;
use sm_attack::proximity::proximity_attack;
use sm_bench::{header, pct, row, Harness};
use sm_layout::SplitView;

fn evaluate(name: &str, views: &[SplitView], clean: &[SplitView]) {
    let config = AttackConfig::imp11();
    let mut acc1 = 0.0;
    let mut acc10 = 0.0;
    let mut pa = 0.0;
    for t in 0..views.len() {
        let train: Vec<&SplitView> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t)
            .map(|(_, v)| v)
            .collect();
        let model = TrainedAttack::train(&config, &train, None).expect("train");
        // Score only the *real* v-pins as targets: decoys still pollute the
        // candidate pool, but recovering a decoy leaks nothing, so the
        // attacker-yield metric must exclude them.
        let real_targets: Vec<u32> = (0..clean[t].num_vpins() as u32).collect();
        let opts = ScoreOptions {
            targets: Some(real_targets),
            ..ScoreOptions::default()
        };
        let scored = model.score(&views[t], &opts);
        let curve = scored.curve();
        acc1 += curve.accuracy_at_loc_fraction(0.01).unwrap_or(0.0) / views.len() as f64;
        acc10 += curve.accuracy_at_loc_fraction(0.10).unwrap_or(0.0) / views.len() as f64;
        pa += proximity_attack(&scored, &views[t], 0.005, 47).rate() / views.len() as f64;
    }
    row(name, &[pct(Some(acc1)), pct(Some(acc10)), pct(Some(pa))]);
}

fn main() {
    let harness = Harness::from_env();
    let clean = harness.views(6);

    println!("\n=== Defence comparison — split layer 6, Imp-11 attack ===");
    header("defence", &["acc@1%", "acc@10%", "PA(.005)"]);

    evaluate("(none)", &clean, &clean);
    evaluate("y-noise 1%", &obfuscate_views(&clean, 0.01, 0xd1), &clean);
    evaluate(
        "xy-noise 1%",
        &clean
            .iter()
            .map(|v| xy_noise(v, 0.01, 0xd2))
            .collect::<Vec<_>>(),
        &clean,
    );
    evaluate(
        "decoys +30%",
        &clean
            .iter()
            .map(|v| decoy_pairs(v, 0.3, 0xd3))
            .collect::<Vec<_>>(),
        &clean,
    );
    evaluate(
        "decoys +100%",
        &clean
            .iter()
            .map(|v| decoy_pairs(v, 1.0, 0xd4))
            .collect::<Vec<_>>(),
        &clean,
    );
    evaluate(
        "W-scramble 2x",
        &clean
            .iter()
            .map(|v| wirelength_scramble(v, 1.0, 0xd5))
            .collect::<Vec<_>>(),
        &clean,
    );
    evaluate(
        "area camo",
        &clean.iter().map(area_camouflage).collect::<Vec<_>>(),
        &clean,
    );
    println!(
        "\n(Only real v-pins count as attack targets; decoys dilute the\n\
         candidate pool and the LoC-fraction denominator includes them.)"
    );
}
