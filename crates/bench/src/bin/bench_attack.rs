//! Attack-scoring kernel benchmark: compiled (flattened ensemble + SoA
//! feature extraction, batched) versus the reference per-pair path, on the
//! same trained model and target design.
//!
//! Emits a machine-readable report (`BENCH_attack.json` shape) with
//! end-to-end pairs/s per kernel plus a per-stage split of the compiled
//! path (feature fill vs ensemble evaluation), and exits nonzero if the
//! compiled kernel is not faster than the reference — the CI guard against
//! performance regressions.
//!
//! ```bash
//! SM_SCALE=0.2 cargo run --release -p sm-bench --bin bench_attack -- results/BENCH_attack.json
//! ```

use std::time::Instant;

use serde::Serialize;
use sm_attack::attack::{AttackConfig, Kernel, ScoreOptions, TrainedAttack, SCORE_BATCH};
use sm_attack::PairKernel;
use sm_bench::Harness;
use sm_layout::SplitView;

/// Measured iterations per kernel; the fastest is reported (standard
/// best-of-N to shed scheduler noise without a long run).
const ITERS: usize = 3;

#[derive(Serialize)]
struct KernelResult {
    best_s: f64,
    pairs_per_s: f64,
}

#[derive(Serialize)]
struct StageSplit {
    /// Legal pairs pushed through the staged measurement.
    pairs: u64,
    /// Seconds spent filling SoA feature batches ([`PairKernel`]).
    feature_fill_s: f64,
    /// Seconds spent in the flattened-ensemble batch evaluation.
    proba_batch_s: f64,
    /// Seconds the reference path spends extracting the same features
    /// pair by pair (`FeatureSet::compute_into`).
    reference_compute_s: f64,
    /// Seconds the reference path spends in per-pair `Bagging::proba`.
    reference_proba_s: f64,
    /// Kernel-only throughput ratio: (reference compute + proba) /
    /// (compiled fill + batch) over the identical pair set.
    kernel_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    scale: f64,
    split_layer: u8,
    config: String,
    design: String,
    num_vpins: usize,
    pairs_scored: u64,
    reference: KernelResult,
    compiled: KernelResult,
    speedup: f64,
    stage_split: StageSplit,
}

fn time_kernel(model: &TrainedAttack, view: &SplitView, kernel: Kernel) -> (f64, u64) {
    let opts = ScoreOptions {
        kernel,
        ..ScoreOptions::default()
    };
    // Warm-up iteration (page in the model, populate allocator pools).
    let mut pairs = model.score(view, &opts).pairs_scored;
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        let scored = model.score(view, &opts);
        best = best.min(t.elapsed().as_secs_f64());
        pairs = scored.pairs_scored;
    }
    (best, pairs)
}

/// Runs feature fill and ensemble evaluation as separate timed stages over
/// every legal pair, batched exactly like the attack's inner loop. Each
/// measurement pass is repeated [`ITERS`] times and the fastest pass is
/// kept — per-stage times come from the same best pass, so the reported
/// split stays self-consistent.
fn stage_split(model: &TrainedAttack, view: &SplitView) -> StageSplit {
    let kernel = PairKernel::new(view.vpins(), &model.config().features);
    let ensemble = model.model().compile();
    let nf = kernel.num_features();
    let n = view.num_vpins();
    let mut rows: Vec<f64> = Vec::with_capacity(SCORE_BATCH * nf);
    let mut probs: Vec<f64> = Vec::with_capacity(SCORE_BATCH);
    let mut cands: Vec<u32> = Vec::new();
    let mut sink = 0.0_f64;
    let (mut fill_s, mut proba_s, mut pairs) = (f64::INFINITY, f64::INFINITY, 0_u64);
    for _ in 0..=ITERS {
        // First pass doubles as warm-up; it can only lose the min race.
        let (mut pass_fill, mut pass_proba, mut pass_pairs) = (0.0_f64, 0.0_f64, 0_u64);
        for i in 0..n {
            cands.clear();
            cands.extend(
                ((i + 1)..n)
                    .filter(|&j| view.is_legal_pair(i, j))
                    .map(|j| u32::try_from(j).expect("v-pin index fits u32")),
            );
            let target = u32::try_from(i).expect("v-pin index fits u32");
            for chunk in cands.chunks(SCORE_BATCH) {
                let t = Instant::now();
                kernel.fill_batch(target, chunk, &mut rows);
                pass_fill += t.elapsed().as_secs_f64();
                probs.clear();
                probs.resize(chunk.len(), 0.0);
                let t = Instant::now();
                ensemble.proba_batch(&rows, nf, &mut probs);
                pass_proba += t.elapsed().as_secs_f64();
                pass_pairs += chunk.len() as u64;
                sink += probs.iter().sum::<f64>();
            }
        }
        if pass_fill + pass_proba < fill_s + proba_s {
            (fill_s, proba_s) = (pass_fill, pass_proba);
        }
        pairs = pass_pairs;
    }
    // Reference staging over the identical pair set, whole-pass timed so
    // the timer itself stays out of the measured loops: one pass of pure
    // feature extraction, one pass of extraction + ensemble walk; the
    // difference is the per-pair `Bagging::proba` cost.
    let features = &model.config().features;
    let ensemble_ref = model.model();
    let mut buf: Vec<f64> = Vec::with_capacity(nf);
    let vpins = view.vpins();
    let (mut ref_compute_s, mut ref_total_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..=ITERS {
        let t = Instant::now();
        for i in 0..n {
            for j in (i + 1)..n {
                if !view.is_legal_pair(i, j) {
                    continue;
                }
                features.compute_into(&vpins[i], &vpins[j], &mut buf);
                sink += buf[0];
            }
        }
        ref_compute_s = ref_compute_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for i in 0..n {
            for j in (i + 1)..n {
                if !view.is_legal_pair(i, j) {
                    continue;
                }
                features.compute_into(&vpins[i], &vpins[j], &mut buf);
                sink += ensemble_ref.proba(&buf);
            }
        }
        ref_total_s = ref_total_s.min(t.elapsed().as_secs_f64());
    }
    let ref_proba_s = (ref_total_s - ref_compute_s).max(0.0);
    // Keep the optimizer honest about the probabilities being computed.
    assert!(sink.is_finite());
    StageSplit {
        pairs,
        feature_fill_s: fill_s,
        proba_batch_s: proba_s,
        reference_compute_s: ref_compute_s,
        reference_proba_s: ref_proba_s,
        kernel_speedup: (ref_compute_s + ref_proba_s) / (fill_s + proba_s),
    }
}

fn main() {
    let out_path = std::env::args().nth(1);
    let harness = Harness::from_env();
    let layer = 8u8;
    let views = harness.views(layer);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    // The paper's flagship configuration (all 11 features, neighborhood
    // restriction); override with SM_BENCH_CONFIG=ml-9|imp-7|imp-9|imp-11.
    let config = match std::env::var("SM_BENCH_CONFIG").as_deref() {
        Ok("ml-9") => AttackConfig::ml9(),
        Ok("imp-7") => AttackConfig::imp7(),
        Ok("imp-9") => AttackConfig::imp9(),
        Ok("imp-11") | Err(_) => AttackConfig::imp11(),
        Ok(other) => panic!("unknown SM_BENCH_CONFIG {other:?}"),
    };
    eprintln!("[bench_attack] training {} ...", config.name);
    let model = TrainedAttack::train(&config, &train, None).expect("train");
    let target = &views[0];

    eprintln!("[bench_attack] scoring with reference kernel ...");
    let (ref_s, ref_pairs) = time_kernel(&model, target, Kernel::Reference);
    eprintln!("[bench_attack] scoring with compiled kernel ...");
    let (comp_s, comp_pairs) = time_kernel(&model, target, Kernel::Compiled);
    assert_eq!(
        ref_pairs, comp_pairs,
        "kernels must evaluate the same pair set"
    );
    eprintln!("[bench_attack] measuring per-stage split ...");
    let stages = stage_split(&model, target);

    let pairs = comp_pairs;
    let report = Report {
        scale: harness.scale(),
        split_layer: layer,
        config: config.name.clone(),
        design: target.name.clone(),
        num_vpins: target.num_vpins(),
        pairs_scored: pairs,
        reference: KernelResult {
            best_s: ref_s,
            pairs_per_s: pairs as f64 / ref_s,
        },
        compiled: KernelResult {
            best_s: comp_s,
            pairs_per_s: pairs as f64 / comp_s,
        },
        speedup: ref_s / comp_s,
        stage_split: stages,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, json + "\n").expect("write report");
        eprintln!("[bench_attack] wrote {path}");
    }
    if comp_s >= ref_s {
        eprintln!(
            "[bench_attack] FAIL: compiled kernel ({comp_s:.3}s) is not faster than reference ({ref_s:.3}s)"
        );
        std::process::exit(1);
    }
    eprintln!(
        "[bench_attack] compiled {:.2}x faster ({:.0} vs {:.0} pairs/s)",
        report.speedup, report.compiled.pairs_per_s, report.reference.pairs_per_s
    );
}
