//! Attack-scoring benchmark: compiled vs reference kernel, spatial vs
//! all-pairs candidate enumeration, on the same trained model and target
//! design.
//!
//! Emits a machine-readable report (`BENCH_attack.json` shape) with
//! end-to-end pairs/s per kernel, a per-stage split of the compiled path
//! (feature fill vs ensemble evaluation), the enumeration-stage ns/pair of
//! the spatial grid queries vs the all-pairs oracle scan, and the process
//! peak RSS. Exits nonzero if the compiled kernel is not faster than the
//! reference, if spatial enumeration is not faster than the all-pairs
//! scan, or if the spatial `ScoredView` diverges from the oracle — the CI
//! guards against performance and correctness regressions.
//!
//! ```bash
//! SM_SCALE=0.2 cargo run --release -p sm-bench --bin bench_attack -- results/BENCH_attack.json
//! ```
//!
//! Environment knobs:
//!
//! - `SM_BENCH_CONFIG=ml-9|imp-7|imp-9|imp-11` — model configuration
//!   (default `imp-11`).
//! - `SM_BENCH_SPLIT=4|6|8` — split layer (default 8; use 4 for the
//!   enumeration-bound regime, where the neighborhood ball covers a small
//!   fraction of the die).
//! - `SM_BENCH_ITERS=N` — timed passes per measurement, best-of-N
//!   (default 3; 1 skips the warm-up pass too).
//! - `SM_BENCH_ORACLE=0` — skip every quadratic oracle pass (reference
//!   kernel, all-pairs enumeration, stage split, divergence check) for
//!   paper-scale streaming runs; the matching report fields are null.
//! - `SM_BENCH_TOP_FRACTION=F` — per-target top-list fraction (default
//!   0.06). At `SM_SCALE=10` the default would retain ~17 GB of
//!   candidates; pick the PA fraction actually needed (e.g. 0.002).

use std::time::Instant;

use serde::Serialize;
use sm_attack::attack::{
    AttackConfig, Enumeration, Kernel, ScoreOptions, TrainedAttack, SCORE_BATCH,
};
use sm_attack::neighborhood::VpinIndex;
use sm_attack::PairKernel;
use sm_bench::{peak_rss_bytes, Harness};
use sm_layout::SplitView;

#[derive(Serialize)]
struct KernelResult {
    best_s: f64,
    pairs_per_s: f64,
}

#[derive(Serialize)]
struct StageSplit {
    /// Legal pairs pushed through the staged measurement.
    pairs: u64,
    /// Seconds spent filling SoA feature batches ([`PairKernel`]).
    feature_fill_s: f64,
    /// Seconds spent in the flattened-ensemble batch evaluation.
    proba_batch_s: f64,
    /// Seconds the reference path spends extracting the same features
    /// pair by pair (`FeatureSet::compute_into`).
    reference_compute_s: f64,
    /// Seconds the reference path spends in per-pair `Bagging::proba`.
    reference_proba_s: f64,
    /// Kernel-only throughput ratio: (reference compute + proba) /
    /// (compiled fill + batch) over the identical pair set.
    kernel_speedup: f64,
}

#[derive(Serialize)]
struct EnumStage {
    /// Candidate pairs enumerated per full pass (before legality
    /// filtering).
    pairs_enumerated: u64,
    /// Best full-pass time of the spatial grid queries
    /// (`within_radius_unordered` per target).
    spatial_best_s: f64,
    /// Spatial enumeration cost per enumerated pair.
    spatial_ns_per_pair: f64,
    /// Best full-pass time of the all-pairs oracle scan (null in
    /// streaming-only mode).
    all_pairs_best_s: Option<f64>,
    /// Oracle scan cost per enumerated pair (null in streaming-only mode).
    all_pairs_ns_per_pair: Option<f64>,
    /// all-pairs / spatial pass-time ratio (null in streaming-only mode).
    enumeration_speedup: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    scale: f64,
    split_layer: u8,
    config: String,
    design: String,
    num_vpins: usize,
    top_fraction: f64,
    pairs_scored: u64,
    /// Null when `SM_BENCH_ORACLE=0` skips the reference kernel.
    reference: Option<KernelResult>,
    compiled: KernelResult,
    /// reference / compiled end-to-end time (null in streaming-only mode).
    speedup: Option<f64>,
    stage_split: Option<StageSplit>,
    /// Null for `ML` configurations (no neighborhood radius: both
    /// enumerations degenerate to the same full scan).
    enumeration: Option<EnumStage>,
    /// Whether the spatial `ScoredView` was verified bit-identical to the
    /// all-pairs oracle in this run.
    oracle_checked: bool,
    peak_rss_bytes: Option<u64>,
}

fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name).as_deref() {
        Ok("0") | Ok("false") => false,
        Ok("1") | Ok("true") => true,
        Err(_) => default,
        Ok(other) => panic!("{name} must be 0 or 1, got {other:?}"),
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("invalid {name} value {s:?}")),
    }
}

fn time_kernel(
    model: &TrainedAttack,
    view: &SplitView,
    kernel: Kernel,
    base: &ScoreOptions,
    iters: usize,
) -> (f64, u64) {
    let opts = ScoreOptions {
        kernel,
        ..base.clone()
    };
    // Warm-up iteration (page in the model, populate allocator pools) —
    // skipped for single-pass paper-scale runs, where a pass is minutes.
    let mut pairs = if iters > 1 {
        model.score(view, &opts).pairs_scored
    } else {
        0
    };
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        let scored = model.score(view, &opts);
        best = best.min(t.elapsed().as_secs_f64());
        pairs = scored.pairs_scored;
    }
    (best, pairs)
}

/// Runs feature fill and ensemble evaluation as separate timed stages over
/// every legal pair, batched exactly like the attack's inner loop. Each
/// measurement pass is repeated `iters` times and the fastest pass is
/// kept — per-stage times come from the same best pass, so the reported
/// split stays self-consistent.
fn stage_split(model: &TrainedAttack, view: &SplitView, iters: usize) -> StageSplit {
    let kernel = PairKernel::new(view.vpins(), &model.config().features);
    let ensemble = model.model().compile();
    let nf = kernel.num_features();
    let n = view.num_vpins();
    let mut rows: Vec<f64> = Vec::with_capacity(SCORE_BATCH * nf);
    let mut probs: Vec<f64> = Vec::with_capacity(SCORE_BATCH);
    let mut cands: Vec<u32> = Vec::new();
    let mut sink = 0.0_f64;
    let (mut fill_s, mut proba_s, mut pairs) = (f64::INFINITY, f64::INFINITY, 0_u64);
    for _ in 0..=iters {
        // First pass doubles as warm-up; it can only lose the min race.
        let (mut pass_fill, mut pass_proba, mut pass_pairs) = (0.0_f64, 0.0_f64, 0_u64);
        for i in 0..n {
            cands.clear();
            cands.extend(
                ((i + 1)..n)
                    .filter(|&j| view.is_legal_pair(i, j))
                    .map(|j| u32::try_from(j).expect("v-pin index fits u32")),
            );
            let target = u32::try_from(i).expect("v-pin index fits u32");
            for chunk in cands.chunks(SCORE_BATCH) {
                let t = Instant::now();
                kernel.fill_batch(target, chunk, &mut rows);
                pass_fill += t.elapsed().as_secs_f64();
                probs.clear();
                probs.resize(chunk.len(), 0.0);
                let t = Instant::now();
                ensemble.proba_batch(&rows, nf, &mut probs);
                pass_proba += t.elapsed().as_secs_f64();
                pass_pairs += chunk.len() as u64;
                sink += probs.iter().sum::<f64>();
            }
        }
        if pass_fill + pass_proba < fill_s + proba_s {
            (fill_s, proba_s) = (pass_fill, pass_proba);
        }
        pairs = pass_pairs;
    }
    // Reference staging over the identical pair set, whole-pass timed so
    // the timer itself stays out of the measured loops: one pass of pure
    // feature extraction, one pass of extraction + ensemble walk; the
    // difference is the per-pair `Bagging::proba` cost.
    let features = &model.config().features;
    let ensemble_ref = model.model();
    let mut buf: Vec<f64> = Vec::with_capacity(nf);
    let vpins = view.vpins();
    let (mut ref_compute_s, mut ref_total_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..=iters {
        let t = Instant::now();
        for i in 0..n {
            for j in (i + 1)..n {
                if !view.is_legal_pair(i, j) {
                    continue;
                }
                features.compute_into(&vpins[i], &vpins[j], &mut buf);
                sink += buf[0];
            }
        }
        ref_compute_s = ref_compute_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for i in 0..n {
            for j in (i + 1)..n {
                if !view.is_legal_pair(i, j) {
                    continue;
                }
                features.compute_into(&vpins[i], &vpins[j], &mut buf);
                sink += ensemble_ref.proba(&buf);
            }
        }
        ref_total_s = ref_total_s.min(t.elapsed().as_secs_f64());
    }
    let ref_proba_s = (ref_total_s - ref_compute_s).max(0.0);
    // Keep the optimizer honest about the probabilities being computed.
    assert!(sink.is_finite());
    StageSplit {
        pairs,
        feature_fill_s: fill_s,
        proba_batch_s: proba_s,
        reference_compute_s: ref_compute_s,
        reference_proba_s: ref_proba_s,
        kernel_speedup: (ref_compute_s + ref_proba_s) / (fill_s + proba_s),
    }
}

/// Times candidate enumeration alone — the stage the spatial grid
/// replaces — normalised per enumerated pair: radius queries against the
/// [`VpinIndex`] versus the per-target all-pairs distance scan (the exact
/// loop the attack ran before the spatial path existed). Returns `None`
/// for configurations without a neighborhood radius, where both
/// enumerations are the same trivial scan.
fn enumeration_split(
    model: &TrainedAttack,
    view: &SplitView,
    iters: usize,
    oracle: bool,
) -> Option<EnumStage> {
    let radius = model.radius()?;
    let n = view.num_vpins();
    let vpins = view.vpins();
    let mut out: Vec<u32> = Vec::new();
    let index = VpinIndex::with_radius(view, radius);
    let mut pairs = 0u64;
    let mut spatial_best = f64::INFINITY;
    for pass in 0..=iters {
        let t = Instant::now();
        let mut count = 0u64;
        for i in 0..n as u32 {
            index.within_radius_unordered(view, vpins[i as usize].loc, radius, i, &mut out);
            count += out.len() as u64;
        }
        let dt = t.elapsed().as_secs_f64();
        if pass > 0 {
            spatial_best = spatial_best.min(dt);
        }
        pairs = count;
    }
    let (mut all_pairs_best, mut all_ns, mut speedup) = (None, None, None);
    if oracle {
        let mut best = f64::INFINITY;
        for pass in 0..=iters {
            let t = Instant::now();
            let mut count = 0u64;
            for i in 0..n {
                let loc = vpins[i].loc;
                out.clear();
                out.extend((0..n as u32).filter(|&j| {
                    j as usize != i && vpins[j as usize].loc.manhattan(loc) <= radius
                }));
                count += out.len() as u64;
            }
            let dt = t.elapsed().as_secs_f64();
            if pass > 0 {
                best = best.min(dt);
            }
            assert_eq!(count, pairs, "oracle scan enumerated a different pair set");
        }
        all_pairs_best = Some(best);
        all_ns = Some(best * 1e9 / pairs.max(1) as f64);
        speedup = Some(best / spatial_best);
    }
    Some(EnumStage {
        pairs_enumerated: pairs,
        spatial_best_s: spatial_best,
        spatial_ns_per_pair: spatial_best * 1e9 / pairs.max(1) as f64,
        all_pairs_best_s: all_pairs_best,
        all_pairs_ns_per_pair: all_ns,
        enumeration_speedup: speedup,
    })
}

fn main() {
    let out_path = std::env::args().nth(1);
    let harness = Harness::from_env();
    let layer: u8 = env_parse("SM_BENCH_SPLIT", 8);
    let iters: usize = env_parse("SM_BENCH_ITERS", 3);
    let oracle = env_flag("SM_BENCH_ORACLE", true);
    let top_fraction: f64 = env_parse("SM_BENCH_TOP_FRACTION", 0.06);
    assert!(
        top_fraction > 0.0 && top_fraction <= 1.0,
        "SM_BENCH_TOP_FRACTION must be in (0, 1]"
    );
    let views = harness.views(layer);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    // The paper's flagship configuration (all 11 features, neighborhood
    // restriction); override with SM_BENCH_CONFIG=ml-9|imp-7|imp-9|imp-11.
    let config = match std::env::var("SM_BENCH_CONFIG").as_deref() {
        Ok("ml-9") => AttackConfig::ml9(),
        Ok("imp-7") => AttackConfig::imp7(),
        Ok("imp-9") => AttackConfig::imp9(),
        Ok("imp-11") | Err(_) => AttackConfig::imp11(),
        Ok(other) => panic!("unknown SM_BENCH_CONFIG {other:?}"),
    };
    eprintln!("[bench_attack] training {} ...", config.name);
    let model = TrainedAttack::train(&config, &train, None).expect("train");
    let target = &views[0];
    let base = ScoreOptions {
        top_fraction,
        ..ScoreOptions::default()
    };

    eprintln!("[bench_attack] scoring with compiled kernel (spatial enumeration) ...");
    let (comp_s, comp_pairs) = time_kernel(&model, target, Kernel::Compiled, &base, iters);

    let (mut reference, mut speedup, mut stages) = (None, None, None);
    let mut oracle_checked = false;
    if oracle {
        eprintln!("[bench_attack] scoring with reference kernel ...");
        let (ref_s, ref_pairs) = time_kernel(&model, target, Kernel::Reference, &base, iters);
        assert_eq!(
            ref_pairs, comp_pairs,
            "kernels must evaluate the same pair set"
        );
        reference = Some(KernelResult {
            best_s: ref_s,
            pairs_per_s: comp_pairs as f64 / ref_s,
        });
        speedup = Some(ref_s / comp_s);
        eprintln!("[bench_attack] measuring per-stage kernel split ...");
        stages = Some(stage_split(&model, target, iters));
        eprintln!("[bench_attack] verifying spatial enumeration against the oracle ...");
        let spatial = model.score(target, &base);
        let all_pairs = model.score(
            target,
            &ScoreOptions {
                enumeration: Enumeration::AllPairs,
                ..base.clone()
            },
        );
        assert_eq!(
            spatial, all_pairs,
            "spatial enumeration diverged from the all-pairs oracle"
        );
        oracle_checked = true;
    }
    eprintln!("[bench_attack] measuring enumeration stage ...");
    let enumeration = enumeration_split(&model, target, iters, oracle);

    let pairs = comp_pairs;
    let report = Report {
        scale: harness.scale(),
        split_layer: layer,
        config: config.name.clone(),
        design: target.name.clone(),
        num_vpins: target.num_vpins(),
        top_fraction,
        pairs_scored: pairs,
        reference,
        compiled: KernelResult {
            best_s: comp_s,
            pairs_per_s: pairs as f64 / comp_s,
        },
        speedup,
        stage_split: stages,
        enumeration,
        oracle_checked,
        peak_rss_bytes: peak_rss_bytes(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, json.clone() + "\n").expect("write report");
        eprintln!("[bench_attack] wrote {path}");
    }
    if let Some(rss) = report.peak_rss_bytes {
        eprintln!(
            "[bench_attack] peak RSS {:.0} MiB",
            rss as f64 / (1 << 20) as f64
        );
    }
    let mut failed = false;
    if let Some(ref reference) = report.reference {
        if comp_s >= reference.best_s {
            eprintln!(
                "[bench_attack] FAIL: compiled kernel ({comp_s:.3}s) is not faster than reference ({:.3}s)",
                reference.best_s
            );
            failed = true;
        } else {
            eprintln!(
                "[bench_attack] compiled {:.2}x faster ({:.0} vs {:.0} pairs/s)",
                report.speedup.unwrap_or(f64::NAN),
                report.compiled.pairs_per_s,
                reference.pairs_per_s
            );
        }
    }
    if let Some(ref e) = report.enumeration {
        match (e.all_pairs_best_s, e.all_pairs_ns_per_pair) {
            (Some(all_s), Some(all_ns)) if e.spatial_best_s >= all_s => {
                eprintln!(
                    "[bench_attack] FAIL: spatial enumeration ({:.2} ns/pair) is not faster than the all-pairs scan ({all_ns:.2} ns/pair)",
                    e.spatial_ns_per_pair
                );
                failed = true;
            }
            (Some(_), Some(all_ns)) => eprintln!(
                "[bench_attack] enumeration {:.2}x faster ({:.2} vs {all_ns:.2} ns/pair over {} pairs)",
                e.enumeration_speedup.unwrap_or(f64::NAN),
                e.spatial_ns_per_pair,
                e.pairs_enumerated
            ),
            _ => eprintln!(
                "[bench_attack] spatial enumeration {:.2} ns/pair over {} pairs (oracle skipped)",
                e.spatial_ns_per_pair, e.pairs_enumerated
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
