//! Fig. 4: cumulative distribution of the (normalized) ManhattanVpin
//! distance of truly-matching v-pin pairs, split layer 6.
//!
//! One curve per held-out design, each aggregating the other N−1 designs'
//! training matches (exactly the data the `Imp` neighborhood radius is cut
//! from at the 90 % quantile). Distances are normalized by the die
//! half-perimeter.

use sm_attack::neighborhood::match_distance_cdf;
use sm_bench::Harness;
use sm_layout::SplitView;

const PROBES: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let harness = Harness::from_env();
    let views = harness.views(6);

    println!("\n=== Fig. 4 — CDF of normalized ManhattanVpin of true matches (layer 6) ===");
    println!("held-out | normalized distance at CDF = {PROBES:?}");
    for t in 0..views.len() {
        let train: Vec<&SplitView> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t)
            .map(|(_, v)| v)
            .collect();
        let cdf = match_distance_cdf(&train);
        // Normalize by the mean die half-perimeter of the training designs.
        let norm: f64 = train
            .iter()
            .map(|v| (v.die.width() + v.die.height()) as f64)
            .sum::<f64>()
            / train.len() as f64;
        let at = |q: f64| -> f64 {
            if cdf.is_empty() {
                return 0.0;
            }
            let k = ((cdf.len() as f64 - 1.0) * q).round() as usize;
            cdf[k.min(cdf.len() - 1)] as f64 / norm
        };
        let cells: Vec<String> = PROBES.iter().map(|&q| format!("{:.4}", at(q))).collect();
        println!("{:<8} | {}", views[t].name, cells.join("  "));
    }
    println!("\n(The Imp neighborhood radius is the 90% point of each row.)");
}
