//! Classifier bake-off: the survey behind [18]'s remark that the tree
//! ensemble had "the best performance among all classifiers we
//! experimented".
//!
//! Each classifier trains on the pooled pair samples of four designs and
//! is tested on the held-out design's samples (balanced classes, so 50% is
//! chance). Reported: held-out accuracy, mean probability assigned to true
//! matches, and train/inference runtime.

use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_attack::features::FeatureSet;
use sm_attack::neighborhood::neighborhood_radius;
use sm_attack::samples::{generate_samples, SampleOptions};
use sm_bench::{dur, header, pct, row, Harness};
use sm_layout::SplitView;
use sm_ml::{
    Bagging, Dataset, GaussianNaiveBayes, KNearest, LogisticParams, LogisticRegression,
    RandomTreeLearner, RepTreeLearner,
};

/// A trained model type-erased to its probability function.
type ProbaFn = Box<dyn Fn(&[f64]) -> f64>;

/// A classifier under comparison.
struct Contender {
    name: &'static str,
    train: Box<dyn Fn(&Dataset) -> ProbaFn>,
}

fn contenders() -> Vec<Contender> {
    vec![
        Contender {
            name: "Bagging+REP10",
            train: Box::new(|ds| {
                let m = Bagging::fit(ds, &RepTreeLearner::default(), 10, 1).expect("fit");
                Box::new(move |x| m.proba(x))
            }),
        },
        Contender {
            name: "RandForest100",
            train: Box::new(|ds| {
                let m = Bagging::fit(ds, &RandomTreeLearner::default(), 100, 1).expect("fit");
                Box::new(move |x| m.proba(x))
            }),
        },
        Contender {
            name: "Logistic",
            train: Box::new(|ds| {
                let m = LogisticRegression::fit(ds, &LogisticParams::default(), 1).expect("fit");
                Box::new(move |x| m.proba(x))
            }),
        },
        Contender {
            name: "NaiveBayes",
            train: Box::new(|ds| {
                let m = GaussianNaiveBayes::fit(ds).expect("fit");
                Box::new(move |x| m.proba(x))
            }),
        },
        Contender {
            name: "kNN (k=9)",
            train: Box::new(|ds| {
                let m = KNearest::fit(ds, 9).expect("fit");
                Box::new(move |x| m.proba(x))
            }),
        },
    ]
}

fn main() {
    let harness = Harness::from_env();
    let layer = 6u8;
    let views = harness.views(layer);
    let features = FeatureSet::eleven();

    // Leave-one-out at the *sample* level: pooled training samples from
    // four designs, held-out samples from the fifth.
    let t = 0usize; // hold out sb1; sample-level results are stable across folds
    let train_views: Vec<&SplitView> = views
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != t)
        .map(|(_, v)| v)
        .collect();
    let radius = neighborhood_radius(&train_views, 0.9);
    let opts = SampleOptions {
        radius,
        limit_diff_vpin_y: false,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let train_ds = generate_samples(&train_views, &features, opts, None, &mut rng);
    let test_ds = generate_samples(&[&views[t]], &features, opts, None, &mut rng);
    println!(
        "\n=== Classifier comparison (layer {layer}; {} train / {} test samples) ===",
        train_ds.len(),
        test_ds.len()
    );
    header(
        "classifier",
        &["held-out acc", "mean p(match)", "train", "infer"],
    );

    for c in contenders() {
        let t0 = Instant::now();
        let proba = (c.train)(&train_ds);
        let train_time = t0.elapsed();
        let t1 = Instant::now();
        let mut correct = 0usize;
        let mut p_match_sum = 0.0;
        let mut n_match = 0usize;
        for i in 0..test_ds.len() {
            let p = proba(test_ds.row(i));
            if (p >= 0.5) == test_ds.label(i) {
                correct += 1;
            }
            if test_ds.label(i) {
                p_match_sum += p;
                n_match += 1;
            }
        }
        let infer_time = t1.elapsed();
        row(
            c.name,
            &[
                pct(Some(correct as f64 / test_ds.len() as f64)),
                format!("{:.3}", p_match_sum / n_match.max(1) as f64),
                dur(train_time),
                dur(infer_time),
            ],
        );
    }
}
