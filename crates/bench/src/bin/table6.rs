//! Table VI: proximity-attack success with and without y-coordinate
//! obfuscation noise (SD = 1 % and 2 % of the die height) at split layers
//! 6 and 4, configuration `Imp-11`.
//!
//! Expected shape: the attack's PA success drops sharply under 1 % noise
//! (more at layer 6 than layer 4) and 2 % adds little beyond 1 %.

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
use sm_attack::obfuscate::obfuscate_views;
use sm_attack::proximity::{proximity_attack, validate_pa_fraction, DEFAULT_PA_FRACTIONS};
use sm_bench::{header, pct, row, Harness};
use sm_layout::SplitView;

const NOISE_LEVELS: [f64; 3] = [0.0, 0.01, 0.02];

fn main() {
    let harness = Harness::from_env();
    let config = AttackConfig::imp11();

    for layer in [6u8, 4] {
        let clean = harness.views(layer);
        println!("\n=== Table VI — split layer {layer} (Imp-11) ===");
        header("design", &["No noise", "SD = 1%", "SD = 2%"]);
        let mut rates = vec![vec![0.0f64; clean.len()]; NOISE_LEVELS.len()];
        for (ni, &sd) in NOISE_LEVELS.iter().enumerate() {
            let views = if sd == 0.0 {
                clean.clone()
            } else {
                obfuscate_views(&clean, sd, 0x0b5)
            };
            for t in 0..views.len() {
                let train: Vec<&SplitView> = views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != t)
                    .map(|(_, v)| v)
                    .collect();
                let val = validate_pa_fraction(&config, &train, &DEFAULT_PA_FRACTIONS, 31)
                    .expect("validation");
                let model = TrainedAttack::train(&config, &train, None).expect("train");
                let scored = model.score(&views[t], &ScoreOptions::default());
                rates[ni][t] = proximity_attack(&scored, &views[t], val.best_fraction, 37).rate();
            }
        }
        for (t, view) in clean.iter().enumerate() {
            let cells: Vec<String> = (0..NOISE_LEVELS.len())
                .map(|ni| pct(Some(rates[ni][t])))
                .collect();
            row(view.name.as_str(), &cells);
        }
        let n = clean.len() as f64;
        let cells: Vec<String> = rates
            .iter()
            .map(|r| pct(Some(r.iter().sum::<f64>() / n)))
            .collect();
        row("Avg", &cells);
    }
}
