//! Table I: comparison with the prior work [5] at split layers 8, 6, 4.
//!
//! For each design the prior-work baseline reports a (|LoC|, accuracy)
//! operating point; each of our configurations is then read off its own
//! trade-off curve at (a) the same accuracy — reporting how much smaller
//! the LoC is — and (b) the same |LoC| — reporting how much higher the
//! accuracy is.

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::baseline::PriorWorkModel;
use sm_bench::{header, num, pct, row, run_config, Harness};
use sm_layout::SplitView;

/// Window margin at which the prior-work model is evaluated (calibrated so
/// its accuracy sits mid-range, like the published numbers).
const PRIOR_MARGIN: f64 = 1.5;

fn main() {
    let harness = Harness::from_env();
    let configs = AttackConfig::standard_four();

    for layer in [8u8, 6, 4] {
        let views = harness.views(layer);
        let refs: Vec<&SplitView> = views.iter().collect();
        // As in [5]: fit on all designs, no train/test separation.
        let prior = PriorWorkModel::fit(&refs);
        let prior_results: Vec<_> = views
            .iter()
            .map(|v| prior.evaluate(v, PRIOR_MARGIN))
            .collect();

        let runs: Vec<_> = configs
            .iter()
            .map(|c| run_config(c, &views, &ScoreOptions::default()))
            .collect();

        println!("\n=== Table I — split layer {layer} ===");
        let mut cells: Vec<&str> = vec!["#v-pin", "[5] |LoC|", "[5] Acc"];
        for c in &configs {
            cells.push(&c.name);
        }
        for c in &configs {
            cells.push(&c.name);
        }
        header("design", &cells);
        println!(
            "{:>60} {:^60} | {:^60}",
            "", "|LoC| @ [5] accuracy", "accuracy @ [5] |LoC|"
        );

        let mut avg_loc = vec![0.0; configs.len()];
        let mut avg_acc = vec![0.0; configs.len()];
        let mut avg_prior = (0.0f64, 0.0f64, 0.0f64);
        for (d, view) in views.iter().enumerate() {
            let pr = &prior_results[d];
            let mut cells = vec![
                format!("{}", view.num_vpins()),
                format!("{:.1}", pr.mean_loc),
                pct(Some(pr.accuracy)),
            ];
            for (ci, run) in runs.iter().enumerate() {
                let curve = run.folds[d].scored.curve();
                let loc = curve.min_loc_at_accuracy(pr.accuracy).map(|p| p.mean_loc);
                avg_loc[ci] += loc.unwrap_or(f64::NAN) / views.len() as f64;
                cells.push(num(loc));
            }
            for (ci, run) in runs.iter().enumerate() {
                let curve = run.folds[d].scored.curve();
                let acc = curve.max_accuracy_at_loc(pr.mean_loc).map(|p| p.accuracy);
                avg_acc[ci] += acc.unwrap_or(0.0) / views.len() as f64;
                cells.push(pct(acc));
            }
            avg_prior.0 += view.num_vpins() as f64 / views.len() as f64;
            avg_prior.1 += pr.mean_loc / views.len() as f64;
            avg_prior.2 += pr.accuracy / views.len() as f64;
            row(view.name.as_str(), &cells);
        }
        let mut cells = vec![
            format!("{:.0}", avg_prior.0),
            format!("{:.1}", avg_prior.1),
            pct(Some(avg_prior.2)),
        ];
        for v in &avg_loc {
            cells.push(if v.is_nan() {
                "—".into()
            } else {
                format!("{v:.1}")
            });
        }
        for v in &avg_acc {
            cells.push(pct(Some(*v)));
        }
        row("Avg", &cells);
        for (c, run) in configs.iter().zip(&runs) {
            println!("  runtime {}: {}", c.name, sm_bench::dur(run.runtime));
        }
    }
}
