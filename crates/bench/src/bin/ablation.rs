//! Ablation studies of the design choices DESIGN.md calls out, beyond the
//! paper's own tables:
//!
//! 1. **Neighborhood quantile** — the paper fixes 90% and notes the
//!    trade-off qualitatively (Section III-D); we sweep it.
//! 2. **Ensemble size** — Bagging with 1/5/10/20 REPTrees.
//! 3. **Single-feature knockouts** — Imp-11 minus each feature, measuring
//!    each feature's marginal value (complements Fig. 7's univariate
//!    ranking).
//! 4. **Global matching (extension)** — greedy/mutual-best matching on top
//!    of the scored pairs versus the per-v-pin proximity attack.

use sm_attack::attack::{AttackConfig, BaseClassifier, ScoreOptions, TrainedAttack};
use sm_attack::features::{FeatureSet, ALL_FEATURES};
use sm_attack::matching::{greedy_matching, mutual_best};
use sm_attack::proximity::proximity_attack;
use sm_bench::{dur, header, pct, row, run_config, Harness};
use sm_layout::SplitView;

fn main() {
    let harness = Harness::from_env();
    let layer = 6u8;
    let views = harness.views(layer);

    // --- 1. Neighborhood quantile sweep -----------------------------------
    println!("\n=== Ablation 1 — neighborhood quantile (Imp-11, layer {layer}) ===");
    header("quantile", &["max acc", "acc@1%", "pairs", "runtime"]);
    for q in [0.70, 0.80, 0.90, 0.95, 0.99] {
        let mut cfg = AttackConfig::imp11();
        cfg.neighborhood_quantile = q;
        cfg.name = format!("q={q:.2}");
        let run = run_config(&cfg, &views, &ScoreOptions::default());
        let pairs: u64 = run.folds.iter().map(|f| f.scored.pairs_scored).sum();
        let sat: f64 = run
            .folds
            .iter()
            .map(|f| f.scored.max_accuracy())
            .sum::<f64>()
            / run.folds.len() as f64;
        row(
            &cfg.name,
            &[
                pct(Some(sat)),
                pct(run.curve.accuracy_at_loc_fraction(0.01)),
                format!("{}M", pairs / 1_000_000),
                dur(run.runtime),
            ],
        );
    }

    // --- 2. Ensemble size --------------------------------------------------
    println!("\n=== Ablation 2 — ensemble size (Imp-11, layer {layer}) ===");
    header("trees", &["acc@1%", "acc@10%", "runtime"]);
    for n in [1usize, 5, 10, 20] {
        let mut cfg = AttackConfig::imp11();
        cfg.base = BaseClassifier::RepTreeBagging { n_trees: n };
        cfg.name = format!("{n} trees");
        let run = run_config(&cfg, &views, &ScoreOptions::default());
        row(
            &cfg.name,
            &[
                pct(run.curve.accuracy_at_loc_fraction(0.01)),
                pct(run.curve.accuracy_at_loc_fraction(0.10)),
                dur(run.runtime),
            ],
        );
    }

    // --- 3. Feature knockouts ----------------------------------------------
    println!("\n=== Ablation 3 — Imp-11 minus one feature (layer {layer}) ===");
    header("dropped", &["acc@1%", "acc@10%"]);
    let full = run_config(&AttackConfig::imp11(), &views, &ScoreOptions::default());
    row(
        "(none)",
        &[
            pct(full.curve.accuracy_at_loc_fraction(0.01)),
            pct(full.curve.accuracy_at_loc_fraction(0.10)),
        ],
    );
    for drop in ALL_FEATURES {
        let feats: Vec<_> = ALL_FEATURES
            .iter()
            .copied()
            .filter(|f| *f != drop)
            .collect();
        let mut cfg = AttackConfig::imp11();
        cfg.features = FeatureSet::custom(feats);
        cfg.name = format!("-{}", drop.name());
        let run = run_config(&cfg, &views, &ScoreOptions::default());
        row(
            &cfg.name,
            &[
                pct(run.curve.accuracy_at_loc_fraction(0.01)),
                pct(run.curve.accuracy_at_loc_fraction(0.10)),
            ],
        );
    }

    // --- 4. Global matching extension ---------------------------------------
    println!("\n=== Ablation 4 — global matching vs proximity attack (layer {layer}) ===");
    header(
        "design",
        &["PA (f=.005)", "greedy prec", "greedy recall", "mutual prec"],
    );
    for t in 0..views.len() {
        let train: Vec<&SplitView> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != t)
            .map(|(_, v)| v)
            .collect();
        let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
        let scored = model.score(&views[t], &ScoreOptions::default());
        let pa = proximity_attack(&scored, &views[t], 0.005, 41);
        let greedy = greedy_matching(&scored, &views[t], 0.5);
        let mutual = mutual_best(&scored, &views[t], 0.5);
        row(
            views[t].name.as_str(),
            &[
                pct(Some(pa.rate())),
                pct(Some(greedy.precision())),
                pct(Some(greedy.recall())),
                pct(Some(mutual.precision())),
            ],
        );
    }
}
