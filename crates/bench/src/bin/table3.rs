//! Table III: two-level pruning versus no pruning with `Imp-11` at split
//! layer 8 (plus the paper's negative result at layer 6).
//!
//! Expected shape: at layer 8, Level 2 shrinks the LoC and/or raises
//! accuracy at a matched LoC for most designs; at layer 6 the Level-1
//! model is too weak for Level-2 negatives to help.

use std::time::Instant;

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::two_level::two_level_attack;
use sm_bench::{dur, header, pct, row, Harness};
use sm_layout::SplitView;

fn main() {
    let harness = Harness::from_env();
    let config = AttackConfig::imp11();

    for layer in [8u8, 6] {
        let views = harness.views(layer);
        println!("\n=== Table III — split layer {layer} (Imp-11) ===");
        header(
            "design",
            &[
                "2L |LoC|",
                "2L Acc",
                "1L |LoC|",
                "1L Acc",
                "2L@1L|LoC|",
                "2L acc@2",
                "1L acc@2",
            ],
        );
        let t0 = Instant::now();
        let mut avg = [0.0f64; 7];
        for t in 0..views.len() {
            let train: Vec<&SplitView> = views
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != t)
                .map(|(_, v)| v)
                .collect();
            let out = two_level_attack(&config, &train, &views[t], &ScoreOptions::default())
                .expect("two-level attack");
            let (l1, l2) = (&out.level1, &out.level2);
            // The headline comparison at the default threshold, plus the
            // aligned comparison: Level-2 accuracy when its LoC is capped
            // at Level-1's size.
            let aligned = l2
                .curve()
                .max_accuracy_at_loc(l1.mean_loc_at(0.5))
                .map(|p| p.accuracy);
            // Tight-budget comparison: accuracy when each level may keep
            // only ~2 candidates per v-pin — where better ordering inside
            // the Level-1 LoC pays off.
            let l2_at2 = l2.curve().max_accuracy_at_loc(2.0).map(|p| p.accuracy);
            let l1_at2 = l1.curve().max_accuracy_at_loc(2.0).map(|p| p.accuracy);
            let cells = vec![
                format!("{:.2}", l2.mean_loc_at(0.5)),
                pct(Some(l2.accuracy_at(0.5))),
                format!("{:.2}", l1.mean_loc_at(0.5)),
                pct(Some(l1.accuracy_at(0.5))),
                pct(aligned),
                pct(l2_at2),
                pct(l1_at2),
            ];
            avg[0] += l2.mean_loc_at(0.5) / views.len() as f64;
            avg[1] += l2.accuracy_at(0.5) / views.len() as f64;
            avg[2] += l1.mean_loc_at(0.5) / views.len() as f64;
            avg[3] += l1.accuracy_at(0.5) / views.len() as f64;
            avg[4] += aligned.unwrap_or(0.0) / views.len() as f64;
            avg[5] += l2_at2.unwrap_or(0.0) / views.len() as f64;
            avg[6] += l1_at2.unwrap_or(0.0) / views.len() as f64;
            row(views[t].name.as_str(), &cells);
        }
        row(
            "Avg",
            &[
                format!("{:.2}", avg[0]),
                pct(Some(avg[1])),
                format!("{:.2}", avg[2]),
                pct(Some(avg[3])),
                pct(Some(avg[4])),
                pct(Some(avg[5])),
                pct(Some(avg[6])),
            ],
        );
        println!("  runtime (both levels, all folds): {}", dur(t0.elapsed()));
    }
}
