//! Fig. 7: relative ranking of the 11 layout features by information gain,
//! |correlation|, and Fisher's discriminant ratio — per design, for split
//! layers 4, 6, 8.
//!
//! Expected shape: v-pin location features (ManhattanVpin, DiffVpinX/Y)
//! dominate; DiffVpinY's information gain is uniquely high at layer 8 (the
//! top metal layer routes in one direction); importances generally decay
//! toward lower layers.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_attack::features::{FeatureSet, ALL_FEATURES};
use sm_attack::neighborhood::neighborhood_radius;
use sm_attack::samples::{generate_samples, SampleOptions};
use sm_bench::Harness;
use sm_layout::SplitView;
use sm_ml::metrics::rank_features;

fn main() {
    let harness = Harness::from_env();

    for layer in [8u8, 6, 4] {
        let views = harness.views(layer);
        println!("\n=== Fig. 7 — feature metrics, split layer {layer} ===");
        for metric in ["info-gain", "correlation", "fisher"] {
            println!("\n[{metric}]");
            print!("{:<22}", "feature");
            for v in &views {
                print!(" {:>9}", v.name);
            }
            println!();
            // Metrics are computed on each design's own Imp training
            // samples (radius from the other N−1 designs, as in training).
            let mut scores = vec![vec![0.0f64; views.len()]; ALL_FEATURES.len()];
            for (d, view) in views.iter().enumerate() {
                let others: Vec<&SplitView> = views
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != d)
                    .map(|(_, v)| v)
                    .collect();
                let radius = neighborhood_radius(&others, 0.9);
                let mut rng = ChaCha8Rng::seed_from_u64(7 + d as u64);
                let ds = generate_samples(
                    &[view],
                    &FeatureSet::eleven(),
                    SampleOptions {
                        radius,
                        limit_diff_vpin_y: false,
                    },
                    None,
                    &mut rng,
                );
                for s in rank_features(&ds) {
                    scores[s.feature][d] = match metric {
                        "info-gain" => s.info_gain,
                        "correlation" => s.correlation,
                        _ => s.fisher,
                    };
                }
            }
            for (f, feat) in ALL_FEATURES.iter().enumerate() {
                print!("{:<22}", feat.name());
                for s in scores[f].iter().take(views.len()) {
                    print!(" {s:>9.4}");
                }
                println!();
            }
        }
    }
}
