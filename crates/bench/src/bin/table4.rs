//! Table IV: every model configuration across split layers — LoC fraction
//! at fixed accuracies, accuracy at fixed LoC fractions, and runtime.
//! Layer 8 additionally evaluates the `Y` (DiffVpinY-limited) variants.
//!
//! Expected shape: layer 8 reaches ~100 % accuracy at tiny LoC fractions;
//! layers 6 and 4 degrade; `Imp` variants run faster than `ML-9` with a
//! saturation plateau; `Y` variants improve layer 8 further.

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_bench::{dur, header, pct, row, run_config, Harness};

const ACC_TARGETS: [f64; 4] = [0.95, 0.90, 0.80, 0.50];
const LOC_FRACTIONS: [f64; 4] = [0.0001, 0.001, 0.01, 0.10];

fn main() {
    let harness = Harness::from_env();

    for layer in [8u8, 6, 4] {
        let configs = if layer == 8 {
            AttackConfig::standard_eight()
        } else {
            AttackConfig::standard_four()
        };
        let views = harness.views(layer);
        println!("\n=== Table IV — split layer {layer} ===");
        header(
            "config",
            &[
                "frac@95%", "frac@90%", "frac@80%", "frac@50%", "acc@.01%", "acc@0.1%", "acc@1%",
                "acc@10%", "runtime",
            ],
        );
        for config in &configs {
            let run = run_config(config, &views, &ScoreOptions::default());
            let mut cells: Vec<String> = ACC_TARGETS
                .iter()
                .map(|&a| {
                    run.curve
                        .min_loc_fraction_at_accuracy(a)
                        .map_or("—".to_owned(), |f| format!("{:.3}%", 100.0 * f))
                })
                .collect();
            cells.extend(
                LOC_FRACTIONS
                    .iter()
                    .map(|&f| pct(run.curve.accuracy_at_loc_fraction(f))),
            );
            cells.push(dur(run.runtime));
            row(&config.name, &cells);
        }
    }
}
