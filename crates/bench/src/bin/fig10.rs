//! Fig. 10: LoC-fraction/accuracy trade-off with and without obfuscation
//! noise on the v-pin y-coordinates (Imp-11, split layers 6 and 4).
//!
//! Expected shape: the noisy curves sit clearly below the clean ones (the
//! attack loses up to tens of accuracy points at a fixed fraction); the
//! gap is larger at layer 6 than at layer 4 (layer 4's natural y-variation
//! already dwarfs the added noise); 2 % noise adds little over 1 %.

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::obfuscate::obfuscate_views;
use sm_bench::{run_config, Harness};

const SAMPLES: [f64; 10] = [0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.5, 1.0];
const NOISE_LEVELS: [f64; 3] = [0.0, 0.01, 0.02];

fn main() {
    let harness = Harness::from_env();
    let config = AttackConfig::imp11();

    for layer in [6u8, 4] {
        let clean = harness.views(layer);
        println!("\n=== Fig. 10 — obfuscation trade-off, split layer {layer} (Imp-11) ===");
        print!("{:<12}", "noise SD");
        for s in SAMPLES {
            print!(" {:>9}", format!("{s:.4}"));
        }
        println!();
        for &sd in &NOISE_LEVELS {
            let views = if sd == 0.0 {
                clean.clone()
            } else {
                obfuscate_views(&clean, sd, 0xf16)
            };
            let run = run_config(&config, &views, &ScoreOptions::default());
            print!("{:<12}", format!("{:.0}%", sd * 100.0));
            for s in SAMPLES {
                match run.curve.accuracy_at_loc_fraction(s) {
                    Some(a) => print!(" {:>9.4}", a),
                    None => print!(" {:>9}", "—"),
                }
            }
            println!();
        }
    }
}
