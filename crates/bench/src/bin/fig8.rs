//! Fig. 8: distributions of the 11 layout features in the split-layer-6
//! training set, matching versus non-matching pairs (all five benchmarks
//! pooled).
//!
//! Printed as per-class deciles. Expected shape: heavy overlap everywhere
//! (no single feature separates the classes), much tighter matching-class
//! distributions for the v-pin location features, near-identical classes
//! for PlacementCongestion, and extreme outliers in TotalWirelength /
//! TotalArea / DiffArea from macros.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_attack::features::{FeatureSet, ALL_FEATURES};
use sm_attack::neighborhood::neighborhood_radius;
use sm_attack::samples::{generate_samples, SampleOptions};
use sm_bench::Harness;
use sm_layout::SplitView;

fn deciles(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        return vec![0.0; 5];
    }
    [0.1, 0.25, 0.5, 0.75, 0.9]
        .iter()
        .map(|q| xs[((xs.len() - 1) as f64 * q).round() as usize])
        .collect()
}

fn main() {
    let harness = Harness::from_env();
    let views = harness.views(6);
    let refs: Vec<&SplitView> = views.iter().collect();
    let radius = neighborhood_radius(&refs, 0.9);
    let mut rng = ChaCha8Rng::seed_from_u64(88);
    let ds = generate_samples(
        &refs,
        &FeatureSet::eleven(),
        SampleOptions {
            radius,
            limit_diff_vpin_y: false,
        },
        None,
        &mut rng,
    );
    println!(
        "\n=== Fig. 8 — feature distributions, layer 6 training set ({} samples, {} positive) ===",
        ds.len(),
        ds.num_positive()
    );
    println!(
        "{:<22} {:>6} | {:>12} {:>12} {:>12} {:>12} {:>12}",
        "feature", "class", "p10", "p25", "p50", "p75", "p90"
    );
    for (j, feat) in ALL_FEATURES.iter().enumerate() {
        for (class, label) in [("match", true), ("non", false)] {
            let col: Vec<f64> = (0..ds.len())
                .filter(|&i| ds.label(i) == label)
                .map(|i| ds.feature(i, j))
                .collect();
            let d = deciles(col);
            println!(
                "{:<22} {:>6} | {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                feat.name(),
                class,
                d[0],
                d[1],
                d[2],
                d[3],
                d[4]
            );
        }
    }
}
