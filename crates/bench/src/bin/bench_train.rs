//! Training-kernel benchmark: the binned (histogram split-finding with
//! sibling subtraction) tree backend versus the reference exact-sort
//! backend, fitting the same ensemble on the same sample set.
//!
//! Training is forced to `Parallelism::Sequential` so the reported ratio
//! is a pure single-thread kernel comparison (the CI host has one CPU;
//! thread-level parallelism would only add noise). Sample extraction is
//! backend-independent, so it is timed once and reported separately: the
//! gate compares fit time only, where the backends actually differ.
//!
//! Emits a machine-readable report (`BENCH_train.json` shape) and exits
//! nonzero if the binned backend is not faster than the reference — the
//! CI guard against training-performance regressions. The two fitted
//! models are also asserted equal, so the guard doubles as an end-to-end
//! bit-identity check on the benchmark workload.
//!
//! ```bash
//! SM_SCALE=0.2 cargo run --release -p sm-bench --bin bench_train -- results/BENCH_train.json
//! ```

use std::time::Instant;

use serde::Serialize;
use sm_attack::attack::{AttackConfig, TrainOptions, TrainedAttack};
use sm_attack::{Parallelism, TreeBackend};
use sm_bench::Harness;
use sm_layout::SplitView;
use sm_ml::Dataset;

/// Measured iterations per backend; the fastest is reported (standard
/// best-of-N to shed scheduler noise without a long run).
const ITERS: usize = 3;

#[derive(Serialize)]
struct BackendResult {
    /// Fastest ensemble fit, seconds (sample extraction excluded).
    best_fit_s: f64,
    /// Training samples consumed per second of fit time.
    samples_per_s: f64,
}

#[derive(Serialize)]
struct Report {
    scale: f64,
    split_layer: u8,
    config: String,
    n_trees: usize,
    num_samples: usize,
    num_features: usize,
    /// Seconds spent extracting the sample set (backend-independent,
    /// measured once, outside the gated comparison).
    sample_extraction_s: f64,
    reference: BackendResult,
    binned: BackendResult,
    /// Fit-stage speedup: reference best fit / binned best fit.
    fit_speedup: f64,
    /// End-to-end speedup with the shared extraction stage included:
    /// (extraction + reference fit) / (extraction + binned fit).
    train_speedup: f64,
}

fn time_fit(
    config: &AttackConfig,
    samples: &Dataset,
    radius: Option<i64>,
    backend: TreeBackend,
) -> (f64, TrainedAttack) {
    let options = TrainOptions { backend };
    let mut best = f64::INFINITY;
    let mut model = None;
    // First pass doubles as warm-up; it can only lose the min race.
    for _ in 0..=ITERS {
        let owned = samples.clone();
        let t = Instant::now();
        let fitted = TrainedAttack::from_samples(config, owned, radius, options).expect("fit");
        best = best.min(t.elapsed().as_secs_f64());
        model = Some(fitted);
    }
    (best, model.expect("at least one fit ran"))
}

fn main() {
    let out_path = std::env::args().nth(1);
    let harness = Harness::from_env();
    let layer = 8u8;
    let views = harness.views(layer);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    // The paper's flagship configuration (all 11 features, neighborhood
    // restriction); override with SM_BENCH_CONFIG=ml-9|imp-7|imp-9|imp-11.
    let config = match std::env::var("SM_BENCH_CONFIG").as_deref() {
        Ok("ml-9") => AttackConfig::ml9(),
        Ok("imp-7") => AttackConfig::imp7(),
        Ok("imp-9") => AttackConfig::imp9(),
        Ok("imp-11") | Err(_) => AttackConfig::imp11(),
        Ok(other) => panic!("unknown SM_BENCH_CONFIG {other:?}"),
    };
    let config = config.with_parallelism(Parallelism::Sequential);
    let n_trees = match config.base {
        sm_attack::attack::BaseClassifier::RepTreeBagging { n_trees }
        | sm_attack::attack::BaseClassifier::RandomTreeBagging { n_trees } => n_trees,
    };

    eprintln!("[bench_train] extracting {} samples ...", config.name);
    let t = Instant::now();
    let (samples, radius) =
        TrainedAttack::prepare_samples(&config, &train, None).expect("sample extraction");
    let sample_extraction_s = t.elapsed().as_secs_f64();
    eprintln!(
        "[bench_train] {} samples x {} features in {sample_extraction_s:.3}s",
        samples.len(),
        samples.num_features()
    );

    eprintln!("[bench_train] fitting with reference backend ...");
    let (ref_s, ref_model) = time_fit(&config, &samples, radius, TreeBackend::Reference);
    eprintln!("[bench_train] fitting with binned backend ...");
    let (bin_s, bin_model) = time_fit(&config, &samples, radius, TreeBackend::Binned);
    assert_eq!(
        ref_model, bin_model,
        "backends must produce bit-identical models"
    );

    let report = Report {
        scale: harness.scale(),
        split_layer: layer,
        config: config.name.clone(),
        n_trees,
        num_samples: samples.len(),
        num_features: samples.num_features(),
        sample_extraction_s,
        reference: BackendResult {
            best_fit_s: ref_s,
            samples_per_s: samples.len() as f64 / ref_s,
        },
        binned: BackendResult {
            best_fit_s: bin_s,
            samples_per_s: samples.len() as f64 / bin_s,
        },
        fit_speedup: ref_s / bin_s,
        train_speedup: (sample_extraction_s + ref_s) / (sample_extraction_s + bin_s),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, json + "\n").expect("write report");
        eprintln!("[bench_train] wrote {path}");
    }
    if bin_s >= ref_s {
        eprintln!(
            "[bench_train] FAIL: binned backend ({bin_s:.3}s) is not faster than reference ({ref_s:.3}s)"
        );
        std::process::exit(1);
    }
    eprintln!(
        "[bench_train] binned {:.2}x faster fit ({:.0} vs {:.0} samples/s)",
        report.fit_speedup, report.binned.samples_per_s, report.reference.samples_per_s
    );
}
