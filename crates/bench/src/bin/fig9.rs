//! Fig. 9: trade-off between LoC fraction and accuracy (averaged over the
//! five benchmarks), one curve per configuration per split layer, with the
//! prior work [5] swept across window margins for comparison.
//!
//! Expected shape: ML curves sit far above the prior work everywhere;
//! layer-8 curves hug 100 % accuracy at tiny fractions; `Imp` curves
//! saturate on the right (their neighborhood excludes some matches); at
//! layer 8 the `Y` variants shift the curves up.

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::baseline::PriorWorkModel;
use sm_bench::{run_config, Harness};
use sm_layout::SplitView;

/// LoC fractions at which the curves are sampled (log-spaced).
const SAMPLES: [f64; 12] = [
    0.00003, 0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.3, 0.5, 1.0,
];

const PRIOR_MARGINS: [f64; 7] = [0.25, 0.5, 1.0, 1.5, 2.0, 4.0, 8.0];

fn main() {
    let harness = Harness::from_env();

    for layer in [8u8, 6, 4] {
        let configs = if layer == 8 {
            AttackConfig::standard_eight()
        } else {
            AttackConfig::standard_four()
        };
        let views = harness.views(layer);
        println!("\n=== Fig. 9 — LoC fraction vs accuracy, split layer {layer} ===");
        print!("{:<14}", "config");
        for s in SAMPLES {
            print!(" {:>9}", format!("{s:.5}"));
        }
        println!();
        for config in &configs {
            let run = run_config(config, &views, &ScoreOptions::default());
            print!("{:<14}", config.name);
            for s in SAMPLES {
                match run.curve.accuracy_at_loc_fraction(s) {
                    Some(a) => print!(" {:>9.4}", a),
                    None => print!(" {:>9}", "—"),
                }
            }
            println!();
        }
        // Prior work: margin sweep, averaged over benchmarks.
        let refs: Vec<&SplitView> = views.iter().collect();
        let prior = PriorWorkModel::fit(&refs);
        print!("{:<14}", "[5] margins");
        for &m in &PRIOR_MARGINS {
            let mut frac = 0.0;
            let mut acc = 0.0;
            for v in &views {
                let r = prior.evaluate(v, m);
                frac += r.loc_fraction / views.len() as f64;
                acc += r.accuracy / views.len() as f64;
            }
            print!(" {:>14}", format!("({frac:.4},{acc:.3})"));
        }
        println!("   [as (loc-fraction, accuracy) pairs]");
    }
}
