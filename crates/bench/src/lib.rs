//! # sm-bench — experiment harness reproducing the paper's evaluation
//!
//! One binary per table/figure of the paper (`table1`–`table6`,
//! `fig4`–`fig10`), sharing the drivers in this library. Every binary
//! honours the `SM_SCALE` environment variable (default 1.0 = benchmarks
//! with 1/20 of the paper's v-pin counts) and prints plain-text tables
//! whose rows mirror the paper's.
//!
//! ```bash
//! cargo run --release -p sm-bench --bin table1          # full size
//! SM_SCALE=0.2 cargo run --release -p sm-bench --bin table5   # quick pass
//! ```

use std::time::{Duration, Instant};

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::loc::LocCurve;
use sm_attack::xval::{leave_one_out, FoldResult};
use sm_layout::{SplitLayer, SplitView, Suite};

/// Reads the benchmark scale from `SM_SCALE` (default 1.0 = 1/20 of the
/// paper's layout sizes).
pub fn scale_from_env() -> f64 {
    std::env::var("SM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The generated suite plus cached split views, shared by every harness.
pub struct Harness {
    suite: Suite,
    scale: f64,
}

impl Harness {
    /// Builds the suite at the `SM_SCALE` scale, logging progress to
    /// stderr.
    ///
    /// # Panics
    ///
    /// Panics if the suite cannot be generated (invalid scale).
    pub fn from_env() -> Self {
        let scale = scale_from_env();
        eprintln!("[harness] generating ISPD-2011-like suite at scale {scale} ...");
        let t = Instant::now();
        let suite = Suite::ispd2011_like(scale).expect("suite generation");
        eprintln!("[harness] suite ready in {:.1?}", t.elapsed());
        Self { suite, scale }
    }

    /// The benchmark scale in effect.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The underlying suite.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    /// Splits every benchmark at via layer `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid split layer.
    pub fn views(&self, v: u8) -> Vec<SplitView> {
        let layer = SplitLayer::new(v).expect("valid split layer");
        let t = Instant::now();
        let views = self.suite.split_all(layer);
        let total: usize = views.iter().map(SplitView::num_vpins).sum();
        eprintln!(
            "[harness] split layer {v}: {total} v-pins across {} designs ({:.1?})",
            views.len(),
            t.elapsed()
        );
        views
    }
}

/// Leave-one-out folds plus the benchmark-averaged trade-off curve.
pub struct ConfigRun {
    /// Per-fold results in suite order.
    pub folds: Vec<FoldResult>,
    /// Curve averaged over the five benchmarks.
    pub curve: LocCurve,
    /// Total wall-clock time (train + score, all folds).
    pub runtime: Duration,
}

/// Runs a configuration's full leave-one-out evaluation.
///
/// # Panics
///
/// Panics on attack errors (harness binaries fail loudly).
pub fn run_config(config: &AttackConfig, views: &[SplitView], opts: &ScoreOptions) -> ConfigRun {
    let t = Instant::now();
    let folds = leave_one_out(config, views, opts)
        .unwrap_or_else(|e| panic!("{} failed: {e}", config.name));
    let runtime = t.elapsed();
    let scored: Vec<_> = folds.iter().map(|f| f.scored.clone()).collect();
    let curve = LocCurve::from_views(&scored);
    ConfigRun {
        folds,
        curve,
        runtime,
    }
}

/// Formats an optional percentage (`None` prints as a dash, matching the
/// paper's saturated entries).
pub fn pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:.2}%", 100.0 * v),
        None => "—".to_owned(),
    }
}

/// Formats an optional real with one decimal.
pub fn num(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.1}"),
        None => "—".to_owned(),
    }
}

/// Formats a duration compactly (s / min as appropriate).
pub fn dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 120.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Prints a ruled table row: a label column then fixed-width cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" | {c:>12}");
    }
    println!();
}

/// Prints a header row and a rule under it.
pub fn header(label: &str, cells: &[&str]) {
    let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
    row(label, &owned);
    println!("{}", "-".repeat(14 + cells.len() * 15));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(Some(0.5)), "50.00%");
        assert_eq!(pct(None), "—");
        assert_eq!(num(Some(12.34)), "12.3");
        assert_eq!(dur(Duration::from_secs(30)), "30.0 s");
        assert_eq!(dur(Duration::from_secs(300)), "5.0 min");
    }

    #[test]
    fn scale_env_default_is_one() {
        // The variable may be set by an outer harness; only assert the
        // parse fallback.
        if std::env::var("SM_SCALE").is_err() {
            assert_eq!(scale_from_env(), 1.0);
        }
    }
}
