//! # sm-bench — experiment harness reproducing the paper's evaluation
//!
//! One binary per table/figure of the paper (`table1`–`table6`,
//! `fig4`–`fig10`), sharing the drivers in this library. Every binary
//! honours the `SM_SCALE` environment variable (default 1.0 = benchmarks
//! with 1/20 of the paper's v-pin counts) and prints plain-text tables
//! whose rows mirror the paper's.
//!
//! ```bash
//! cargo run --release -p sm-bench --bin table1          # full size
//! SM_SCALE=0.2 cargo run --release -p sm-bench --bin table5   # quick pass
//! ```

use std::time::{Duration, Instant};

use sm_attack::attack::{AttackConfig, ScoreOptions};
use sm_attack::loc::{LocCurve, LocCurveBuilder};
use sm_attack::xval::{leave_one_out, FoldResult};
use sm_layout::{SplitLayer, SplitView, Suite};

/// Parses an `SM_SCALE` value: a finite number strictly greater than
/// zero.
///
/// # Errors
///
/// Returns a human-readable message for anything else — unparsable text,
/// NaN, infinities, zero, negatives.
pub fn parse_scale(s: &str) -> Result<f64, String> {
    match s.trim().parse::<f64>() {
        Err(_) => Err(format!("SM_SCALE must be a number, got '{s}'")),
        Ok(v) if !v.is_finite() => Err(format!("SM_SCALE must be finite, got '{s}'")),
        Ok(v) if v <= 0.0 => Err(format!("SM_SCALE must be positive, got '{s}'")),
        Ok(v) => Ok(v),
    }
}

/// Reads the benchmark scale from `SM_SCALE` (default 1.0 = 1/20 of the
/// paper's layout sizes).
///
/// An invalid value terminates the process with a clear error on stderr —
/// a typo like `SM_SCALE=1O` must never silently fall back to running the
/// whole experiment at the default scale.
pub fn scale_from_env() -> f64 {
    match std::env::var("SM_SCALE") {
        Err(_) => 1.0,
        Ok(s) => parse_scale(&s).unwrap_or_else(|e| {
            eprintln!("[harness] {e}");
            std::process::exit(2);
        }),
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable. Benchmarks report this as the
/// memory bound their streaming claims rest on.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// The generated suite plus cached split views, shared by every harness.
pub struct Harness {
    suite: Suite,
    scale: f64,
}

impl Harness {
    /// Builds the suite at the `SM_SCALE` scale, logging progress to
    /// stderr.
    ///
    /// # Panics
    ///
    /// Panics if the suite cannot be generated (invalid scale).
    pub fn from_env() -> Self {
        let scale = scale_from_env();
        eprintln!("[harness] generating ISPD-2011-like suite at scale {scale} ...");
        let t = Instant::now();
        let suite = Suite::ispd2011_like(scale).expect("suite generation");
        eprintln!("[harness] suite ready in {:.1?}", t.elapsed());
        Self { suite, scale }
    }

    /// The benchmark scale in effect.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The underlying suite.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    /// Splits every benchmark at via layer `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a valid split layer.
    pub fn views(&self, v: u8) -> Vec<SplitView> {
        let layer = SplitLayer::new(v).expect("valid split layer");
        let t = Instant::now();
        let views = self.suite.split_all(layer);
        let total: usize = views.iter().map(SplitView::num_vpins).sum();
        eprintln!(
            "[harness] split layer {v}: {total} v-pins across {} designs ({:.1?})",
            views.len(),
            t.elapsed()
        );
        views
    }
}

/// Leave-one-out folds plus the benchmark-averaged trade-off curve.
pub struct ConfigRun {
    /// Per-fold results in suite order.
    pub folds: Vec<FoldResult>,
    /// Curve averaged over the five benchmarks.
    pub curve: LocCurve,
    /// Total wall-clock time (train + score, all folds).
    pub runtime: Duration,
}

/// Runs a configuration's full leave-one-out evaluation.
///
/// # Panics
///
/// Panics on attack errors (harness binaries fail loudly).
pub fn run_config(config: &AttackConfig, views: &[SplitView], opts: &ScoreOptions) -> ConfigRun {
    let t = Instant::now();
    let folds = leave_one_out(config, views, opts)
        .unwrap_or_else(|e| panic!("{} failed: {e}", config.name));
    let runtime = t.elapsed();
    // Fold the curve incrementally instead of cloning every scored view;
    // LocCurveBuilder is bit-identical to LocCurve::from_views.
    let mut builder = LocCurveBuilder::new();
    for fold in &folds {
        builder.add_view(&fold.scored);
    }
    let curve = builder.finish();
    ConfigRun {
        folds,
        curve,
        runtime,
    }
}

/// Formats an optional percentage (`None` prints as a dash, matching the
/// paper's saturated entries).
pub fn pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:.2}%", 100.0 * v),
        None => "—".to_owned(),
    }
}

/// Formats an optional real with one decimal.
pub fn num(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.1}"),
        None => "—".to_owned(),
    }
}

/// Formats a duration compactly (s / min as appropriate).
pub fn dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 120.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

/// Prints a ruled table row: a label column then fixed-width cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" | {c:>12}");
    }
    println!();
}

/// Prints a header row and a rule under it.
pub fn header(label: &str, cells: &[&str]) {
    let owned: Vec<String> = cells.iter().map(|c| (*c).to_owned()).collect();
    row(label, &owned);
    println!("{}", "-".repeat(14 + cells.len() * 15));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(Some(0.5)), "50.00%");
        assert_eq!(pct(None), "—");
        assert_eq!(num(Some(12.34)), "12.3");
        assert_eq!(dur(Duration::from_secs(30)), "30.0 s");
        assert_eq!(dur(Duration::from_secs(300)), "5.0 min");
    }

    #[test]
    fn scale_env_default_is_one() {
        // The variable may be set by an outer harness; only assert the
        // unset fallback.
        if std::env::var("SM_SCALE").is_err() {
            assert_eq!(scale_from_env(), 1.0);
        }
    }

    #[test]
    fn scale_parsing_accepts_positive_finite_numbers() {
        assert_eq!(parse_scale("1.0"), Ok(1.0));
        assert_eq!(parse_scale("0.2"), Ok(0.2));
        assert_eq!(parse_scale(" 10 "), Ok(10.0));
        assert_eq!(parse_scale("2e1"), Ok(20.0));
    }

    #[test]
    fn scale_parsing_rejects_garbage_and_nonpositive_values() {
        // The `SM_SCALE=1O` typo class: must be an error, never a silent
        // fallback to 1.0.
        for bad in ["1O", "", "ten", "1.0.0", "0x2"] {
            assert!(
                parse_scale(bad).is_err(),
                "'{bad}' must be rejected as unparsable"
            );
        }
        for bad in ["NaN", "nan", "inf", "-inf", "0", "0.0", "-1", "-0.5"] {
            assert!(
                parse_scale(bad).is_err(),
                "'{bad}' must be rejected as non-positive or non-finite"
            );
        }
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // The test itself runs on Linux in CI and locally; a few megabytes
        // of RSS is guaranteed by the test harness alone.
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }
}
