//! Criterion benchmarks of the decision-tree substrate: single-tree
//! fitting (pruned vs unpruned), pruning overhead, and per-sample
//! inference — the primitives whose costs Table II aggregates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_ml::learners::{RandomTreeLearner, RepTreeLearner, TreeLearner};
use sm_ml::tree::{Tree, TreeParams};
use sm_ml::Dataset;

fn noisy_dataset(n: usize, m: usize) -> Dataset {
    let mut ds = Dataset::new(m);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for _ in 0..n {
        let mut x: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..1.0)).collect();
        let label = if rng.gen_bool(0.15) {
            x[0] <= 0.5
        } else {
            x[0] > 0.5
        };
        x[1] = x[0] * 0.7 + x[1] * 0.3;
        ds.push(&x, label).expect("arity");
    }
    ds
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_fit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [5_000usize, 20_000] {
        let ds = noisy_dataset(n, 11);
        let idx = ds.all_indices();
        group.bench_with_input(BenchmarkId::new("unpruned", n), &ds, |b, d| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                Tree::fit(d, &idx, TreeParams::default(), &mut rng).expect("fit")
            });
        });
        group.bench_with_input(BenchmarkId::new("rep_tree", n), &ds, |b, d| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                RepTreeLearner::default()
                    .fit_tree(d, &idx, &mut rng)
                    .expect("fit")
            });
        });
        group.bench_with_input(BenchmarkId::new("random_tree", n), &ds, |b, d| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                RandomTreeLearner::default()
                    .fit_tree(d, &idx, &mut rng)
                    .expect("fit")
            });
        });
    }
    group.finish();
}

fn bench_tree_inference(c: &mut Criterion) {
    let ds = noisy_dataset(20_000, 11);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pruned = RepTreeLearner::default()
        .fit_tree(&ds, &ds.all_indices(), &mut rng)
        .expect("fit");
    let unpruned = Tree::fit(&ds, &ds.all_indices(), TreeParams::default(), &mut rng).expect("fit");
    let queries: Vec<Vec<f64>> = (0..10_000).map(|i| ds.row(i).to_vec()).collect();
    let mut group = c.benchmark_group("tree_proba_x10k");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("rep_tree", |b| {
        b.iter(|| queries.iter().map(|q| pruned.proba(q)).sum::<f64>());
    });
    group.bench_function("unpruned", |b| {
        b.iter(|| queries.iter().map(|q| unpruned.proba(q)).sum::<f64>());
    });
    group.finish();
}

criterion_group!(benches, bench_tree_fit, bench_tree_inference);
criterion_main!(benches);
