//! Criterion benchmark for the training kernel: the binned (histogram
//! split-finding) tree backend versus the reference exact-scan backend on
//! the same synthetic sample set. The `bench_train` harness binary gates
//! CI on the real attack workload; this group tracks the kernel in
//! isolation across dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_ml::{Bagging, Dataset, RepTreeLearner, TreeBackend};

/// Synthetic pair-classification-like dataset: a distance-dominated signal
/// with noisy secondary features, similar in shape to the attack's samples.
fn training_set(n: usize) -> Dataset {
    let mut ds = Dataset::new(9);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for _ in 0..n {
        let label = rng.gen_bool(0.5);
        let d: f64 = if label {
            rng.gen_range(0.0..0.3)
        } else {
            rng.gen_range(0.1..1.0)
        };
        let mut x = vec![d, d * 0.6, d * 1.6];
        for _ in 0..6 {
            x.push(rng.gen_range(0.0..1.0) + if label { 0.05 } else { 0.0 });
        }
        ds.push(&x, label).expect("9 features");
    }
    ds
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [2_000usize, 8_000] {
        let ds = training_set(n);
        for backend in [TreeBackend::Reference, TreeBackend::Binned] {
            let learner = RepTreeLearner::with_backend(backend);
            group.bench_function(BenchmarkId::new(format!("{backend}"), n), |b| {
                b.iter(|| Bagging::fit(&ds, &learner, 10, 1).expect("fit"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
