//! Criterion benchmarks of the layout substrate: design generation,
//! routing, and split-view extraction — the fixed costs every experiment
//! pays before the attack begins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sm_layout::generator::generate;
use sm_layout::route::route;
use sm_layout::split::SplitView;
use sm_layout::suite::Suite;
use sm_layout::tech::SplitLayer;

fn bench_generate_and_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("design");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for scale in [0.05, 0.2] {
        let spec = Suite::spec_sb1_scaled(scale);
        group.bench_with_input(BenchmarkId::new("generate", scale), &spec, |b, s| {
            b.iter(|| generate(s).expect("generate"));
        });
        let placed = generate(&spec).expect("generate");
        group.bench_with_input(BenchmarkId::new("route", scale), &placed, |b, p| {
            b.iter(|| route(p.clone()));
        });
    }
    group.finish();
}

fn bench_split_extraction(c: &mut Criterion) {
    let routed = route(generate(&Suite::spec_sb1_scaled(0.2)).expect("generate"));
    let mut group = c.benchmark_group("split");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for layer in [8u8, 6, 4] {
        let split = SplitLayer::new(layer).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(layer), &split, |b, s| {
            b.iter(|| SplitView::cut(&routed, *s));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate_and_route, bench_split_extraction);
criterion_main!(benches);
