//! Criterion micro-benchmarks backing Table IV's runtime column: training
//! and scoring cost of the attack configurations per split layer, and the
//! scalability gap between `ML` (all pairs) and `Imp` (neighborhood).
//!
//! Run with `cargo bench -p sm-bench --bench attack_runtime`. Uses a small
//! suite scale so a full criterion pass stays in minutes; the harness
//! binaries measure the full-size runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sm_attack::attack::{AttackConfig, Kernel, ScoreOptions, TrainedAttack};
use sm_attack::Parallelism;
use sm_layout::{SplitLayer, SplitView, Suite};

const BENCH_SCALE: f64 = 0.1;

fn views_at(suite: &Suite, layer: u8) -> Vec<SplitView> {
    suite.split_all(SplitLayer::new(layer).expect("valid layer"))
}

fn bench_training(c: &mut Criterion) {
    let suite = Suite::ispd2011_like(BENCH_SCALE).expect("suite");
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for layer in [8u8, 6] {
        let views = views_at(&suite, layer);
        let train: Vec<&SplitView> = views[1..].iter().collect();
        for config in [
            AttackConfig::ml9(),
            AttackConfig::imp9(),
            AttackConfig::imp11(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(config.name.clone(), format!("layer{layer}")),
                &config,
                |b, cfg| {
                    b.iter(|| TrainedAttack::train(cfg, &train, None).expect("train"));
                },
            );
        }
    }
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let suite = Suite::ispd2011_like(BENCH_SCALE).expect("suite");
    let mut group = c.benchmark_group("score");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for layer in [8u8, 6] {
        let views = views_at(&suite, layer);
        let train: Vec<&SplitView> = views[1..].iter().collect();
        for config in [AttackConfig::ml9(), AttackConfig::imp9()] {
            let model = TrainedAttack::train(&config, &train, None).expect("train");
            group.bench_with_input(
                BenchmarkId::new(config.name.clone(), format!("layer{layer}")),
                &model,
                |b, m| {
                    b.iter(|| m.score(&views[0], &ScoreOptions::default()));
                },
            );
        }
    }
    group.finish();
}

fn bench_y_limit_speedup(c: &mut Criterion) {
    // Table IV notes the Y variants roughly halve layer-8 runtime; here the
    // effect is much larger because same-track pools are enumerated
    // directly.
    let suite = Suite::ispd2011_like(BENCH_SCALE).expect("suite");
    let views = views_at(&suite, 8);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    let mut group = c.benchmark_group("y_limit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for config in [AttackConfig::imp9(), AttackConfig::imp9().with_y_limit()] {
        let model = TrainedAttack::train(&config, &train, None).expect("train");
        group.bench_with_input(BenchmarkId::from_parameter(&config.name), &model, |b, m| {
            b.iter(|| m.score(&views[0], &ScoreOptions::default()));
        });
    }
    group.finish();
}

fn bench_scoring_kernels(c: &mut Criterion) {
    // Compiled (flattened ensemble + SoA features, batched) vs reference
    // per-pair scoring — same model, same design, bit-identical output.
    // The `BENCH_attack.json` emitter reports the same comparison
    // end-to-end; this group tracks it with criterion statistics.
    let suite = Suite::ispd2011_like(BENCH_SCALE).expect("suite");
    let views = views_at(&suite, 8);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    let mut group = c.benchmark_group("scoring_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for config in [AttackConfig::ml9(), AttackConfig::imp9()] {
        let model = TrainedAttack::train(&config, &train, None).expect("train");
        for kernel in [Kernel::Compiled, Kernel::Reference] {
            let opts = ScoreOptions {
                kernel,
                parallelism: Parallelism::Sequential,
                ..ScoreOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(config.name.clone(), kernel),
                &opts,
                |b, o| {
                    b.iter(|| model.score(&views[0], o));
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // The deterministic parallel layer: identical results at every
    // setting, so this group measures pure wall-clock scaling of pair
    // scoring with worker count (the CHANGES.md speedup figure).
    let suite = Suite::ispd2011_like(BENCH_SCALE).expect("suite");
    let views = views_at(&suite, 6);
    let train: Vec<&SplitView> = views[1..].iter().collect();
    let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
    let mut group = c.benchmark_group("parallel_score");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, par) in [
        ("seq", Parallelism::Sequential),
        ("t2", Parallelism::Threads(2)),
        ("t4", Parallelism::Threads(4)),
    ] {
        let opts = ScoreOptions {
            parallelism: par,
            ..ScoreOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, o| {
            b.iter(|| model.score(&views[0], o));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_scoring,
    bench_scoring_kernels,
    bench_y_limit_speedup,
    bench_parallel_scaling
);
criterion_main!(benches);
