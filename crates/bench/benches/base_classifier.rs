//! Criterion benchmark backing Table II's runtime comparison: fitting and
//! querying Bagging with 10 REPTrees (this paper) versus 100 RandomTrees
//! (the conference version's RandomForest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_ml::{Bagging, Dataset, Parallelism, RandomTreeLearner, RepTreeLearner};

/// Synthetic pair-classification-like dataset: a distance-dominated signal
/// with noisy secondary features, similar in shape to the attack's samples.
fn training_set(n: usize) -> Dataset {
    let mut ds = Dataset::new(9);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for _ in 0..n {
        let label = rng.gen_bool(0.5);
        let d: f64 = if label {
            rng.gen_range(0.0..0.3)
        } else {
            rng.gen_range(0.1..1.0)
        };
        let mut x = vec![d, d * 0.6, d * 1.6];
        for _ in 0..6 {
            x.push(rng.gen_range(0.0..1.0) + if label { 0.05 } else { 0.0 });
        }
        ds.push(&x, label).expect("9 features");
    }
    ds
}

fn bench_fit(c: &mut Criterion) {
    // Small enough that a 100-tree unpruned forest fits a benchmark
    // iteration budget; the harness binaries measure the full-size gap.
    let ds = training_set(6_000);
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function(BenchmarkId::new("bagging", "rep_tree_x10"), |b| {
        b.iter(|| Bagging::fit(&ds, &RepTreeLearner::default(), 10, 1).expect("fit"));
    });
    group.bench_function(BenchmarkId::new("bagging", "random_tree_x100"), |b| {
        b.iter(|| Bagging::fit(&ds, &RandomTreeLearner::default(), 100, 1).expect("fit"));
    });
    // Parallel per-tree fitting (bit-identical ensemble, wall-clock only).
    group.bench_function(BenchmarkId::new("bagging", "rep_tree_x10_t4"), |b| {
        b.iter(|| {
            Bagging::fit_with(
                &ds,
                &RepTreeLearner::default(),
                10,
                1,
                Parallelism::Threads(4),
            )
            .expect("fit")
        });
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let ds = training_set(6_000);
    let rep = Bagging::fit(&ds, &RepTreeLearner::default(), 10, 1).expect("fit");
    let rnd = Bagging::fit(&ds, &RandomTreeLearner::default(), 100, 1).expect("fit");
    let queries: Vec<Vec<f64>> = (0..1_000).map(|i| ds.row(i).to_vec()).collect();
    let mut group = c.benchmark_group("proba_x1000");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("rep_tree_x10", |b| {
        b.iter(|| queries.iter().map(|q| rep.proba(q)).sum::<f64>());
    });
    group.bench_function("random_tree_x100", |b| {
        b.iter(|| queries.iter().map(|q| rnd.proba(q)).sum::<f64>());
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_inference);
criterion_main!(benches);
