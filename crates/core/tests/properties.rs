//! Property-based tests of the attack layer's invariants: feature
//! symmetry, curve monotonicity, and proximity-attack bounds.

use proptest::prelude::*;
use sm_attack::attack::{Cand, ScoredView, VpinScore, HIST_BINS};
use sm_attack::features::{FeatureSet, PairFeature, ALL_FEATURES};
use sm_attack::loc::LocCurve;
use sm_layout::geom::Point;
use sm_layout::VPin;

fn arb_vpin() -> impl Strategy<Value = VPin> {
    (
        -500_000i64..500_000,
        -500_000i64..500_000,
        -500_000i64..500_000,
        -500_000i64..500_000,
        0i64..1_000_000,
        0i64..10_000_000,
        prop::bool::ANY,
        0.0f64..50.0,
        0.0f64..50.0,
    )
        .prop_map(|(vx, vy, px, py, w, area, drives, pc, rc)| VPin {
            loc: Point::new(vx, vy),
            pin_loc: Point::new(px, py),
            wirelength: w,
            in_area: if drives { 0 } else { area },
            out_area: if drives { area } else { 0 },
            pc,
            rc,
        })
}

proptest! {
    #[test]
    fn pair_features_are_symmetric_and_finite(a in arb_vpin(), b in arb_vpin()) {
        for f in ALL_FEATURES {
            let ab = f.compute(&a, &b);
            let ba = f.compute(&b, &a);
            prop_assert_eq!(ab, ba, "{} asymmetric", f);
            prop_assert!(ab.is_finite());
        }
        // Distance-like features are non-negative; Manhattan decompositions
        // are consistent.
        prop_assert!(PairFeature::ManhattanVpin.compute(&a, &b) >= 0.0);
        prop_assert_eq!(
            PairFeature::ManhattanVpin.compute(&a, &b),
            PairFeature::DiffVpinX.compute(&a, &b) + PairFeature::DiffVpinY.compute(&a, &b)
        );
        prop_assert_eq!(
            PairFeature::ManhattanPin.compute(&a, &b),
            PairFeature::DiffPinX.compute(&a, &b) + PairFeature::DiffPinY.compute(&a, &b)
        );
    }

    #[test]
    fn feature_sets_select_consistently(a in arb_vpin(), b in arb_vpin()) {
        let eleven = FeatureSet::eleven().compute(&a, &b);
        for set in [FeatureSet::seven(), FeatureSet::nine()] {
            let vals = set.compute(&a, &b);
            prop_assert_eq!(vals.len(), set.len());
            for (feat, v) in set.features().iter().zip(&vals) {
                prop_assert_eq!(eleven[*feat as usize], *v);
            }
        }
    }

    #[test]
    fn loc_curve_is_monotone_for_arbitrary_scorings(
        truths in prop::collection::vec(prop::option::of(0.0f64..=1.0), 1..40),
        cands in prop::collection::vec(0.0f64..=1.0, 0..300),
        n_view in 1usize..10_000
    ) {
        let slots: Vec<VpinScore> = truths
            .iter()
            .enumerate()
            .map(|(i, t)| VpinScore { vpin: i as u32, true_prob: *t, top: Vec::new() })
            .collect();
        let mut hist = vec![0u64; HIST_BINS];
        for &p in &cands {
            let bin = ((p * (HIST_BINS - 1) as f64).round() as usize).min(HIST_BINS - 1);
            hist[bin] += 1;
        }
        let view = ScoredView { slots, hist, num_view_vpins: n_view, pairs_scored: cands.len() as u64 };
        let curve = LocCurve::from_views(std::slice::from_ref(&view));
        let pts = curve.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].accuracy >= w[1].accuracy);
            prop_assert!(w[0].mean_loc >= w[1].mean_loc);
            prop_assert!(w[0].threshold <= w[1].threshold);
        }
        // Endpoint identities.
        let first = pts.first().expect("non-empty");
        prop_assert!((first.accuracy - view.accuracy_at(0.0)).abs() < 1e-9);
        prop_assert!((first.mean_loc - view.mean_loc_at(0.0)).abs() < 1e-9);
        // Alignment queries respect their constraints when they answer.
        if let Some(pt) = curve.min_loc_at_accuracy(0.5) {
            prop_assert!(pt.accuracy >= 0.5);
        }
        if let Some(pt) = curve.max_accuracy_at_loc(3.0) {
            prop_assert!(pt.mean_loc <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn pair_kernel_matches_feature_set_bitwise(
        vpins in prop::collection::vec(arb_vpin(), 2..24),
        target in 0usize..24,
    ) {
        // The SoA batch extractor must reproduce the scalar per-pair
        // feature path bit-for-bit for every feature set, every target,
        // every candidate.
        use sm_attack::features::PairKernel;
        let target = target % vpins.len();
        let t = u32::try_from(target).expect("fits");
        let cands: Vec<u32> = (0..vpins.len() as u32).filter(|&j| j != t).collect();
        for set in [FeatureSet::seven(), FeatureSet::nine(), FeatureSet::eleven()] {
            let kernel = PairKernel::new(&vpins, &set);
            prop_assert_eq!(kernel.num_features(), set.len());
            let mut batch = Vec::new();
            kernel.fill_batch(t, &cands, &mut batch);
            prop_assert_eq!(batch.len(), cands.len() * set.len());
            let mut scalar = Vec::new();
            for (row, &j) in cands.iter().enumerate() {
                set.compute_into(&vpins[target], &vpins[j as usize], &mut scalar);
                let got = &batch[row * set.len()..(row + 1) * set.len()];
                for (k, (g, s)) in got.iter().zip(&scalar).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(), s.to_bits(),
                        "feature {k} differs for pair ({target}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn pa_outcomes_are_bounded_by_targets(
        tops in prop::collection::vec(
            prop::collection::vec((0.0f64..=1.0, 0u32..100, 0i64..100_000), 0..20), 1..30),
        fraction in 0.0001f64..1.0
    ) {
        // Synthetic scored view over a real split view is unnecessary here:
        // pa bounds only depend on the slot structure.
        use sm_layout::{SplitLayer, Suite};
        let views = Suite::ispd2011_like(0.004).expect("suite")
            .split_all(SplitLayer::new(8).expect("valid"));
        let view = &views[0];
        let n = view.num_vpins() as u32;
        let slots: Vec<VpinScore> = tops
            .iter()
            .enumerate()
            .take(n as usize)
            .map(|(i, t)| VpinScore {
                vpin: i as u32,
                true_prob: None,
                top: t.iter()
                    .map(|&(p, idx, dist)| Cand { p, index: idx % n, dist })
                    .collect(),
            })
            .collect();
        let total = slots.len();
        let scored = ScoredView {
            slots,
            hist: vec![0; HIST_BINS],
            num_view_vpins: view.num_vpins(),
            pairs_scored: 0,
        };
        let out = sm_attack::proximity::proximity_attack(&scored, view, fraction, 3);
        prop_assert_eq!(out.total, total);
        prop_assert!(out.successes <= out.total);
        prop_assert!((0.0..=1.0).contains(&out.rate()));
    }
}
