//! Resume bit-identity and corruption-refusal proofs for the crash-safe
//! attack pipeline (`sm_attack::checkpoint` / `xval::for_each_fold_resumable`).
//!
//! The central claims, proven the way `enumeration_parity` proves spatial
//! == all-pairs:
//!
//! 1. an uninterrupted resumable run equals a plain `score` call bit for
//!    bit, for any shard size and parallelism;
//! 2. a run interrupted at *every possible shard boundary* and resumed —
//!    even with a different shard size and thread count — converges to
//!    the same bytes;
//! 3. a corrupt, truncated, or foreign checkpoint is a typed refusal,
//!    never a partial resume.

use sm_attack::attack::{AttackConfig, ScoreOptions, TrainOptions, TrainedAttack};
use sm_attack::checkpoint::{
    score_resumable, score_resumable_as, Checkpoint, CheckpointError, CheckpointSpec, Resume,
    ScoreOutcome,
};
use sm_attack::xval::{for_each_fold, for_each_fold_resumable, XvalOutcome};
use sm_attack::{LocCurveBuilder, Parallelism};
use sm_layout::{SplitLayer, SplitView, Suite};

fn views() -> Vec<SplitView> {
    Suite::ispd2011_like(0.02)
        .expect("valid scale")
        .split_all(SplitLayer::new(8).expect("valid layer"))
}

fn train(config: &AttackConfig, views: &[SplitView], target: usize) -> TrainedAttack {
    let train: Vec<&SplitView> = views
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != target)
        .map(|(_, v)| v)
        .collect();
    TrainedAttack::train_opt(config, &train, None, TrainOptions::default()).expect("trains")
}

fn temp_spec(tag: &str, every: usize) -> CheckpointSpec {
    let dir = std::env::temp_dir().join(format!("smattack_ckpt_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    CheckpointSpec {
        path: dir.join("run.ckpt"),
        every,
    }
}

fn cleanup(spec: &CheckpointSpec) {
    if let Some(parent) = spec.path.parent() {
        let _ = std::fs::remove_dir_all(parent);
    }
}

#[test]
fn uninterrupted_resumable_run_matches_plain_score_bit_for_bit() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let direct = model.score(&views[0], &ScoreOptions::default());
    for (i, (every, parallelism)) in [
        (1, Parallelism::Sequential),
        (7, Parallelism::Threads(3)),
        (64, Parallelism::Sequential),
        (usize::MAX, Parallelism::Threads(2)),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = temp_spec(&format!("complete_{i}"), every);
        let options = ScoreOptions {
            parallelism,
            ..ScoreOptions::default()
        };
        let outcome = score_resumable(&model, &views[0], &options, &spec, Resume::Fresh, &|| false)
            .expect("runs");
        match outcome {
            ScoreOutcome::Complete(scored) => {
                assert_eq!(scored, direct, "every={every} {parallelism:?} diverged");
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(
            !spec.path.exists(),
            "checkpoint must be removed on completion"
        );
        cleanup(&spec);
    }
}

/// Kill-at-every-boundary: stop after each shard in turn, resume with a
/// *different* shard size and parallelism, and require the final result
/// to match an uninterrupted run exactly.
#[test]
fn stepwise_interruption_and_resume_converges_bit_for_bit() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let direct = model.score(&views[0], &ScoreOptions::default());
    let spec = temp_spec("stepwise", 3);
    let seq = ScoreOptions {
        parallelism: Parallelism::Sequential,
        ..ScoreOptions::default()
    };
    // First leg: stop at the very first shard boundary.
    let outcome =
        score_resumable(&model, &views[0], &seq, &spec, Resume::Fresh, &|| true).expect("runs");
    let ScoreOutcome::Interrupted {
        targets_done,
        num_targets,
    } = outcome
    else {
        panic!("a single shard must not finish the view");
    };
    assert_eq!(targets_done, 3);
    assert!(spec.path.exists(), "interruption must leave a checkpoint");
    // Remaining legs: a different shard size and parallelism per resume,
    // stopping at every boundary until done.
    let resumed_spec = CheckpointSpec {
        path: spec.path.clone(),
        every: 2,
    };
    let par = ScoreOptions {
        parallelism: Parallelism::Threads(2),
        ..ScoreOptions::default()
    };
    let mut done = targets_done;
    let mut legs = 0;
    let scored = loop {
        legs += 1;
        assert!(legs < 10_000, "resume loop does not converge");
        match score_resumable(
            &model,
            &views[0],
            &par,
            &resumed_spec,
            Resume::IfPresent,
            &|| true,
        )
        .expect("resumes")
        {
            ScoreOutcome::Complete(scored) => break scored,
            ScoreOutcome::Interrupted { targets_done, .. } => {
                assert!(targets_done > done, "the cursor must advance every leg");
                done = targets_done;
            }
        }
    };
    assert!(num_targets > 0 && done < num_targets);
    assert_eq!(scored, direct, "stepwise resume diverged from direct run");
    assert!(!spec.path.exists());
    cleanup(&spec);
}

/// Regression: resuming with a shard size *larger* than the one that
/// wrote the checkpoint puts the cursor mid-way into the first (and
/// possibly only) shard. That shard must be realigned and scored, not
/// skipped — the original skip test (`range.start < cursor`) dropped
/// the whole tail and reported a 3-of-20-targets run as complete.
#[test]
fn resume_with_a_larger_shard_size_scores_the_tail() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let direct = model.score(&views[0], &ScoreOptions::default());
    let spec = temp_spec("larger_every", 3);
    let opts = ScoreOptions::default();
    // Interrupt with cursor = 3 ...
    score_resumable(&model, &views[0], &opts, &spec, Resume::Fresh, &|| true).expect("first leg");
    // ... then resume with one giant shard covering the whole view: the
    // cursor sits mid-shard and the remaining targets must all score.
    let giant = CheckpointSpec {
        path: spec.path.clone(),
        every: usize::MAX,
    };
    let outcome = score_resumable(&model, &views[0], &opts, &giant, Resume::IfPresent, &|| {
        false
    })
    .expect("resumes");
    match outcome {
        ScoreOutcome::Complete(scored) => {
            assert_eq!(scored, direct, "tail targets were dropped on resume");
        }
        other => panic!("expected completion, got {other:?}"),
    }
    assert!(!spec.path.exists());
    cleanup(&spec);
}

#[test]
fn fresh_run_refuses_to_clobber_an_existing_checkpoint() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let spec = temp_spec("clobber", 5);
    score_resumable(
        &model,
        &views[0],
        &ScoreOptions::default(),
        &spec,
        Resume::Fresh,
        &|| true,
    )
    .expect("first leg runs");
    let before = std::fs::read(&spec.path).expect("checkpoint exists");
    let err = score_resumable(
        &model,
        &views[0],
        &ScoreOptions::default(),
        &spec,
        Resume::Fresh,
        &|| false,
    )
    .expect_err("must refuse");
    assert!(matches!(err, CheckpointError::Exists(_)), "{err:?}");
    assert_eq!(
        std::fs::read(&spec.path).expect("still there"),
        before,
        "a refused fresh start must not touch the checkpoint"
    );
    cleanup(&spec);
}

#[test]
fn mismatched_runs_are_typed_refusals_naming_the_field() {
    let views = views();
    let imp9 = train(&AttackConfig::imp9(), &views, 0);
    let spec = temp_spec("mismatch", 5);
    let opts = ScoreOptions::default();
    score_resumable(&imp9, &views[0], &opts, &spec, Resume::Fresh, &|| true).expect("first leg");

    let mismatch_field = |err: CheckpointError| match err {
        CheckpointError::Mismatch { field, .. } => field,
        other => panic!("expected a mismatch, got {other:?}"),
    };
    // Different config (and therefore a different model too).
    let imp7 = train(&AttackConfig::imp7(), &views, 0);
    let err = score_resumable(&imp7, &views[0], &opts, &spec, Resume::IfPresent, &|| false)
        .expect_err("foreign config must refuse");
    assert_eq!(mismatch_field(err), "config");
    // Different view.
    let err = score_resumable(&imp9, &views[1], &opts, &spec, Resume::IfPresent, &|| false)
        .expect_err("foreign view must refuse");
    assert_eq!(mismatch_field(err), "views");
    // Different top-K shape.
    let wider = ScoreOptions {
        top_floor: opts.top_floor + 1,
        ..opts.clone()
    };
    let err = score_resumable(&imp9, &views[0], &wider, &spec, Resume::IfPresent, &|| {
        false
    })
    .expect_err("different top_floor must refuse");
    assert_eq!(mismatch_field(err), "top_floor");
    // Different run kind: a pa checkpoint cannot resume an attack run.
    let err = score_resumable_as(
        "pa",
        &imp9,
        &views[0],
        &opts,
        &spec,
        Resume::IfPresent,
        &|| false,
    )
    .expect_err("foreign kind must refuse");
    assert_eq!(mismatch_field(err), "run kind");
    // The intended owner still resumes fine after all those refusals.
    let outcome = score_resumable(&imp9, &views[0], &opts, &spec, Resume::IfPresent, &|| false)
        .expect("owner resumes");
    assert!(matches!(outcome, ScoreOutcome::Complete(_)));
    cleanup(&spec);
}

#[test]
fn explicit_targets_are_rejected_by_the_resumable_driver() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let spec = temp_spec("targets", 5);
    let opts = ScoreOptions {
        targets: Some(vec![0, 1]),
        ..ScoreOptions::default()
    };
    let err = score_resumable(&model, &views[0], &opts, &spec, Resume::Fresh, &|| false)
        .expect_err("must reject");
    assert!(matches!(err, CheckpointError::Unsupported(_)), "{err:?}");
    cleanup(&spec);
}

/// Mirrors the PR 4 artifact truncation test: cut the checkpoint at every
/// framing boundary and flip payload bits; every variant must be a typed
/// [`CheckpointError`] and a clean refuse-to-resume.
#[test]
fn corrupt_checkpoints_are_typed_errors_and_refuse_to_resume() {
    let views = views();
    let model = train(&AttackConfig::imp9(), &views, 0);
    let spec = temp_spec("corrupt", 5);
    let opts = ScoreOptions::default();
    score_resumable(&model, &views[0], &opts, &spec, Resume::Fresh, &|| true).expect("first leg");
    let good = std::fs::read_to_string(&spec.path).expect("checkpoint exists");
    let (header, payload) = good.split_once('\n').expect("two-line format");

    // Still-valid baseline: a missing trailing newline parses fine.
    assert!(Checkpoint::decode(good.trim_end()).is_ok());

    let truncations: Vec<(String, &str)> = vec![
        (String::new(), "empty file"),
        (header[..header.len() / 2].to_owned(), "mid-header cut"),
        (format!("{header}\n"), "header only"),
        (
            format!("{header}\n{}", &payload[..payload.len() / 2]),
            "mid-payload cut",
        ),
    ];
    for (text, what) in &truncations {
        let err = Checkpoint::decode(text).expect_err(what);
        assert!(
            matches!(
                err,
                CheckpointError::Malformed(_) | CheckpointError::ChecksumMismatch { .. }
            ),
            "{what}: {err:?}"
        );
    }
    // Bit-flips in the payload: every flipped position must trip the
    // checksum (the payload is covered end to end).
    let flip = |s: &str, i: usize| {
        let mut bytes = s.as_bytes().to_vec();
        bytes[i] ^= 0x01;
        String::from_utf8(bytes).expect("ascii payloads survive single-bit flips")
    };
    for i in [0, payload.len() / 3, payload.len() - 2] {
        let text = format!("{header}\n{}", flip(payload, i));
        let err = Checkpoint::decode(&text).expect_err("flipped payload");
        assert!(
            matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "flip at {i}: {err:?}"
        );
    }
    // Foreign magic and version are their own typed refusals.
    let foreign = good.replace("SPLITMFG-CHECKPOINT", "SPLITMFG-CHECKPOINX");
    assert!(matches!(
        Checkpoint::decode(&foreign).expect_err("bad magic"),
        CheckpointError::BadMagic { .. }
    ));
    let vnext = good.replace("\"version\":1", "\"version\":999");
    assert!(matches!(
        Checkpoint::decode(&vnext).expect_err("future version"),
        CheckpointError::UnsupportedVersion {
            found: 999,
            supported: 1
        }
    ));

    // And end to end: a corrupt file on disk refuses to resume — typed,
    // with the corrupt checkpoint left in place for forensics.
    std::fs::write(&spec.path, format!("{header}\n{}", flip(payload, 10))).expect("writes");
    let err = score_resumable(&model, &views[0], &opts, &spec, Resume::IfPresent, &|| {
        false
    })
    .expect_err("must refuse");
    assert!(
        matches!(err, CheckpointError::ChecksumMismatch { .. }),
        "{err:?}"
    );
    assert!(spec.path.exists(), "refusal must not delete the evidence");
    cleanup(&spec);
}

#[test]
fn xval_resume_reproduces_the_uninterrupted_curve_bit_for_bit() {
    let views = views();
    let config = AttackConfig::imp9();
    let opts = ScoreOptions::default();
    // Reference: the plain streaming driver folded into a curve builder.
    let mut reference = LocCurveBuilder::new();
    let mut reference_names = Vec::new();
    for_each_fold(&config, &views, &opts, TrainOptions::default(), |fold| {
        reference.add_view(&fold.scored);
        reference_names.push(fold.test_name.clone());
    })
    .expect("streaming xval runs");
    let reference_curve = reference.finish();

    // Uninterrupted resumable sweep.
    let spec = temp_spec("xval_complete", 1);
    let outcome = for_each_fold_resumable(
        &config,
        &views,
        &opts,
        TrainOptions::default(),
        &spec,
        Resume::Fresh,
        &|| false,
        |_| {},
    )
    .expect("resumable xval runs");
    match outcome {
        XvalOutcome::Complete { curve, folds } => {
            assert_eq!(folds, views.len());
            assert_eq!(curve, reference_curve, "uninterrupted sweep diverged");
        }
        other => panic!("expected completion, got {other:?}"),
    }
    assert!(!spec.path.exists());

    // Interrupted at every fold boundary; each fold visited exactly once
    // across all legs.
    let spec = temp_spec("xval_stepwise", 1);
    let mut visited = Vec::new();
    let mut legs = 0;
    let curve = loop {
        legs += 1;
        assert!(legs <= views.len() + 1, "must converge in one leg per fold");
        let resume = if legs == 1 {
            Resume::Fresh
        } else {
            Resume::IfPresent
        };
        match for_each_fold_resumable(
            &config,
            &views,
            &opts,
            TrainOptions::default(),
            &spec,
            resume,
            &|| true,
            |fold| visited.push(fold.test_name.clone()),
        )
        .expect("leg runs")
        {
            XvalOutcome::Complete { curve, .. } => break curve,
            XvalOutcome::Interrupted {
                folds_done,
                folds_total,
            } => {
                assert_eq!(folds_done, legs);
                assert_eq!(folds_total, views.len());
            }
        }
    };
    assert_eq!(visited, reference_names, "folds replayed or skipped");
    assert_eq!(curve, reference_curve, "stepwise xval resume diverged");
    assert!(!spec.path.exists());
    cleanup(&spec);
}
