//! Property tests of the [`VpinIndex`] spatial queries: radius and
//! same-track queries must return exactly the brute-force candidate set —
//! sorted order included — over random v-pin layouts, radii and grid
//! sizes. This is the parity foundation the streaming enumeration's
//! bit-identity claim rests on: if the index returns the exact candidate
//! set in canonical order, the order-invariant scoring keeper does the
//! rest.

use proptest::prelude::*;
use sm_attack::neighborhood::VpinIndex;
use sm_layout::geom::{Point, Rect};
use sm_layout::{SplitLayer, SplitView, VPin};

fn vpin_at(i: usize, x: i64, y: i64) -> VPin {
    VPin {
        loc: Point::new(x, y),
        pin_loc: Point::new(x, y),
        wirelength: 1_000,
        in_area: if i.is_multiple_of(2) { 0 } else { 2_000 },
        out_area: if i.is_multiple_of(2) { 2_000 } else { 0 },
        pc: 1.0,
        rc: 1.0,
    }
}

fn view_of(vpins: Vec<VPin>, w: i64, h: i64) -> SplitView {
    let partner: Vec<u32> = (0..vpins.len() as u32).map(|i| i ^ 1).collect();
    SplitView::from_parts(
        "prop".into(),
        SplitLayer::new(8).expect("valid layer"),
        Rect::new(Point::new(0, 0), Point::new(w, h)),
        vpins,
        partner,
    )
    .expect("valid synthetic view")
}

/// A random view: pins paired `(2i, 2i+1)` with even pins driving, y
/// snapped to a handful of tracks so same-track queries hit populated
/// tracks.
fn arb_view() -> impl Strategy<Value = SplitView> {
    (
        2usize..=24,
        20_000i64..1_500_000,
        20_000i64..1_500_000,
        prop::collection::vec((0i64..i64::MAX, 0u8..6), 48..49),
    )
        .prop_map(|(pairs, w, h, coords)| {
            let vpins: Vec<VPin> = coords[..pairs * 2]
                .iter()
                .enumerate()
                // Raw x draws reduce into the die width; y snaps to tracks.
                .map(|(i, &(x, t))| vpin_at(i, x % w, (t as i64 * h / 6).min(h - 1)))
                .collect();
            view_of(vpins, w, h)
        })
}

fn brute_within(view: &SplitView, from: Point, radius: i64, exclude: u32) -> Vec<u32> {
    (0..view.num_vpins() as u32)
        .filter(|&j| j != exclude && view.vpins()[j as usize].loc.manhattan(from) <= radius)
        .collect()
}

proptest! {
    #[test]
    fn within_radius_equals_sorted_brute_force(
        view in arb_view(),
        cell in 500i64..80_000,
        radius in 0i64..2_000_000,
        probe in 0usize..48,
        radius_sized_cells in prop::bool::ANY,
    ) {
        let idx = if radius_sized_cells {
            VpinIndex::with_radius(&view, radius.max(1))
        } else {
            VpinIndex::new(&view, cell)
        };
        let probe = probe % view.num_vpins();
        let from = view.vpins()[probe].loc;
        let brute = brute_within(&view, from, radius, probe as u32);
        let mut out = Vec::new();
        idx.within_radius(&view, from, radius, probe as u32, &mut out);
        // Sorted ascending output IS the contract: compare directly.
        prop_assert_eq!(&out, &brute);
        // The unordered hot-path variant returns exactly the same set.
        let mut unordered = Vec::new();
        idx.within_radius_unordered(&view, from, radius, probe as u32, &mut unordered);
        unordered.sort_unstable();
        prop_assert_eq!(&unordered, &brute);
    }

    #[test]
    fn query_centres_need_not_be_vpins(
        view in arb_view(),
        cell in 500i64..80_000,
        radius in 0i64..2_000_000,
        qx in -100_000i64..1_600_000,
        qy in -100_000i64..1_600_000,
    ) {
        // Arbitrary (possibly out-of-die) query centres; u32::MAX excludes
        // nothing.
        let idx = VpinIndex::new(&view, cell);
        let from = Point::new(qx, qy);
        let brute = brute_within(&view, from, radius, u32::MAX);
        let mut out = Vec::new();
        idx.within_radius(&view, from, radius, u32::MAX, &mut out);
        prop_assert_eq!(&out, &brute);
    }

    #[test]
    fn same_y_equals_sorted_brute_force(
        view in arb_view(),
        cell in 500i64..80_000,
        probe in 0usize..48,
    ) {
        let idx = VpinIndex::new(&view, cell);
        let probe = probe % view.num_vpins();
        let y = view.vpins()[probe].loc.y;
        let mut out = Vec::new();
        idx.same_y(y, probe as u32, &mut out);
        let brute: Vec<u32> = (0..view.num_vpins() as u32)
            .filter(|&j| j != probe as u32 && view.vpins()[j as usize].loc.y == y)
            .collect();
        prop_assert_eq!(&out, &brute);
        // A y no v-pin occupies yields the empty set.
        idx.same_y(-7, u32::MAX, &mut out);
        prop_assert!(out.is_empty());
    }
}

/// Out-of-die v-pins (possible through `io::read_feol` or hand-built
/// views) clamp into edge cells of the grid; the bulk fast path must not
/// mistake them for in-cell pins.
#[test]
fn out_of_die_vpins_are_still_found_exactly() {
    let w = 100_000;
    let h = 100_000;
    let vpins = vec![
        vpin_at(0, 10_000, 10_000),
        vpin_at(1, 500_000, 500_000), // far outside the die
        vpin_at(2, -90_000, 20_000),  // negative coordinates
        vpin_at(3, 95_000, 95_000),
        vpin_at(4, 40_000, 40_000),
        vpin_at(5, 40_001, 40_000),
    ];
    let view = view_of(vpins, w, h);
    let mut out = Vec::new();
    for cell in [1_000i64, 7_000, 50_000, 200_000] {
        let idx = VpinIndex::new(&view, cell);
        for radius in [0i64, 30_000, 80_000, 500_000, 1_000_000] {
            for probe in 0..view.num_vpins() {
                let from = view.vpins()[probe].loc;
                idx.within_radius(&view, from, radius, probe as u32, &mut out);
                let brute = brute_within(&view, from, radius, probe as u32);
                assert_eq!(out, brute, "cell {cell} radius {radius} probe {probe}");
            }
        }
    }
}
