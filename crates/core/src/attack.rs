//! The machine-learning attack: model configurations, training, and pair
//! scoring (paper Sections III-B–III-G).
//!
//! A [`TrainedAttack`] is produced from N−1 training [`SplitView`]s and
//! scores every candidate v-pin pair of a held-out test view, yielding a
//! [`ScoredView`] from which lists of candidates (LoC) at any probability
//! threshold, trade-off curves, and proximity attacks are derived without
//! re-running inference (Section III-F).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sm_layout::SplitView;
use sm_ml::parallel::par_chunks;
use sm_ml::{Bagging, Dataset, Parallelism, RandomTreeLearner, RepTreeLearner, TreeBackend};

use crate::error::AttackError;
use crate::features::{FeatureSet, PairKernel};
use crate::neighborhood::{neighborhood_radius, VpinIndex, DEFAULT_NEIGHBORHOOD_QUANTILE};
use crate::samples::{generate_samples, SampleOptions};

/// Number of probability bins in a [`ScoredView`]'s candidate histogram.
pub const HIST_BINS: usize = 4096;

/// Candidates scored per [`sm_ml::CompiledEnsemble::proba_batch`] call in
/// the compiled kernel's scoring loop: large enough to amortise the batch
/// setup, small enough that the row buffer (`SCORE_BATCH x features`)
/// stays in L1/L2 cache.
pub const SCORE_BATCH: usize = 256;

/// Default [`ScoreOptions::top_floor`].
pub const DEFAULT_TOP_FLOOR: usize = 16;

/// Which scoring implementation [`TrainedAttack::score`] runs.
///
/// Both kernels produce bit-identical [`ScoredView`]s (proven by the
/// parity test suite); the choice only affects wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Kernel {
    /// Batched flat-array path: [`sm_ml::CompiledEnsemble`] over rows
    /// filled by [`PairKernel`], [`SCORE_BATCH`] candidates at a time.
    #[default]
    Compiled,
    /// The original per-pair path: [`FeatureSet::compute_into`] +
    /// [`sm_ml::Bagging::proba`] per candidate. Kept as the
    /// bit-for-bit-checkable baseline.
    Reference,
}

/// Error parsing a [`Kernel`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError(String);

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected 'compiled' or 'reference', got '{}'", self.0)
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for Kernel {
    type Err = ParseKernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "compiled" => Ok(Kernel::Compiled),
            "reference" | "ref" => Ok(Kernel::Reference),
            _ => Err(ParseKernelError(s.to_owned())),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kernel::Compiled => write!(f, "compiled"),
            Kernel::Reference => write!(f, "reference"),
        }
    }
}

/// How [`TrainedAttack::score`] enumerates candidate pairs per target.
///
/// Both strategies visit exactly the same candidate *set* per target, and
/// the top-K keeper orders candidates under a total preference order (see
/// `cand_cmp`), so the resulting [`ScoredView`]s are bit-identical — proven
/// by `tests/enumeration_parity.rs` over all benchmarks and split layers.
/// The choice only affects time and memory: spatial enumeration is
/// O(neighbors) per target instead of O(n), which is what makes
/// paper-scale (`SM_SCALE >= 10`, 10⁸+ candidate pairs) attacks feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Enumeration {
    /// Radius / same-track queries against the [`VpinIndex`] spatial grid
    /// (the streaming default).
    #[default]
    Spatial,
    /// Per-target scan over all n v-pins with a distance/track filter —
    /// the oracle the spatial path is checked against.
    AllPairs,
}

/// Error parsing an [`Enumeration`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnumerationError(String);

impl std::fmt::Display for ParseEnumerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected 'spatial' or 'all-pairs', got '{}'", self.0)
    }
}

impl std::error::Error for ParseEnumerationError {}

impl std::str::FromStr for Enumeration {
    type Err = ParseEnumerationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spatial" => Ok(Enumeration::Spatial),
            "all-pairs" | "allpairs" | "oracle" => Ok(Enumeration::AllPairs),
            _ => Err(ParseEnumerationError(s.to_owned())),
        }
    }
}

impl std::fmt::Display for Enumeration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Enumeration::Spatial => write!(f, "spatial"),
            Enumeration::AllPairs => write!(f, "all-pairs"),
        }
    }
}

/// Training-time execution options.
///
/// These knobs change how a model is *computed*, never what it computes:
/// every [`TreeBackend`] grows bit-identical ensembles (proven by the
/// parity suites), so none of this belongs in [`AttackConfig`] and nothing
/// here is serialized into artifacts — the artifact wire format and
/// checksums are untouched by the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainOptions {
    /// Split-finding implementation used to grow each tree (binned
    /// histogram kernel by default; `reference` is the oracle scan).
    pub backend: TreeBackend,
}

/// The ensemble used to classify pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseClassifier {
    /// Bagging of reduced-error-pruned trees (this paper; Weka default 10).
    RepTreeBagging {
        /// Number of member trees.
        n_trees: usize,
    },
    /// Bagging of unpruned random trees — equivalent to Weka's
    /// `RandomForest`, the configuration of the conference version [18].
    RandomTreeBagging {
        /// Number of member trees.
        n_trees: usize,
    },
}

impl Default for BaseClassifier {
    fn default() -> Self {
        BaseClassifier::RepTreeBagging { n_trees: 10 }
    }
}

/// A full model configuration (the paper's `ML-9`, `Imp-9`, `Imp-7`,
/// `Imp-11` and their `Y` variants).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Display name, e.g. `Imp-9Y`.
    pub name: String,
    /// The pair features used for training and testing.
    pub features: FeatureSet,
    /// Whether to restrict sampling/testing to the ManhattanVpin
    /// neighborhood (the `Imp` scalability improvement, Section III-D).
    pub scalable: bool,
    /// CDF quantile defining the neighborhood radius (default 90 %).
    pub neighborhood_quantile: f64,
    /// Whether to force `DiffVpinY = 0` (top-split-layer convention,
    /// Section III-G).
    pub limit_diff_vpin_y: bool,
    /// The ensemble classifier.
    pub base: BaseClassifier,
    /// Seed driving sampling and training.
    pub seed: u64,
    /// Parallelism of training (per-tree) and of cross-validation folds.
    /// Results are bit-identical across settings; only wall-clock changes.
    pub parallelism: Parallelism,
}

impl AttackConfig {
    fn new(name: &str, features: FeatureSet, scalable: bool) -> Self {
        Self {
            name: name.to_owned(),
            features,
            scalable,
            neighborhood_quantile: DEFAULT_NEIGHBORHOOD_QUANTILE,
            limit_diff_vpin_y: false,
            base: BaseClassifier::default(),
            seed: 0xa77ac4,
            parallelism: Parallelism::Auto,
        }
    }

    /// This configuration with an explicit [`Parallelism`] setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// `ML-9`: first 9 features, no scalability restriction.
    pub fn ml9() -> Self {
        Self::new("ML-9", FeatureSet::nine(), false)
    }

    /// `Imp-9`: first 9 features with the neighborhood restriction.
    pub fn imp9() -> Self {
        Self::new("Imp-9", FeatureSet::nine(), true)
    }

    /// `Imp-7`: neighborhood restriction, 7 features (drops
    /// `TotalWirelength`, `TotalArea`).
    pub fn imp7() -> Self {
        Self::new("Imp-7", FeatureSet::seven(), true)
    }

    /// `Imp-11`: neighborhood restriction, all 11 features.
    pub fn imp11() -> Self {
        Self::new("Imp-11", FeatureSet::eleven(), true)
    }

    /// The `Y` variant of this configuration: limits `DiffVpinY` to zero
    /// (only sound when the split layer is the highest via layer).
    pub fn with_y_limit(mut self) -> Self {
        self.limit_diff_vpin_y = true;
        self.name.push('Y');
        self
    }

    /// The four standard configurations.
    pub fn standard_four() -> Vec<Self> {
        vec![Self::ml9(), Self::imp9(), Self::imp7(), Self::imp11()]
    }

    /// The four standard configurations plus their `Y` variants
    /// (the eight rows of Table IV's layer-8 block).
    pub fn standard_eight() -> Vec<Self> {
        let mut v = Self::standard_four();
        v.extend(Self::standard_four().into_iter().map(Self::with_y_limit));
        v
    }

    /// The sampling options this configuration implies given a resolved
    /// neighborhood radius.
    pub(crate) fn sample_options(&self, radius: Option<i64>) -> SampleOptions {
        SampleOptions {
            radius,
            limit_diff_vpin_y: self.limit_diff_vpin_y,
        }
    }
}

/// A trained attack model, ready to score test views.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedAttack {
    config: AttackConfig,
    model: Bagging,
    radius: Option<i64>,
    num_training_samples: usize,
}

/// The serializable components of a [`TrainedAttack`].
///
/// A trained model is exactly these four parts; [`TrainedAttack::into_parts`]
/// / [`TrainedAttack::from_parts`] convert losslessly in both directions, so
/// an artifact store can checkpoint a model and later reconstruct one that
/// scores bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedParts {
    /// The configuration the model was trained with.
    pub config: AttackConfig,
    /// The fitted Bagging ensemble.
    pub model: Bagging,
    /// The resolved neighborhood radius (None for `ML` configurations).
    pub radius: Option<i64>,
    /// Number of training samples the model saw.
    pub num_training_samples: usize,
}

impl TrainedAttack {
    /// Trains the attack on `training_views` (the paper's N−1 designs).
    ///
    /// `vpin_filter`, when present, restricts sample generation to the
    /// masked v-pins (used by proximity-attack validation).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NoTrainingData`] for an empty view list,
    /// [`AttackError::NoSamples`] if every candidate pair was filtered out,
    /// or a wrapped training error.
    pub fn train(
        config: &AttackConfig,
        training_views: &[&SplitView],
        vpin_filter: Option<&[Vec<bool>]>,
    ) -> Result<Self, AttackError> {
        Self::train_opt(config, training_views, vpin_filter, TrainOptions::default())
    }

    /// [`TrainedAttack::train`] with explicit [`TrainOptions`]. The options
    /// never change the resulting model, only how fast it is computed.
    ///
    /// # Errors
    ///
    /// Same contract as [`TrainedAttack::train`].
    pub fn train_opt(
        config: &AttackConfig,
        training_views: &[&SplitView],
        vpin_filter: Option<&[Vec<bool>]>,
        options: TrainOptions,
    ) -> Result<Self, AttackError> {
        let (samples, radius) = Self::prepare_samples(config, training_views, vpin_filter)?;
        Self::from_samples(config, samples, radius, options)
    }

    /// Resolves the neighborhood radius and extracts the training sample
    /// set — everything [`TrainedAttack::train`] does before ensemble
    /// fitting. Exposed so benchmarks can time sample extraction and
    /// fitting as separate stages; `train_opt` is exactly
    /// `prepare_samples` followed by [`TrainedAttack::from_samples`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NoTrainingData`] for an empty view list.
    pub fn prepare_samples(
        config: &AttackConfig,
        training_views: &[&SplitView],
        vpin_filter: Option<&[Vec<bool>]>,
    ) -> Result<(Dataset, Option<i64>), AttackError> {
        if training_views.is_empty() {
            return Err(AttackError::NoTrainingData);
        }
        let radius = if config.scalable {
            neighborhood_radius(training_views, config.neighborhood_quantile)
        } else {
            None
        };
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let samples = generate_samples(
            training_views,
            &config.features,
            config.sample_options(radius),
            vpin_filter,
            &mut rng,
        );
        Ok((samples, radius))
    }

    /// Fits the ensemble on an already-generated sample set with an
    /// already-resolved neighborhood radius. This is [`TrainedAttack::train`]
    /// minus the sample extraction — the cross-validation driver feeds it
    /// fold sample sets assembled from its per-design cache, which is
    /// bit-identical to regeneration because each design's sample stream is
    /// seeded by name (see [`crate::samples::view_sample_seed`]).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::NoSamples`] for an empty sample set, or a
    /// wrapped training error.
    pub fn from_samples(
        config: &AttackConfig,
        samples: Dataset,
        radius: Option<i64>,
        options: TrainOptions,
    ) -> Result<Self, AttackError> {
        if samples.is_empty() {
            return Err(AttackError::NoSamples);
        }
        let model = match config.base {
            BaseClassifier::RepTreeBagging { n_trees } => Bagging::fit_with(
                &samples,
                &RepTreeLearner::with_backend(options.backend),
                n_trees,
                config.seed,
                config.parallelism,
            )?,
            BaseClassifier::RandomTreeBagging { n_trees } => Bagging::fit_with(
                &samples,
                &RandomTreeLearner::with_backend(options.backend),
                n_trees,
                config.seed,
                config.parallelism,
            )?,
        };
        Ok(Self {
            config: config.clone(),
            model,
            radius,
            num_training_samples: samples.len(),
        })
    }

    /// Assembles a model from pre-trained parts: the inverse of
    /// [`TrainedAttack::into_parts`]. Used by the artifact store to
    /// reconstruct checkpointed models and by two-level pruning, which
    /// builds its Level-2 model from a custom sample set.
    pub fn from_parts(parts: TrainedParts) -> Self {
        Self {
            config: parts.config,
            model: parts.model,
            radius: parts.radius,
            num_training_samples: parts.num_training_samples,
        }
    }

    /// Decomposes the model into its serializable [`TrainedParts`].
    pub fn into_parts(self) -> TrainedParts {
        TrainedParts {
            config: self.config,
            model: self.model,
            radius: self.radius,
            num_training_samples: self.num_training_samples,
        }
    }

    /// The serializable parts of this model, cloned.
    pub fn to_parts(&self) -> TrainedParts {
        self.clone().into_parts()
    }

    /// The configuration this model was trained with.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The resolved neighborhood radius (None for `ML` configurations).
    pub fn radius(&self) -> Option<i64> {
        self.radius
    }

    /// Number of training samples the model saw.
    pub fn num_training_samples(&self) -> usize {
        self.num_training_samples
    }

    /// The underlying ensemble.
    pub fn model(&self) -> &Bagging {
        &self.model
    }

    /// Scores every candidate pair of `view` (Section III-C's testing
    /// stage) and records, per v-pin, the probability of its true match and
    /// its highest-probability candidates.
    ///
    /// `options` controls which v-pins are scored and how many candidates
    /// are retained; see [`ScoreOptions`].
    pub fn score(&self, view: &SplitView, options: &ScoreOptions) -> ScoredView {
        let candidates = CandidateSource::Config;
        score_with(self, view, options, &candidates)
    }
}

/// Options for the scoring stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreOptions {
    /// Fraction of the view's v-pins to retain per target as the
    /// top-probability candidate list (never fewer than
    /// [`Self::top_floor`]). The proximity attack can only consider PA-LoC
    /// fractions up to this value.
    pub top_fraction: f64,
    /// Minimum retained candidates per target, applied *after* the
    /// `ceil(top_fraction x v-pins)` sizing (default
    /// [`DEFAULT_TOP_FLOOR`] = 16). On tiny views the floor, not the
    /// fraction, decides the list size — e.g. a 100-v-pin view at the
    /// default 6 % keeps 16 candidates per target, not 6 — which silently
    /// inflates LoC lists unless lowered here.
    pub top_floor: usize,
    /// If set, only these v-pins are scored as targets (candidates still
    /// come from the whole view). Used by PA validation.
    pub targets: Option<Vec<u32>>,
    /// Worker threads for pair scoring. The scored result is bit-identical
    /// across settings; only wall-clock changes.
    pub parallelism: Parallelism,
    /// Scoring implementation; results are bit-identical, wall-clock is
    /// not (the compiled kernel is the fast default).
    pub kernel: Kernel,
    /// Candidate enumeration strategy; results are bit-identical, time and
    /// memory are not (spatial queries are the streaming default, the
    /// all-pairs scan is the oracle).
    pub enumeration: Enumeration,
}

impl Default for ScoreOptions {
    fn default() -> Self {
        Self {
            top_fraction: 0.06,
            top_floor: DEFAULT_TOP_FLOOR,
            targets: None,
            parallelism: Parallelism::Auto,
            kernel: Kernel::Compiled,
            enumeration: Enumeration::Spatial,
        }
    }
}

/// Internal candidate enumeration strategy.
pub(crate) enum CandidateSource<'a> {
    /// Derive from the trained configuration (neighborhood and/or Y-limit).
    Config,
    /// Explicit per-target candidate lists (two-level pruning's Level-2
    /// stage). Must be indexed like the score targets.
    Explicit(&'a [Vec<u32>]),
}

/// One retained candidate of a target v-pin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cand {
    /// Ensemble probability that the pair is connected.
    pub p: f64,
    /// Candidate v-pin index.
    pub index: u32,
    /// Manhattan distance between the two v-pins.
    pub dist: i64,
}

/// Per-target scoring record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VpinScore {
    /// The target v-pin.
    pub vpin: u32,
    /// Probability assigned to the true match, or `None` if the true match
    /// was never scored (filtered by legality, neighborhood, or Y-limit) —
    /// a permanent miss that caps the achievable accuracy.
    pub true_prob: Option<f64>,
    /// Retained candidates, sorted by descending probability.
    pub top: Vec<Cand>,
}

/// The complete scoring of a test view: everything needed to derive LoC
/// sizes, accuracies and proximity attacks at any threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredView {
    /// Per-target records.
    pub slots: Vec<VpinScore>,
    /// Histogram over all scored candidate probabilities (per-target
    /// entries; bin `k` covers `k / HIST_BINS <= p < (k + 1) / HIST_BINS`,
    /// with the top bin closed so it also holds `p = 1`).
    pub hist: Vec<u64>,
    /// Total v-pins in the underlying view (denominator of LoC fractions).
    pub num_view_vpins: usize,
    /// Total candidate pairs evaluated.
    pub pairs_scored: u64,
}

/// Maps a probability to its histogram bin: floor-based edges, so bin `k`
/// holds `k / HIST_BINS <= p < (k + 1) / HIST_BINS` (top bin closed).
pub(crate) fn hist_bin(p: f64) -> usize {
    ((p * HIST_BINS as f64) as usize).min(HIST_BINS - 1)
}

/// Lower edge of histogram bin `k`, the probability threshold it
/// represents in sweeps.
pub(crate) fn bin_threshold(k: usize) -> f64 {
    k as f64 / HIST_BINS as f64
}

/// First histogram bin containing only probabilities `>= t`: the shared
/// bin-edge convention of every threshold query. A threshold is snapped
/// *up* to the next bin edge (capped at the top bin), so a bin is counted
/// iff all its probabilities meet the effective threshold
/// [`bin_threshold`]`(first_bin(t))`.
pub(crate) fn first_bin(t: f64) -> usize {
    ((t * HIST_BINS as f64).ceil() as usize).min(HIST_BINS - 1)
}

pub(crate) fn score_with(
    attack: &TrainedAttack,
    view: &SplitView,
    options: &ScoreOptions,
    source: &CandidateSource<'_>,
) -> ScoredView {
    let n = view.num_vpins();
    let targets: Vec<u32> = match &options.targets {
        Some(t) => t.clone(),
        None => (0..n as u32).collect(),
    };
    let top_k = ((options.top_fraction * n as f64).ceil() as usize).max(options.top_floor);
    let need_index = matches!(source, CandidateSource::Config)
        && options.enumeration == Enumeration::Spatial
        && (attack.radius.is_some() || attack.config.limit_diff_vpin_y);
    let index = if need_index {
        Some(match attack.radius {
            Some(r) => VpinIndex::with_radius(view, r),
            None => VpinIndex::new(view, 10_000),
        })
    } else {
        None
    };

    // The compiled kernel's shared tables are built once per scoring call:
    // the SoA feature columns of this view and the flattened ensemble.
    // Both are read-only during the sharded loop.
    let compiled = match options.kernel {
        Kernel::Compiled => Some((
            PairKernel::new(view.vpins(), &attack.config.features),
            attack.model.compile(),
        )),
        Kernel::Reference => None,
    };
    let compiled = compiled.as_ref();

    // Shard the targets into contiguous v-pin ranges: each worker fills its
    // own slot list, feature buffer and local histogram, and the parts are
    // merged in target order, so the result is bit-identical for any
    // parallelism setting.
    let index = index.as_ref();
    let targets = &targets[..];
    let parts = par_chunks(options.parallelism, targets.len(), |range| {
        let mut local_hist = vec![0u64; HIST_BINS];
        let mut local_pairs = 0u64;
        let mut local_slots = Vec::with_capacity(range.len());
        let nf = attack.config.features.len();
        let mut buf = Vec::with_capacity(nf);
        let mut cands: Vec<u32> = Vec::new();
        let mut legal: Vec<u32> = Vec::new();
        let mut rows: Vec<f64> = Vec::with_capacity(SCORE_BATCH * nf);
        let mut probs: Vec<f64> = Vec::with_capacity(SCORE_BATCH);
        for slot_idx in range {
            let i = targets[slot_idx];
            let iu = i as usize;
            let truth = view.true_match(iu);
            enumerate_candidates(
                attack,
                view,
                source,
                index,
                options.enumeration,
                slot_idx,
                i,
                n,
                &mut cands,
            );
            let mut slot = VpinScore {
                vpin: i,
                true_prob: None,
                top: Vec::new(),
            };
            let mut top: Vec<Cand> = Vec::with_capacity(top_k + 1);
            match compiled {
                Some((kernel, ensemble)) => {
                    // Batched fast path: legality-filter the enumeration,
                    // then score SCORE_BATCH candidates per kernel call.
                    // Candidate order, histogram updates and top-list
                    // pushes follow the exact reference sequence.
                    legal.clear();
                    let drives = kernel.drives();
                    if drives[iu] {
                        legal.extend(
                            cands
                                .iter()
                                .copied()
                                .filter(|&j| j != i && !drives[j as usize]),
                        );
                    } else {
                        legal.extend(cands.iter().copied().filter(|&j| j != i));
                    }
                    for chunk in legal.chunks(SCORE_BATCH) {
                        kernel.fill_batch(i, chunk, &mut rows);
                        probs.clear();
                        probs.resize(chunk.len(), 0.0);
                        ensemble.proba_batch(&rows, nf, &mut probs);
                        for (&j, &p) in chunk.iter().zip(&probs) {
                            let ju = j as usize;
                            local_pairs += 1;
                            local_hist[hist_bin(p)] += 1;
                            if ju == truth {
                                slot.true_prob = Some(p);
                            }
                            // `push_top` compares probability first, so a
                            // candidate strictly below the retained minimum
                            // can never enter the list and its distance is
                            // never computed; only candidates at or above
                            // the minimum pay for it.
                            if top.len() < top_k || p >= top[0].p {
                                push_top(
                                    &mut top,
                                    Cand {
                                        p,
                                        index: j,
                                        dist: view.distance(iu, ju),
                                    },
                                    top_k,
                                );
                            }
                        }
                    }
                }
                None => {
                    for &j in &*cands {
                        let ju = j as usize;
                        if !view.is_legal_pair(iu, ju) {
                            continue;
                        }
                        attack.config.features.compute_into(
                            &view.vpins()[iu],
                            &view.vpins()[ju],
                            &mut buf,
                        );
                        let p = attack.model.proba(&buf);
                        local_pairs += 1;
                        local_hist[hist_bin(p)] += 1;
                        if ju == truth {
                            slot.true_prob = Some(p);
                        }
                        push_top(
                            &mut top,
                            Cand {
                                p,
                                index: j,
                                dist: view.distance(iu, ju),
                            },
                            top_k,
                        );
                    }
                }
            }
            top.sort_by(|a, b| cand_cmp(b, a));
            slot.top = top;
            local_slots.push(slot);
        }
        (local_slots, local_hist, local_pairs)
    });

    let mut slots: Vec<VpinScore> = Vec::with_capacity(targets.len());
    let mut hist = vec![0u64; HIST_BINS];
    let mut pairs_scored = 0u64;
    for (part_slots, part_hist, part_pairs) in parts {
        slots.extend(part_slots);
        for (h, ph) in hist.iter_mut().zip(part_hist) {
            *h += ph;
        }
        pairs_scored += part_pairs;
    }

    ScoredView {
        slots,
        hist,
        num_view_vpins: n,
        pairs_scored,
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_candidates(
    attack: &TrainedAttack,
    view: &SplitView,
    source: &CandidateSource<'_>,
    index: Option<&VpinIndex>,
    enumeration: Enumeration,
    slot_idx: usize,
    i: u32,
    n: usize,
    out: &mut Vec<u32>,
) {
    match source {
        CandidateSource::Explicit(lists) => {
            out.clear();
            out.extend_from_slice(&lists[slot_idx]);
            out.retain(|&j| j != i);
        }
        CandidateSource::Config => {
            let iu = i as usize;
            let y_limited = attack.config.limit_diff_vpin_y;
            if !y_limited && attack.radius.is_none() {
                // Unrestricted (`ML`) configuration: every other v-pin is
                // a candidate whichever enumeration is selected.
                out.clear();
                out.extend((0..n as u32).filter(|&j| j != i));
                return;
            }
            match enumeration {
                Enumeration::Spatial => {
                    if y_limited {
                        let index = index.expect("index exists for Y-limited configs");
                        index.same_y(view.vpins()[iu].loc.y, i, out);
                        if let Some(r) = attack.radius {
                            out.retain(|&j| view.distance(iu, j as usize) <= r);
                        }
                    } else {
                        let r = attack.radius.expect("radius exists on this path");
                        let index = index.expect("index exists for neighborhood configs");
                        index.within_radius_unordered(view, view.vpins()[iu].loc, r, i, out);
                    }
                }
                Enumeration::AllPairs => {
                    out.clear();
                    let yi = view.vpins()[iu].loc.y;
                    for j in 0..n as u32 {
                        if j == i {
                            continue;
                        }
                        if y_limited && view.vpins()[j as usize].loc.y != yi {
                            continue;
                        }
                        if let Some(r) = attack.radius {
                            if view.distance(iu, j as usize) > r {
                                continue;
                            }
                        }
                        out.push(j);
                    }
                }
            }
        }
    }
}

/// Total preference order on candidates: probability descending, then
/// distance ascending, then index ascending, where `Ordering::Greater`
/// means `a` is preferred. Every tie is broken down to the v-pin index, so
/// the retained top-K list is a pure function of the candidate *set* —
/// independent of enumeration order — which is what makes the spatial and
/// all-pairs enumerations bit-identical.
fn cand_cmp(a: &Cand, b: &Cand) -> std::cmp::Ordering {
    a.p.total_cmp(&b.p)
        .then(b.dist.cmp(&a.dist))
        .then(b.index.cmp(&a.index))
}

/// Bounded keeper: retains the `k` best candidates under [`cand_cmp`].
fn push_top(top: &mut Vec<Cand>, c: Cand, k: usize) {
    if top.len() < k {
        top.push(c);
        if top.len() == k {
            // Establish ascending preference order: the worst retained
            // candidate sits at the front.
            top.sort_by(cand_cmp);
        }
        return;
    }
    if cand_cmp(&c, &top[0]) == std::cmp::Ordering::Greater {
        top[0] = c;
        // Restore sortedness with a single sift pass.
        let mut i = 0;
        while i + 1 < top.len() && cand_cmp(&top[i], &top[i + 1]) == std::cmp::Ordering::Greater {
            top.swap(i, i + 1);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn suite_views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    fn leave_one_out(views: &[SplitView], test: usize) -> (Vec<&SplitView>, &SplitView) {
        let train: Vec<&SplitView> = views
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != test)
            .map(|(_, v)| v)
            .collect();
        (train, &views[test])
    }

    #[test]
    fn config_names_and_feature_counts() {
        assert_eq!(AttackConfig::ml9().name, "ML-9");
        assert_eq!(AttackConfig::imp7().features.len(), 7);
        assert_eq!(AttackConfig::imp11().with_y_limit().name, "Imp-11Y");
        assert_eq!(AttackConfig::standard_eight().len(), 8);
        assert!(AttackConfig::imp9().scalable);
        assert!(!AttackConfig::ml9().scalable);
    }

    #[test]
    fn training_requires_views() {
        let err = TrainedAttack::train(&AttackConfig::imp9(), &[], None);
        assert!(matches!(err, Err(AttackError::NoTrainingData)));
    }

    #[test]
    fn imp_training_resolves_a_radius_ml_does_not() {
        let views = suite_views(6);
        let (train, _) = leave_one_out(&views, 0);
        let imp = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        assert!(imp.radius().is_some());
        let ml = TrainedAttack::train(&AttackConfig::ml9(), &train, None).expect("train");
        assert!(ml.radius().is_none());
        assert!(imp.num_training_samples() > 0);
    }

    #[test]
    fn scoring_covers_every_target_and_finds_matches() {
        let views = suite_views(6);
        let (train, test) = leave_one_out(&views, 0);
        let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
        let scored = model.score(test, &ScoreOptions::default());
        assert_eq!(scored.slots.len(), test.num_vpins());
        let with_truth = scored
            .slots
            .iter()
            .filter(|s| s.true_prob.is_some())
            .count();
        // The 90% neighborhood must retain the large majority of matches.
        assert!(
            with_truth as f64 / scored.slots.len() as f64 > 0.6,
            "only {with_truth}/{} matches were scored",
            scored.slots.len()
        );
        assert!(scored.pairs_scored > 0);
    }

    #[test]
    fn attack_separates_matches_from_nonmatches() {
        let views = suite_views(6);
        let (train, test) = leave_one_out(&views, 1);
        let model = TrainedAttack::train(&AttackConfig::imp11(), &train, None).expect("train");
        let scored = model.score(test, &ScoreOptions::default());
        // Mean probability of true matches should far exceed the mean over
        // all candidates.
        let truths: Vec<f64> = scored.slots.iter().filter_map(|s| s.true_prob).collect();
        let mean_truth = truths.iter().sum::<f64>() / truths.len() as f64;
        let total: u64 = scored.hist.iter().sum();
        let mean_all: f64 = scored
            .hist
            .iter()
            .enumerate()
            .map(|(k, &c)| bin_threshold(k) * c as f64)
            .sum::<f64>()
            / total as f64;
        assert!(
            mean_truth > mean_all + 0.2,
            "no separation: matches {mean_truth:.3} vs all {mean_all:.3}"
        );
    }

    #[test]
    fn y_limit_scores_only_same_track_pairs() {
        let views = suite_views(8);
        let (train, test) = leave_one_out(&views, 0);
        let cfg = AttackConfig::imp9().with_y_limit();
        let model = TrainedAttack::train(&cfg, &train, None).expect("train");
        let scored = model.score(test, &ScoreOptions::default());
        for slot in &scored.slots {
            let yi = test.vpins()[slot.vpin as usize].loc.y;
            for c in &slot.top {
                assert_eq!(test.vpins()[c.index as usize].loc.y, yi);
            }
        }
    }

    #[test]
    fn targets_option_restricts_scoring() {
        let views = suite_views(6);
        let (train, test) = leave_one_out(&views, 0);
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let opts = ScoreOptions {
            targets: Some(vec![0, 5, 7]),
            ..ScoreOptions::default()
        };
        let scored = model.score(test, &opts);
        assert_eq!(scored.slots.len(), 3);
        assert_eq!(scored.slots[1].vpin, 5);
        assert_eq!(scored.num_view_vpins, test.num_vpins());
    }

    #[test]
    fn top_lists_are_sorted_and_bounded() {
        let views = suite_views(6);
        let (train, test) = leave_one_out(&views, 2);
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let opts = ScoreOptions {
            top_fraction: 0.01,
            ..ScoreOptions::default()
        };
        let scored = model.score(test, &opts);
        let cap = ((0.01 * test.num_vpins() as f64).ceil() as usize).max(16);
        for s in &scored.slots {
            assert!(s.top.len() <= cap);
            assert!(
                s.top.windows(2).all(|w| w[0].p >= w[1].p),
                "top list must be sorted"
            );
        }
    }

    #[test]
    fn scoring_is_deterministic_across_thread_counts() {
        let views = suite_views(8);
        let (train, test) = leave_one_out(&views, 0);
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let one = model.score(
            test,
            &ScoreOptions {
                parallelism: Parallelism::Sequential,
                ..ScoreOptions::default()
            },
        );
        let four = model.score(
            test,
            &ScoreOptions {
                parallelism: Parallelism::Threads(4),
                ..ScoreOptions::default()
            },
        );
        assert_eq!(
            one, four,
            "scoring must be bit-identical across thread counts"
        );
    }

    #[test]
    fn compiled_and_reference_kernels_score_identically() {
        let views = suite_views(6);
        let (train, test) = leave_one_out(&views, 0);
        for cfg in [AttackConfig::imp9(), AttackConfig::ml9()] {
            let model = TrainedAttack::train(&cfg, &train, None).expect("train");
            let compiled = model.score(
                test,
                &ScoreOptions {
                    kernel: Kernel::Compiled,
                    ..ScoreOptions::default()
                },
            );
            let reference = model.score(
                test,
                &ScoreOptions {
                    kernel: Kernel::Reference,
                    ..ScoreOptions::default()
                },
            );
            assert_eq!(compiled, reference, "{}", cfg.name);
        }
    }

    #[test]
    fn spatial_and_all_pairs_enumerations_score_identically() {
        for (split, cfg) in [
            (6u8, AttackConfig::imp11()),
            (8u8, AttackConfig::imp9().with_y_limit()),
            (6u8, AttackConfig::ml9()),
        ] {
            let views = suite_views(split);
            let (train, test) = leave_one_out(&views, 0);
            let model = TrainedAttack::train(&cfg, &train, None).expect("train");
            let spatial = model.score(test, &ScoreOptions::default());
            let oracle = model.score(
                test,
                &ScoreOptions {
                    enumeration: Enumeration::AllPairs,
                    ..ScoreOptions::default()
                },
            );
            assert_eq!(spatial, oracle, "{}", cfg.name);
        }
    }

    #[test]
    fn enumeration_parses_and_displays() {
        assert_eq!("spatial".parse(), Ok(Enumeration::Spatial));
        assert_eq!("ALL-PAIRS".parse(), Ok(Enumeration::AllPairs));
        assert_eq!("oracle".parse(), Ok(Enumeration::AllPairs));
        assert_eq!(Enumeration::default(), Enumeration::Spatial);
        assert!("grid".parse::<Enumeration>().is_err());
        for e in [Enumeration::Spatial, Enumeration::AllPairs] {
            assert_eq!(e.to_string().parse(), Ok(e));
        }
    }

    #[test]
    fn push_top_breaks_ties_by_distance_then_index() {
        // Equal probabilities: the nearer candidate wins; equal distances:
        // the lower index wins — independent of arrival order, which is
        // what makes the keeper enumeration-order-invariant.
        let mk = |index, dist| Cand {
            p: 0.5,
            index,
            dist,
        };
        let orders: [[Cand; 3]; 2] = [
            [mk(2, 30), mk(1, 10), mk(3, 10)],
            [mk(3, 10), mk(2, 30), mk(1, 10)],
        ];
        for cs in orders {
            let mut top = Vec::new();
            for c in cs {
                push_top(&mut top, c, 2);
            }
            top.sort_by(|a, b| cand_cmp(b, a));
            let kept: Vec<u32> = top.iter().map(|c| c.index).collect();
            assert_eq!(kept, vec![1, 3]);
        }
    }

    #[test]
    fn kernel_parses_and_displays() {
        assert_eq!("compiled".parse(), Ok(Kernel::Compiled));
        assert_eq!("REF".parse(), Ok(Kernel::Reference));
        assert_eq!(Kernel::default(), Kernel::Compiled);
        assert!("fast".parse::<Kernel>().is_err());
        for k in [Kernel::Compiled, Kernel::Reference] {
            assert_eq!(k.to_string().parse(), Ok(k));
        }
    }

    #[test]
    fn top_floor_controls_tiny_view_lists() {
        // On a view smaller than the default floor of 16, the floor — not
        // top_fraction — decides the retained list size. An explicit
        // top_floor restores fraction-proportional lists.
        let views = suite_views(8);
        let (train, test) = leave_one_out(&views, 0);
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        // Restrict to a handful of targets; list sizes depend only on
        // top_k, so any view exercises the floor arithmetic.
        let small_floor = model.score(
            test,
            &ScoreOptions {
                top_fraction: 1e-9, // ceil -> 1 retained candidate
                top_floor: 2,
                targets: Some(vec![0, 1, 2]),
                ..ScoreOptions::default()
            },
        );
        for s in &small_floor.slots {
            assert!(
                s.top.len() <= 2,
                "floor 2 must cap lists, got {}",
                s.top.len()
            );
        }
        let default_floor = model.score(
            test,
            &ScoreOptions {
                top_fraction: 1e-9,
                targets: Some(vec![0, 1, 2]),
                ..ScoreOptions::default()
            },
        );
        // The silent-inflation behavior the explicit floor documents: the
        // same fraction keeps up to 16 candidates under the default.
        assert!(default_floor.slots.iter().any(|s| s.top.len() > 2));
        assert!(default_floor
            .slots
            .iter()
            .all(|s| s.top.len() <= DEFAULT_TOP_FLOOR));
    }

    #[test]
    fn top_floor_governs_views_smaller_than_the_floor() {
        // A synthetic view with 8 v-pins — fewer than DEFAULT_TOP_FLOOR —
        // so every candidate list is floor-limited: the default keeps all
        // 7 legal partners regardless of top_fraction, and only an
        // explicit lower floor trims the lists.
        use sm_layout::geom::{Point, Rect};
        use sm_layout::{SplitLayer, VPin};
        let n = 8usize;
        assert!(n < DEFAULT_TOP_FLOOR);
        let vpins: Vec<VPin> = (0..n)
            .map(|i| {
                let x = 1000 * i as i64;
                VPin {
                    loc: Point::new(x, 500),
                    pin_loc: Point::new(x, 700),
                    wirelength: 900 + x,
                    in_area: if i % 2 == 0 { 0 } else { 4000 },
                    out_area: if i % 2 == 0 { 4000 } else { 0 },
                    pc: 1.5,
                    rc: 2.5,
                }
            })
            .collect();
        // Partner each driver (even) with the next sink (odd).
        let partner: Vec<u32> = (0..n as u32).map(|i| i ^ 1).collect();
        let tiny = sm_layout::SplitView::from_parts(
            "tiny".into(),
            SplitLayer::new(8).expect("valid layer"),
            Rect::new(Point::new(0, 0), Point::new(10_000, 10_000)),
            vpins,
            partner,
        )
        .expect("valid tiny view");

        let views = suite_views(8);
        let train: Vec<&SplitView> = views.iter().collect();
        let model = TrainedAttack::train(&AttackConfig::ml9(), &train, None).expect("train");
        let default_floor = model.score(&tiny, &ScoreOptions::default());
        assert!(default_floor
            .slots
            .iter()
            .any(|s| !s.top.is_empty() && s.top.len() > 3));
        let floored = model.score(
            &tiny,
            &ScoreOptions {
                top_floor: 3,
                ..ScoreOptions::default()
            },
        );
        assert!(floored.slots.iter().all(|s| s.top.len() <= 3));
        assert!(floored.slots.iter().any(|s| s.top.len() == 3));
    }

    #[test]
    fn push_top_keeps_the_k_best() {
        let mut top = Vec::new();
        for (i, p) in [0.1, 0.9, 0.5, 0.95, 0.2, 0.8].iter().enumerate() {
            push_top(
                &mut top,
                Cand {
                    p: *p,
                    index: i as u32,
                    dist: 0,
                },
                3,
            );
        }
        let mut ps: Vec<f64> = top.iter().map(|c| c.p).collect();
        ps.sort_by(f64::total_cmp);
        assert_eq!(ps, vec![0.8, 0.9, 0.95]);
    }

    #[test]
    fn hist_bins_are_monotone_and_in_range() {
        assert_eq!(hist_bin(0.0), 0);
        assert_eq!(hist_bin(1.0), HIST_BINS - 1);
        assert!(hist_bin(0.5) < hist_bin(0.75));
        assert!((bin_threshold(hist_bin(0.5)) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn bin_edges_share_one_convention() {
        // A probability on a bin edge stays at or above that edge's
        // threshold; first_bin snaps thresholds up to the next edge.
        assert_eq!(first_bin(0.0), 0);
        assert_eq!(first_bin(1.0), HIST_BINS - 1);
        assert_eq!(first_bin(0.5), hist_bin(0.5));
        assert_eq!(bin_threshold(hist_bin(0.5)), 0.5);
        // Off-edge thresholds round up, never down: a candidate strictly
        // below t must never be counted by a histogram sweep from
        // first_bin(t).
        let t = 0.5 + 0.25 / HIST_BINS as f64;
        assert_eq!(first_bin(t), hist_bin(0.5) + 1);
        for k in 0..HIST_BINS {
            assert_eq!(first_bin(bin_threshold(k)), k.min(HIST_BINS - 1));
        }
    }
}
