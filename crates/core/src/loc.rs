//! List-of-Candidates (LoC) analysis: threshold sweeps, trade-off curves,
//! and the aligned comparisons used by the paper's tables (Section III-F).
//!
//! The scoring stage records every candidate probability once, so the LoC
//! at *any* threshold — and therefore the full LoC-size/accuracy trade-off
//! — is derived here without re-running inference. Tables I–III compare
//! models by fixing one metric at a reference value and reading the other
//! off this curve.

use serde::{Deserialize, Serialize};

use crate::attack::{bin_threshold, first_bin, ScoredView, HIST_BINS};

/// One point of the LoC/accuracy trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Probability threshold.
    pub threshold: f64,
    /// Fraction of v-pins whose true match is in their LoC.
    pub accuracy: f64,
    /// Mean LoC size (candidates per v-pin).
    pub mean_loc: f64,
    /// Mean LoC size divided by the view's v-pin count.
    pub loc_fraction: f64,
}

/// The full trade-off curve of one or several scored views.
///
/// Accuracy and mean LoC are both non-increasing in the threshold, so the
/// curve is swept once from the histogram and queried monotonically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocCurve {
    points: Vec<CurvePoint>,
}

impl ScoredView {
    /// Accuracy at threshold `t`: the fraction of scored v-pins whose true
    /// match was evaluated and received a probability at or above `t`.
    ///
    /// `t` is snapped up to the next histogram bin edge — the same
    /// convention [`ScoredView::mean_loc_at`] uses — so a candidate counts
    /// toward the LoC exactly when an identical true-match probability
    /// counts toward accuracy.
    pub fn accuracy_at(&self, t: f64) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let t_eff = bin_threshold(first_bin(t));
        let hits = self
            .slots
            .iter()
            .filter(|s| s.true_prob.is_some_and(|p| p >= t_eff))
            .count();
        hits as f64 / self.slots.len() as f64
    }

    /// Mean LoC size at threshold `t` (candidates with `p >= t`, averaged
    /// over scored v-pins). Uses the same snapped-up bin-edge convention as
    /// [`ScoredView::accuracy_at`].
    pub fn mean_loc_at(&self, t: f64) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        let count: u64 = self.hist[first_bin(t)..].iter().sum();
        count as f64 / self.slots.len() as f64
    }

    /// The highest achievable accuracy (threshold 0): limited by pairs the
    /// configuration excluded outright — the saturation plateau of Fig. 9.
    pub fn max_accuracy(&self) -> f64 {
        self.accuracy_at(0.0)
    }

    /// Builds the trade-off curve of this single view.
    pub fn curve(&self) -> LocCurve {
        LocCurve::from_views(std::slice::from_ref(self))
    }
}

/// Incremental builder for [`LocCurve`]: feed scored views one at a time,
/// keeping none of them alive afterwards.
///
/// Produces bit-identical results to [`LocCurve::from_views`]: per-bin
/// sums accumulate in view order, so the floating-point operand order is
/// exactly the batch function's inner loop. Memory is bounded by the three
/// `HIST_BINS` accumulator arrays instead of every scored view at once —
/// what the paper-scale streaming cross-validation drivers rely on.
///
/// Serializes for checkpointing: the accumulators are plain `f64` sums
/// and `serde_json` round-trips `f64` exactly (shortest-roundtrip
/// printing), so a builder restored from a checkpoint continues
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocCurveBuilder {
    num_views: usize,
    acc: Vec<f64>,
    mean_loc: Vec<f64>,
    loc_fraction: Vec<f64>,
}

impl Default for LocCurveBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LocCurveBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            num_views: 0,
            acc: vec![0.0; HIST_BINS],
            mean_loc: vec![0.0; HIST_BINS],
            loc_fraction: vec![0.0; HIST_BINS],
        }
    }

    /// Number of views folded in so far.
    pub fn num_views(&self) -> usize {
        self.num_views
    }

    /// Folds one scored view into the running per-bin averages.
    pub fn add_view(&mut self, view: &ScoredView) {
        // Pre-sort the view's true probabilities for O(log) accuracy
        // queries per bin.
        let mut truths: Vec<f64> = view.slots.iter().filter_map(|s| s.true_prob).collect();
        truths.sort_by(f64::total_cmp);
        let n_slots = view.slots.len().max(1) as f64;
        // Cumulative candidate count from the top bin down.
        let mut suffix = 0u64;
        for k in (0..HIST_BINS).rev() {
            let t = bin_threshold(k);
            suffix += view.hist[k];
            // Count truths with p >= t. The histogram bins candidates by
            // floor, so comparing against bin k's lower edge counts
            // exactly the probabilities the suffix sum counts.
            let hits = truths.len() - truths.partition_point(|p| *p < t);
            self.acc[k] += hits as f64 / view.slots.len().max(1) as f64;
            let ml = suffix as f64 / n_slots;
            self.mean_loc[k] += ml;
            self.loc_fraction[k] += ml / view.num_view_vpins.max(1) as f64;
        }
        self.num_views += 1;
    }

    /// The averaged curve over every added view.
    ///
    /// # Panics
    ///
    /// Panics if no view was added.
    pub fn finish(self) -> LocCurve {
        assert!(self.num_views > 0, "need at least one scored view");
        let nv = self.num_views as f64;
        let points = (0..HIST_BINS)
            .map(|k| CurvePoint {
                threshold: bin_threshold(k),
                accuracy: self.acc[k] / nv,
                mean_loc: self.mean_loc[k] / nv,
                loc_fraction: self.loc_fraction[k] / nv,
            })
            .collect();
        LocCurve { points }
    }
}

impl LocCurve {
    /// Builds the averaged trade-off curve of several scored views (the
    /// paper's figures average accuracy and LoC fraction over the five
    /// benchmarks at a common threshold).
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn from_views(views: &[ScoredView]) -> Self {
        assert!(!views.is_empty(), "need at least one scored view");
        let mut builder = LocCurveBuilder::new();
        for view in views {
            builder.add_view(view);
        }
        builder.finish()
    }

    /// The curve points in ascending-threshold order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Smallest mean LoC achieving at least `target` accuracy, or `None`
    /// if the accuracy saturates below the target. Returns the full curve
    /// point (Table I's "|LoC| with the same accuracy" columns).
    pub fn min_loc_at_accuracy(&self, target: f64) -> Option<CurvePoint> {
        // Accuracy is non-increasing in threshold: take the largest
        // threshold still meeting the target.
        self.points
            .iter()
            .rev()
            .find(|p| p.accuracy >= target)
            .copied()
    }

    /// Highest accuracy achievable with mean LoC at most `target` (Table
    /// I's "accuracy with the same |LoC|" columns). Returns the curve point
    /// at the smallest qualifying threshold.
    pub fn max_accuracy_at_loc(&self, target: f64) -> Option<CurvePoint> {
        // Mean LoC is non-increasing in threshold: the smallest threshold
        // with mean_loc <= target maximises accuracy.
        self.points.iter().find(|p| p.mean_loc <= target).copied()
    }

    /// Smallest LoC *fraction* achieving at least `target` accuracy
    /// (Table IV's left block).
    pub fn min_loc_fraction_at_accuracy(&self, target: f64) -> Option<f64> {
        self.min_loc_at_accuracy(target).map(|p| p.loc_fraction)
    }

    /// Accuracy at the given LoC fraction (Table IV's right block).
    pub fn accuracy_at_loc_fraction(&self, fraction: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.loc_fraction <= fraction)
            .map(|p| p.accuracy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{hist_bin, VpinScore};

    /// Builds a synthetic scored view: `n` slots with known truth
    /// probabilities and a candidate histogram.
    fn synthetic(truths: &[Option<f64>], cand_probs: &[f64], n_view: usize) -> ScoredView {
        let slots: Vec<VpinScore> = truths
            .iter()
            .enumerate()
            .map(|(i, t)| VpinScore {
                vpin: i as u32,
                true_prob: *t,
                top: Vec::new(),
            })
            .collect();
        let mut hist = vec![0u64; HIST_BINS];
        for &p in cand_probs {
            hist[hist_bin(p)] += 1;
        }
        ScoredView {
            slots,
            hist,
            num_view_vpins: n_view,
            pairs_scored: cand_probs.len() as u64,
        }
    }

    #[test]
    fn accuracy_counts_only_scored_truths() {
        let v = synthetic(&[Some(0.9), Some(0.4), None], &[0.9, 0.4], 3);
        assert!((v.accuracy_at(0.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((v.accuracy_at(0.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.max_accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_loc_shrinks_with_threshold() {
        let v = synthetic(
            &[Some(0.9), Some(0.8)],
            &[0.9, 0.8, 0.7, 0.6, 0.5, 0.1, 0.1, 0.1],
            2,
        );
        assert!((v.mean_loc_at(0.0) - 4.0).abs() < 1e-12);
        assert!((v.mean_loc_at(0.55) - 2.0).abs() < 1e-9);
        assert!(v.mean_loc_at(0.95) < v.mean_loc_at(0.05));
    }

    #[test]
    fn accuracy_and_loc_share_the_bin_edge_convention() {
        // Regression for a threshold/binning mismatch: accuracy_at used an
        // exact `p >= t` filter while mean_loc_at rounded `t` to the
        // nearest bin, so a candidate up to half a bin *below* t was
        // counted in the LoC but its identical true-match probability was
        // not counted as accurate. Pin a probability exactly between two
        // bin centers and sweep thresholds around it: the two metrics must
        // always agree on whether it counts.
        let p0 = (1023.5) / HIST_BINS as f64; // midway inside bin 1023
        let v = synthetic(&[Some(p0)], &[p0], 1);
        let half_bin = 0.5 / HIST_BINS as f64;
        for t in [0.0, p0 - half_bin, p0, p0 + half_bin, p0 + 3.0 * half_bin] {
            let acc = v.accuracy_at(t);
            let loc = v.mean_loc_at(t);
            assert_eq!(
                acc, loc,
                "metrics disagree at t={t}: accuracy {acc} vs mean LoC {loc}"
            );
        }
        // And the snapping is upward: a threshold just above the bin's
        // lower edge excludes the bin entirely in both metrics.
        let above_edge = 1023.25 / HIST_BINS as f64;
        assert_eq!(v.accuracy_at(above_edge), 0.0);
        assert_eq!(v.mean_loc_at(above_edge), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let v = synthetic(
            &[Some(0.95), Some(0.6), Some(0.3), None],
            &[0.95, 0.9, 0.6, 0.55, 0.3, 0.2, 0.2, 0.1, 0.05],
            4,
        );
        let c = v.curve();
        for w in c.points().windows(2) {
            assert!(
                w[0].accuracy >= w[1].accuracy,
                "accuracy must not rise with threshold"
            );
            assert!(
                w[0].mean_loc >= w[1].mean_loc,
                "LoC must not rise with threshold"
            );
        }
    }

    #[test]
    fn alignment_queries_agree_with_direct_evaluation() {
        let v = synthetic(
            &[Some(0.95), Some(0.6), Some(0.3), Some(0.9)],
            &[0.95, 0.9, 0.6, 0.55, 0.3, 0.2, 0.2, 0.1],
            4,
        );
        let c = v.curve();
        // 75% accuracy requires t <= 0.6; the minimal LoC there keeps the
        // candidates with p >= ~0.6.
        let pt = c.min_loc_at_accuracy(0.75).expect("achievable");
        assert!(pt.accuracy >= 0.75);
        assert!(pt.mean_loc <= v.mean_loc_at(0.55) + 1e-9);
        // Unachievable accuracy returns None.
        assert!(c.min_loc_at_accuracy(1.01).is_none());
        // Accuracy at a generous LoC is max accuracy.
        let pt = c.max_accuracy_at_loc(100.0).expect("achievable");
        assert!((pt.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_views_report_none_for_high_targets() {
        // Half the matches were excluded -> accuracy saturates at 0.5.
        let v = synthetic(&[Some(0.9), None], &[0.9, 0.5], 2);
        let c = v.curve();
        assert!(c.min_loc_at_accuracy(0.95).is_none());
        assert!(c.min_loc_at_accuracy(0.5).is_some());
    }

    #[test]
    fn averaged_curve_mixes_views() {
        let a = synthetic(&[Some(0.9)], &[0.9], 1);
        let b = synthetic(&[None], &[0.1], 1);
        let c = LocCurve::from_views(&[a, b]);
        let p0 = c.points().first().expect("non-empty");
        assert!((p0.accuracy - 0.5).abs() < 1e-12, "average of 1.0 and 0.0");
    }

    #[test]
    fn builder_matches_batch_curve_bit_for_bit() {
        let a = synthetic(&[Some(0.9), Some(0.2)], &[0.9, 0.2, 0.4], 2);
        let b = synthetic(&[None, Some(0.7)], &[0.7, 0.1], 4);
        let c = synthetic(&[Some(0.5)], &[0.5, 0.5, 0.5], 1);
        let batch = LocCurve::from_views(&[a.clone(), b.clone(), c.clone()]);
        let mut builder = LocCurveBuilder::new();
        for v in [&a, &b, &c] {
            builder.add_view(v);
        }
        assert_eq!(builder.num_views(), 3);
        assert_eq!(builder.finish(), batch);
    }

    #[test]
    #[should_panic(expected = "at least one scored view")]
    fn empty_builder_panics_on_finish() {
        let _ = LocCurveBuilder::new().finish();
    }

    #[test]
    fn loc_fraction_normalises_by_view_size() {
        let v = synthetic(&[Some(0.9), Some(0.9)], &[0.9, 0.9, 0.9, 0.9], 100);
        let c = v.curve();
        let p0 = c.points().first().expect("non-empty");
        assert!((p0.mean_loc - 2.0).abs() < 1e-12);
        assert!((p0.loc_fraction - 0.02).abs() < 1e-12);
    }
}
