//! Crash-durable file writes shared by every durable store in the
//! workspace (model artifacts, registry indexes, attack checkpoints).
//!
//! [`atomic_write`] follows the full crash-safety discipline:
//!
//! 1. write the bytes to a `.tmp` sibling,
//! 2. `fsync` the staging file (the data must be durable *before* the
//!    rename publishes it, or a crash could atomically install an empty
//!    file),
//! 3. atomically `rename` it over the destination,
//! 4. `fsync` the parent directory (the rename itself lives in the
//!    directory; without this a power cut after the rename can roll the
//!    directory entry back to the old file — the rename was atomic but
//!    not yet durable).
//!
//! A crash at any instant therefore leaves either the previous file or
//! the complete new one at the destination — never a truncation — and
//! once `atomic_write` returns, the new file survives power loss.
//!
//! Every stage is bracketed by [`crate::failpoint`] sites named
//! `<site>.before_tmp`, `<site>.after_tmp`, `<site>.after_rename` and
//! `<site>.after_dir_sync`, so chaos tests can kill the process in each
//! distinct on-disk state and assert recovery.

use std::io;
use std::path::Path;

use crate::failpoint;

/// FNV-1a 64-bit hash of `bytes`, formatted as the checksum string used
/// by artifact headers, registry index entries and checkpoint headers
/// (`fnv1a64:<16 hex>`).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{hash:016x}")
}

/// Writes `bytes` to `path` crash-durably (see the module docs for the
/// four-stage discipline). `site` names the [`crate::failpoint`] site
/// family bracketing each stage (`"checkpoint"`, `"artifact"`,
/// `"registry_index"`).
///
/// # Errors
///
/// Returns the underlying [`io::Error`]; the `.tmp` sibling is removed
/// best-effort on the error path. A path without a file name is
/// [`io::ErrorKind::InvalidInput`].
pub fn atomic_write(path: &Path, bytes: &[u8], site: &str) -> io::Result<()> {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("path {} has no file name", path.display()),
        ));
    };
    let tmp = path.with_file_name(format!("{name}.tmp"));
    failpoint::hit(&format!("{site}.before_tmp"));
    let write_then_sync = (|| {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        failpoint::hit(&format!("{site}.after_tmp"));
        std::fs::rename(&tmp, path)?;
        failpoint::hit(&format!("{site}.after_rename"));
        // The rename is atomic but only durable once the directory entry
        // is on disk. An unwritable parent (rare filesystems) is not a
        // correctness failure for readers — they still see old-or-new —
        // so sync errors here are real errors, not ignored.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
        failpoint::hit(&format!("{site}.after_dir_sync"));
        Ok(())
    })();
    if let Err(e) = write_then_sync {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_position_dependent() {
        assert_eq!(fnv1a64(b""), "fnv1a64:cbf29ce484222325");
        assert_eq!(fnv1a64(b"a"), "fnv1a64:af63dc4c8601ec8c");
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_staging_file() {
        let dir = std::env::temp_dir().join("smattack_durable_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("file");
        atomic_write(&path, b"one", "test").expect("writes");
        assert_eq!(std::fs::read(&path).expect("reads"), b"one");
        atomic_write(&path, b"two", "test").expect("replaces");
        assert_eq!(std::fs::read(&path).expect("reads"), b"two");
        assert!(!dir.join("file.tmp").exists(), "staging file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pathological_paths_are_typed_io_errors() {
        assert_eq!(
            atomic_write(Path::new("/"), b"x", "test")
                .expect_err("no file name")
                .kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(atomic_write(Path::new("/nonexistent-parent-dir/file"), b"x", "test").is_err());
    }

    #[test]
    fn relative_paths_without_a_parent_sync_the_cwd() {
        // `path.parent()` is Some("") for a bare file name; the directory
        // fsync must fall back to "." instead of failing.
        let dir = std::env::temp_dir().join("smattack_durable_cwd_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let prev = std::env::current_dir().expect("cwd");
        std::env::set_current_dir(&dir).expect("chdir");
        let res = atomic_write(Path::new("bare-file"), b"x", "test");
        std::env::set_current_dir(prev).expect("chdir back");
        res.expect("bare relative path writes");
        assert_eq!(std::fs::read(dir.join("bare-file")).expect("reads"), b"x");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
