//! Design obfuscation as a defence (paper Section III-I).
//!
//! The paper models routing obfuscation by adding small Gaussian noise to
//! every v-pin's y-coordinate — directly attacking the two most important
//! features (`DiffVpinY`, `ManhattanVpin`) — and re-running the identical
//! training/testing pipeline on the noisy views.

use sm_layout::SplitView;

/// Applies y-noise with standard deviation `sd_fraction` of each view's die
/// height (the paper uses 1 %–2 %). Ground truth is untouched; `RC` is
/// recomputed on the noisy positions.
///
/// # Examples
///
/// ```
/// use sm_attack::obfuscate::obfuscate_views;
/// use sm_layout::{SplitLayer, Suite};
///
/// let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(6)?);
/// let noisy = obfuscate_views(&views, 0.01, 99);
/// assert_eq!(noisy.len(), views.len());
/// assert_ne!(noisy[0].vpins()[0].loc, views[0].vpins()[0].loc);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn obfuscate_views(views: &[SplitView], sd_fraction: f64, seed: u64) -> Vec<SplitView> {
    views
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let sd = sd_fraction * v.die.height() as f64;
            v.with_y_noise(sd, seed ^ (i as u64).wrapping_mul(0x9e37_79b9))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    #[test]
    fn noise_magnitude_tracks_the_requested_fraction() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(6).expect("valid"));
        let noisy = obfuscate_views(&views, 0.02, 1);
        for (v, nv) in views.iter().zip(&noisy) {
            let sd_expect = 0.02 * v.die.height() as f64;
            let displacements: Vec<f64> = v
                .vpins()
                .iter()
                .zip(nv.vpins())
                .map(|(a, b)| (a.loc.y - b.loc.y) as f64)
                .collect();
            let mean = displacements.iter().sum::<f64>() / displacements.len() as f64;
            let var = displacements
                .iter()
                .map(|d| (d - mean) * (d - mean))
                .sum::<f64>()
                / displacements.len() as f64;
            let sd = var.sqrt();
            // Clamping at the die edge skews this slightly; allow slack.
            assert!(
                sd > 0.5 * sd_expect && sd < 1.5 * sd_expect,
                "{}: sd {sd:.0} vs expected {sd_expect:.0}",
                v.name
            );
        }
    }

    #[test]
    fn x_coordinates_and_truth_are_preserved() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(4).expect("valid"));
        let noisy = obfuscate_views(&views, 0.01, 2);
        for (v, nv) in views.iter().zip(&noisy) {
            for i in 0..v.num_vpins() {
                assert_eq!(v.vpins()[i].loc.x, nv.vpins()[i].loc.x);
                assert_eq!(v.true_match(i), nv.true_match(i));
            }
        }
    }

    #[test]
    fn obfuscation_is_deterministic_per_seed() {
        let views = Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(6).expect("valid"));
        let a = obfuscate_views(&views, 0.01, 7);
        let b = obfuscate_views(&views, 0.01, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vpins(), y.vpins());
        }
    }
}
