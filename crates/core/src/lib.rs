//! # sm-attack — machine-learning attack on split manufacturing
//!
//! Implementation of the attack framework of *"Analysis of Security of
//! Split Manufacturing Using Machine Learning"* (Zeng, Zhang, Davoodi):
//! given the FEOL view of a split-manufactured layout
//! ([`sm_layout::SplitView`]), recover which v-pins belong to the same net.
//!
//! The pipeline (paper Fig. 1): extract the 11 pair features
//! ([`features`]), generate balanced training samples ([`samples`]) —
//! optionally restricted to a ManhattanVpin neighborhood ([`neighborhood`],
//! the scalable `Imp` variants) and/or to same-track pairs (`Y` variants) —
//! train a Bagging-of-REPTrees classifier, score every candidate pair of
//! the held-out design ([`attack`]), and derive lists of candidates at any
//! threshold ([`loc`]), two-level pruned refinements ([`two_level`]), and
//! validation-based proximity attacks ([`proximity`]). The prior-work
//! comparator [5] lives in [`baseline`]; the obfuscation defence in
//! [`obfuscate`].
//!
//! ## Quick start
//!
//! ```
//! use sm_attack::attack::{AttackConfig, ScoreOptions};
//! use sm_attack::xval::leave_one_out;
//! use sm_layout::{SplitLayer, Suite};
//!
//! // A small suite; real experiments use scale 1.0.
//! let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(8)?);
//! let folds = leave_one_out(&AttackConfig::imp11(), &views, &ScoreOptions::default())?;
//! for fold in &folds {
//!     let curve = fold.scored.curve();
//!     println!(
//!         "{}: accuracy {:.1}% with mean LoC {:.1}",
//!         fold.test_name,
//!         100.0 * fold.scored.accuracy_at(0.5),
//!         fold.scored.mean_loc_at(0.5),
//!     );
//!     let _ = curve.min_loc_at_accuracy(0.9);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod attack;
pub mod baseline;
pub mod checkpoint;
pub mod defenses;
pub mod durable;
pub mod error;
pub mod failpoint;
pub mod features;
pub mod interrupt;
pub mod loc;
pub mod matching;
pub mod neighborhood;
pub mod obfuscate;
pub mod proximity;
pub mod refine;
pub mod samples;
pub mod two_level;
pub mod xval;

pub use attack::{
    AttackConfig, BaseClassifier, Enumeration, Kernel, ScoreOptions, ScoredView, TrainOptions,
    TrainedAttack, TrainedParts,
};
pub use checkpoint::{
    score_resumable, Checkpoint, CheckpointError, CheckpointSpec, Fingerprint, Resume, ScoreOutcome,
};
pub use error::AttackError;
pub use features::{FeatureSet, PairFeature, PairKernel, ALL_FEATURES};
pub use loc::{CurvePoint, LocCurve, LocCurveBuilder};
pub use matching::{greedy_matching, mutual_best, MatchingOutcome};
pub use proximity::{
    proximity_attack, validate_pa_fraction, validate_pa_fraction_opt, PaOutcome, PaValidation,
};
pub use sm_ml::{Parallelism, TreeBackend};
