//! Global matching extensions beyond the paper's per-v-pin attacks.
//!
//! The paper scores pairs independently and attacks each v-pin in
//! isolation (Section III-H), noting that attackers "could combine
//! [existing techniques] for even better performance". The natural
//! combination step is to exploit the *matching structure*: every v-pin
//! has exactly one partner, so two v-pins claiming the same candidate
//! cannot both be right. This module implements two such refinements on
//! top of a [`ScoredView`]:
//!
//! - [`greedy_matching`] — sort all retained candidate pairs by
//!   probability and commit them greedily, never reusing a v-pin (a 1/2-
//!   approximation of maximum-weight matching, scalable to every design
//!   size the paper uses — unlike the network-flow formulation of [13]
//!   which the paper rules out at scale).
//! - [`mutual_best`] — commit only pairs that are each other's top
//!   candidate; lower recall, much higher precision.

use serde::{Deserialize, Serialize};
use sm_layout::SplitView;

use crate::attack::ScoredView;

/// Outcome of a global matching attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchingOutcome {
    /// Committed pairs that are true matches.
    pub correct: usize,
    /// Total committed pairs.
    pub committed: usize,
    /// Total v-pins in the view.
    pub total_vpins: usize,
}

impl MatchingOutcome {
    /// Precision: correct / committed.
    pub fn precision(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.correct as f64 / self.committed as f64
        }
    }

    /// Recall: correctly matched v-pins / all v-pins.
    pub fn recall(&self) -> f64 {
        if self.total_vpins == 0 {
            0.0
        } else {
            (2 * self.correct) as f64 / self.total_vpins as f64
        }
    }
}

/// Greedy maximum-weight matching over the retained candidates: pairs are
/// committed in descending probability order, skipping any pair touching
/// an already-matched v-pin. Pairs below `min_prob` are never committed.
///
/// # Examples
///
/// ```
/// use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
/// use sm_attack::matching::greedy_matching;
/// use sm_layout::{SplitLayer, Suite};
///
/// let views = Suite::ispd2011_like(0.02)?.split_all(SplitLayer::new(8)?);
/// let train: Vec<&_> = views[1..].iter().collect();
/// let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None)?;
/// let scored = model.score(&views[0], &ScoreOptions::default());
/// let outcome = greedy_matching(&scored, &views[0], 0.5);
/// assert!(outcome.committed * 2 <= views[0].num_vpins());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn greedy_matching(scored: &ScoredView, view: &SplitView, min_prob: f64) -> MatchingOutcome {
    // Collect unique candidate pairs (i < j) with their probability.
    let mut pairs: Vec<(f64, u32, u32)> = Vec::new();
    for slot in &scored.slots {
        for c in &slot.top {
            if c.p >= min_prob {
                let (a, b) = if slot.vpin < c.index {
                    (slot.vpin, c.index)
                } else {
                    (c.index, slot.vpin)
                };
                pairs.push((c.p, a, b));
            }
        }
    }
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    pairs.dedup_by(|a, b| a.1 == b.1 && a.2 == b.2 && a.0 == b.0);

    let n = view.num_vpins();
    let mut used = vec![false; n];
    let mut correct = 0usize;
    let mut committed = 0usize;
    for (_, a, b) in pairs {
        let (au, bu) = (a as usize, b as usize);
        if used[au] || used[bu] {
            continue;
        }
        used[au] = true;
        used[bu] = true;
        committed += 1;
        if view.true_match(au) == bu {
            correct += 1;
        }
    }
    MatchingOutcome {
        correct,
        committed,
        total_vpins: n,
    }
}

/// Commits only pairs that are mutually each other's highest-probability
/// candidate (with `p >= min_prob` on both sides).
pub fn mutual_best(scored: &ScoredView, view: &SplitView, min_prob: f64) -> MatchingOutcome {
    let n = view.num_vpins();
    // Top candidate of each scored v-pin.
    let mut best: Vec<Option<u32>> = vec![None; n];
    for slot in &scored.slots {
        if let Some(c) = slot.top.first() {
            if c.p >= min_prob {
                best[slot.vpin as usize] = Some(c.index);
            }
        }
    }
    let mut correct = 0usize;
    let mut committed = 0usize;
    for i in 0..n {
        if let Some(j) = best[i] {
            let ju = j as usize;
            if i < ju && best[ju] == Some(i as u32) {
                committed += 1;
                if view.true_match(i) == ju {
                    correct += 1;
                }
            }
        }
    }
    MatchingOutcome {
        correct,
        committed,
        total_vpins: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackConfig, ScoreOptions, TrainedAttack};
    use crate::attack::{Cand, VpinScore, HIST_BINS};
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    fn synthetic(top: Vec<Vec<Cand>>, n: usize) -> ScoredView {
        ScoredView {
            slots: top
                .into_iter()
                .enumerate()
                .map(|(i, t)| VpinScore {
                    vpin: i as u32,
                    true_prob: None,
                    top: t,
                })
                .collect(),
            hist: vec![0; HIST_BINS],
            num_view_vpins: n,
            pairs_scored: 0,
        }
    }

    #[test]
    fn greedy_never_reuses_a_vpin() {
        let vs = views(8);
        let v = &vs[0];
        // Every slot claims v-pin 0 with high probability.
        let tops: Vec<Vec<Cand>> = (0..v.num_vpins())
            .map(|i| {
                vec![Cand {
                    p: 1.0 - i as f64 * 1e-4,
                    index: 0,
                    dist: 1,
                }]
            })
            .collect();
        let scored = synthetic(tops, v.num_vpins());
        let out = greedy_matching(&scored, v, 0.0);
        // Only one pair can involve v-pin 0.
        assert_eq!(out.committed, 1);
    }

    #[test]
    fn greedy_matching_beats_committing_everything() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let scored = model.score(&vs[0], &ScoreOptions::default());
        let matched = greedy_matching(&scored, &vs[0], 0.5);
        assert!(matched.committed > 0);
        assert!(matched.precision() > 0.0);
        assert!(matched.recall() <= 1.0);
        // Committed pairs are disjoint, so at most n/2.
        assert!(matched.committed * 2 <= vs[0].num_vpins());
    }

    #[test]
    fn mutual_best_is_a_subset_of_greedy_commitments() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let scored = model.score(&vs[0], &ScoreOptions::default());
        let mutual = mutual_best(&scored, &vs[0], 0.5);
        let greedy = greedy_matching(&scored, &vs[0], 0.5);
        assert!(mutual.committed <= greedy.committed);
        // Mutual-best is the high-precision variant.
        if mutual.committed > 0 {
            assert!(mutual.precision() >= greedy.precision() - 0.05);
        }
    }

    #[test]
    fn outcome_metrics_handle_degenerate_cases() {
        let o = MatchingOutcome {
            correct: 0,
            committed: 0,
            total_vpins: 0,
        };
        assert_eq!(o.precision(), 0.0);
        assert_eq!(o.recall(), 0.0);
        let o = MatchingOutcome {
            correct: 3,
            committed: 4,
            total_vpins: 10,
        };
        assert!((o.precision() - 0.75).abs() < 1e-12);
        assert!((o.recall() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn min_prob_filters_commitments() {
        let vs = views(8);
        let v = &vs[0];
        let tops = vec![vec![Cand {
            p: 0.4,
            index: 1,
            dist: 5,
        }]];
        let scored = synthetic(tops, v.num_vpins());
        assert_eq!(greedy_matching(&scored, v, 0.5).committed, 0);
        assert_eq!(greedy_matching(&scored, v, 0.3).committed, 1);
        assert_eq!(mutual_best(&scored, v, 0.5).committed, 0);
    }
}
