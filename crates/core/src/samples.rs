//! Training-sample generation (paper Section III-B).
//!
//! For every v-pin in the training designs we emit one *positive* sample
//! (the v-pin paired with its true match) and one *negative* sample (the
//! v-pin paired with a random non-match), keeping the classes balanced as
//! the paper requires for this heavily imbalanced problem. Pairs that would
//! short two drivers are illegal and never sampled. The scalable (`Imp`)
//! configurations restrict both positives and negatives to the
//! neighborhood radius; the `Y` configurations restrict them to pairs with
//! `DiffVpinY = 0`.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sm_layout::SplitView;
use sm_ml::Dataset;

use crate::features::FeatureSet;
use crate::neighborhood::VpinIndex;

/// Options controlling which pairs are eligible as samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleOptions {
    /// Restrict pairs to this Manhattan radius (the `Imp` neighborhood).
    pub radius: Option<i64>,
    /// Restrict pairs to `DiffVpinY = 0` (top-split-layer convention).
    pub limit_diff_vpin_y: bool,
}

impl SampleOptions {
    /// Whether the pair `(i, j)` of `view` is eligible under these options.
    pub fn eligible(&self, view: &SplitView, i: usize, j: usize) -> bool {
        if !view.is_legal_pair(i, j) {
            return false;
        }
        if self.limit_diff_vpin_y && view.vpins()[i].loc.y != view.vpins()[j].loc.y {
            return false;
        }
        if let Some(r) = self.radius {
            if view.distance(i, j) > r {
                return false;
            }
        }
        true
    }
}

/// Generates the balanced training set over `views`.
///
/// `vpin_filter`, when given, must hold one mask per view; only v-pins
/// whose mask entry is `true` contribute samples (used by the proximity
/// attack's 80/20 validation split). Positives whose partner is filtered
/// out are skipped, keeping training and validation pairs disjoint.
///
/// Each design draws its negatives from its own RNG stream, seeded by
/// [`view_sample_seed`] from a base drawn once from `rng` — so a design's
/// samples depend only on the base seed and its own name, never on which
/// *other* designs are in `views`. The cross-validation driver relies on
/// this: it extracts each design's samples once and assembles every
/// leave-one-out fold by concatenation, bit-identical to calling this
/// function per fold.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sm_attack::features::FeatureSet;
/// use sm_attack::samples::{generate_samples, SampleOptions};
/// use sm_layout::{SplitLayer, Suite};
///
/// let suite = Suite::ispd2011_like(0.02)?;
/// let views = suite.split_all(SplitLayer::new(6)?);
/// let refs: Vec<&_> = views.iter().collect();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let ds = generate_samples(
///     &refs,
///     &FeatureSet::eleven(),
///     SampleOptions::default(),
///     None,
///     &mut rng,
/// );
/// assert!(ds.len() > 0);
/// assert_eq!(ds.num_positive() * 2, ds.len()); // balanced classes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_samples(
    views: &[&SplitView],
    features: &FeatureSet,
    opts: SampleOptions,
    vpin_filter: Option<&[Vec<bool>]>,
    rng: &mut ChaCha8Rng,
) -> Dataset {
    let base = sample_base_seed(rng);
    let mut ds = Dataset::new(features.len());
    for (vi, view) in views.iter().enumerate() {
        let filter = vpin_filter.map(|f| f[vi].as_slice());
        let sub = generate_view_samples(
            view,
            features,
            opts,
            filter,
            view_sample_seed(base, &view.name),
        );
        ds.extend_from(&sub).expect("feature arities match");
    }
    ds
}

/// Draws the run-level base seed all per-design sample streams derive from.
/// Consumes exactly one `u64` from `rng`.
pub fn sample_base_seed(rng: &mut ChaCha8Rng) -> u64 {
    rng.next_u64()
}

/// Seed of one design's sample stream: FNV-1a-64 of the design name, XORed
/// with the run's base seed. Keyed by *name* rather than position so a
/// design's samples are identical no matter which training subset it
/// appears in. This derivation is a stability contract — changing it
/// changes every trained model.
pub fn view_sample_seed(base: u64, name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    base ^ h
}

/// Generates one design's balanced samples from its own seeded RNG stream.
/// `filter` is this view's v-pin mask (see [`generate_samples`]).
pub fn generate_view_samples(
    view: &SplitView,
    features: &FeatureSet,
    opts: SampleOptions,
    filter: Option<&[bool]>,
    seed: u64,
) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ds = Dataset::new(features.len());
    let mut buf = Vec::with_capacity(features.len());
    let mut cands = Vec::new();
    let n = view.num_vpins();
    if n < 2 {
        return ds;
    }
    let included = |i: usize| filter.is_none_or(|m| m[i]);
    let index = if opts.radius.is_some() || opts.limit_diff_vpin_y {
        Some(match opts.radius {
            Some(r) => VpinIndex::with_radius(view, r),
            None => VpinIndex::new(view, 10_000),
        })
    } else {
        None
    };
    for i in 0..n {
        if !included(i) {
            continue;
        }
        let m = view.true_match(i);
        if !included(m) || !opts.eligible(view, i, m) {
            continue;
        }
        // Positive sample.
        features.compute_into(&view.vpins()[i], &view.vpins()[m], &mut buf);
        ds.push(&buf, true).expect("buffer arity matches");

        // One matching negative, drawn from the same candidate pool the
        // testing stage will use. The pool is canonical — `within_radius`
        // and `same_y` return ascending v-pin indices — so the uniform
        // draw below is a pure function of the seed and the candidate
        // *set*, not of any spatial-index traversal order.
        let drew = draw_negative(
            view,
            i,
            m,
            &opts,
            index.as_ref(),
            &included,
            &mut rng,
            &mut cands,
        );
        if let Some(j) = drew {
            features.compute_into(&view.vpins()[i], &view.vpins()[j], &mut buf);
            ds.push(&buf, false).expect("buffer arity matches");
        }
    }
    ds
}

#[allow(clippy::too_many_arguments)]
fn draw_negative(
    view: &SplitView,
    i: usize,
    m: usize,
    opts: &SampleOptions,
    index: Option<&VpinIndex>,
    included: &dyn Fn(usize) -> bool,
    rng: &mut ChaCha8Rng,
    cands: &mut Vec<u32>,
) -> Option<usize> {
    let n = view.num_vpins();
    if let Some(index) = index {
        // Enumerate the candidate pool once, then sample from it.
        if opts.limit_diff_vpin_y {
            index.same_y(view.vpins()[i].loc.y, i as u32, cands);
            if let Some(r) = opts.radius {
                cands.retain(|&j| view.distance(i, j as usize) <= r);
            }
        } else if let Some(r) = opts.radius {
            index.within_radius(view, view.vpins()[i].loc, r, i as u32, cands);
        }
        cands.retain(|&j| {
            let j = j as usize;
            j != m && included(j) && view.is_legal_pair(i, j)
        });
        if cands.is_empty() && opts.limit_diff_vpin_y {
            // A v-pin alone on its track has no same-track negative; fall
            // back to its spatial neighborhood so the classes stay
            // balanced. (At testing time these pairs are never evaluated,
            // so the model only becomes *more* conservative.)
            match opts.radius {
                Some(r) => index.within_radius(view, view.vpins()[i].loc, r, i as u32, cands),
                None => cands.extend((0..n as u32).filter(|&j| j != i as u32)),
            }
            cands.retain(|&j| {
                let j = j as usize;
                j != m && included(j) && view.is_legal_pair(i, j)
            });
        }
        if cands.is_empty() {
            return None;
        }
        Some(cands[rng.gen_range(0..cands.len())] as usize)
    } else {
        // Unrestricted: rejection-sample a uniform non-match.
        for _ in 0..64 {
            let j = rng.gen_range(0..n);
            if j != i && j != m && included(j) && view.is_legal_pair(i, j) {
                return Some(j);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    fn refs(v: &[SplitView]) -> Vec<&SplitView> {
        v.iter().collect()
    }

    #[test]
    fn unrestricted_sampling_is_balanced() {
        let vs = views(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = generate_samples(
            &refs(&vs),
            &FeatureSet::nine(),
            SampleOptions::default(),
            None,
            &mut rng,
        );
        let total_vpins: usize = vs.iter().map(SplitView::num_vpins).sum();
        assert_eq!(ds.num_positive(), total_vpins, "one positive per v-pin");
        // Negatives can very occasionally fail to draw, but not often.
        assert!(ds.len() >= 2 * total_vpins - total_vpins / 50);
    }

    #[test]
    fn neighborhood_restriction_shrinks_positive_count() {
        let vs = views(6);
        let all = {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            generate_samples(
                &refs(&vs),
                &FeatureSet::nine(),
                SampleOptions::default(),
                None,
                &mut rng,
            )
        };
        let tight = {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            generate_samples(
                &refs(&vs),
                &FeatureSet::nine(),
                SampleOptions {
                    radius: Some(10_000),
                    limit_diff_vpin_y: false,
                },
                None,
                &mut rng,
            )
        };
        assert!(tight.num_positive() < all.num_positive());
    }

    #[test]
    fn y_limit_keeps_all_positives_at_split8() {
        let vs = views(8);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = generate_samples(
            &refs(&vs),
            &FeatureSet::nine(),
            SampleOptions {
                radius: None,
                limit_diff_vpin_y: true,
            },
            None,
            &mut rng,
        );
        let total_vpins: usize = vs.iter().map(SplitView::num_vpins).sum();
        // At the top split layer every true pair has DiffVpinY = 0, so the
        // limit costs no positives.
        assert_eq!(ds.num_positive(), total_vpins);
    }

    #[test]
    fn vpin_filter_excludes_pairs_touching_validation_vpins() {
        let vs = views(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Mask out every odd v-pin; since partners are (2k, 2k+1), every
        // positive pair touches a masked v-pin and must be dropped.
        let masks: Vec<Vec<bool>> = vs
            .iter()
            .map(|v| (0..v.num_vpins()).map(|i| i % 2 == 0).collect())
            .collect();
        let ds = generate_samples(
            &refs(&vs),
            &FeatureSet::nine(),
            SampleOptions::default(),
            Some(&masks),
            &mut rng,
        );
        assert_eq!(ds.len(), 0);
    }

    #[test]
    fn eligibility_respects_all_three_constraints() {
        let vs = views(8);
        let v = &vs[0];
        let opts = SampleOptions {
            radius: Some(1),
            limit_diff_vpin_y: true,
        };
        // Distance 0 to itself is excluded by legality (i == j).
        assert!(!opts.eligible(v, 0, 0));
        // The true match is farther than radius 1 for essentially every pair.
        let m = v.true_match(0);
        assert!(!opts.eligible(v, 0, m) || v.distance(0, m) <= 1);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let vs = views(6);
        let mk = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            generate_samples(
                &refs(&vs),
                &FeatureSet::seven(),
                SampleOptions {
                    radius: Some(50_000),
                    limit_diff_vpin_y: false,
                },
                None,
                &mut rng,
            )
        };
        assert_eq!(mk(5), mk(5));
    }
}
