//! Neighborhood modelling for the scalable (`Imp`) configurations
//! (paper Section III-D) and spatial indexing of v-pins.
//!
//! The basic `ML` configuration trains on random negative pairs and tests
//! every pair — quadratic in the v-pin count and dominated by "useless"
//! far-apart pairs. The `Imp` fix: measure the CDF of the `ManhattanVpin`
//! distance of *true* matches over the training designs (Fig. 4), take the
//! 90 % quantile as a neighborhood radius, and restrict both sampling and
//! testing to pairs within that radius.

use sm_layout::geom::{Grid, Point};
use sm_layout::tech::Technology;
use sm_layout::SplitView;
use std::collections::HashMap;

/// Default CDF quantile used to size the neighborhood.
pub const DEFAULT_NEIGHBORHOOD_QUANTILE: f64 = 0.90;

/// Divisor mapping the largest training die's Manhattan semi-perimeter
/// (width + height) to the raw safety margin added on top of the CDF cut
/// by [`neighborhood_radius`].
const MARGIN_SEMIPERIMETER_DIVISOR: i64 = 256;

/// Die-proportional safety margin: the largest training die's Manhattan
/// semi-perimeter divided by [`MARGIN_SEMIPERIMETER_DIVISOR`], rounded up
/// to a whole number of g-cells and never below one g-cell.
///
/// At the default suite scale (`SM_SCALE = 1.0`) every leave-one-out
/// training subset lands in the (2 560, 3 500] DBU bracket and quantizes
/// to exactly one g-cell — the `+ 3_500` an earlier revision hard-coded —
/// so default-scale radii are bit-identical to before. Unlike the
/// constant, the margin tracks the die: at `SM_SCALE = 0.2` the one-g-cell
/// floor keeps it from swallowing a fifth-size die's distance tail, and at
/// `SM_SCALE = 10` it grows with the ~10× die instead of degenerating to
/// rounding noise.
fn safety_margin(views: &[&SplitView]) -> i64 {
    let gcell = Technology::ispd9().gcell_size();
    let semi = views
        .iter()
        .map(|v| v.die.width() + v.die.height())
        .max()
        .unwrap_or(0);
    let cells = (semi / MARGIN_SEMIPERIMETER_DIVISOR + gcell - 1) / gcell;
    cells.max(1) * gcell
}

/// Manhattan distances between every true v-pin pair of `views` (each pair
/// counted once), sorted ascending — the empirical CDF of Fig. 4.
pub fn match_distance_cdf(views: &[&SplitView]) -> Vec<i64> {
    let mut d = Vec::new();
    for v in views {
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            if i < m {
                d.push(v.distance(i, m));
            }
        }
    }
    d.sort_unstable();
    d
}

/// The neighborhood radius containing `quantile` of true-match distances.
///
/// Returns `None` if the views contain no matches.
///
/// # Panics
///
/// Panics if `quantile` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use sm_attack::neighborhood::neighborhood_radius;
/// use sm_layout::{Suite, SplitLayer};
///
/// let suite = Suite::ispd2011_like(0.02)?;
/// let views = suite.split_all(SplitLayer::new(6)?);
/// let refs: Vec<&_> = views.iter().collect();
/// let r = neighborhood_radius(&refs, 0.9).expect("suite has matches");
/// assert!(r > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn neighborhood_radius(views: &[&SplitView], quantile: f64) -> Option<i64> {
    assert!(
        quantile > 0.0 && quantile <= 1.0,
        "quantile must be in (0, 1]"
    );
    let cdf = match_distance_cdf(views);
    if cdf.is_empty() {
        return None;
    }
    let k = ((cdf.len() as f64 * quantile).ceil() as usize).clamp(1, cdf.len());
    // Round the cut up by a relative safety margin plus a die-proportional,
    // g-cell-quantized allowance, as a practical implementation would.
    // Where the distance tail is compressed (the top split layer, whose
    // matches all sit near the die diameter) this absorbs nearly the whole
    // remaining tail — matching the paper's unsaturated layer-8 accuracies
    // — while the long tails of the lower layers stay excluded (the
    // Fig. 9(b)/(c) plateaus).
    Some(cdf[k - 1] + cdf[k - 1] / 8 + safety_margin(views))
}

/// A spatial index over one view's v-pins supporting radius queries and
/// exact same-y (same-track) queries.
#[derive(Debug, Clone)]
pub struct VpinIndex {
    grid: Grid,
    buckets: Vec<Vec<u32>>,
    by_y: HashMap<i64, Vec<u32>>,
}

impl VpinIndex {
    /// Builds the index for `view`, with grid cells of side `cell` DBU.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0`.
    pub fn new(view: &SplitView, cell: i64) -> Self {
        let grid = Grid::new(view.die, cell);
        let mut buckets = vec![Vec::new(); grid.len()];
        let mut by_y: HashMap<i64, Vec<u32>> = HashMap::new();
        for (i, vp) in view.vpins().iter().enumerate() {
            buckets[grid.flat_of(vp.loc)].push(i as u32);
            by_y.entry(vp.loc.y).or_default().push(i as u32);
        }
        Self {
            grid,
            buckets,
            by_y,
        }
    }

    /// Builds the index with a cell size matched to `radius` (clamped to a
    /// sane range), the right granularity for subsequent
    /// [`Self::within_radius`] queries.
    pub fn with_radius(view: &SplitView, radius: i64) -> Self {
        let cell = (radius / 2).clamp(1_000, 50_000);
        Self::new(view, cell)
    }

    /// Indices of all v-pins within Manhattan `radius` of `from` (excluding
    /// `exclude`), written to `out` (cleared first) in **ascending index
    /// order** — the canonical form sample generation draws from, so the
    /// negative-pair stream is independent of grid traversal order.
    pub fn within_radius(
        &self,
        view: &SplitView,
        from: Point,
        radius: i64,
        exclude: u32,
        out: &mut Vec<u32>,
    ) {
        self.within_radius_unordered(view, from, radius, exclude, out);
        out.sort_unstable();
    }

    /// [`Self::within_radius`] without the sorted-output guarantee: exactly
    /// the same candidate *set*, in an implementation-defined order. This
    /// is the streaming hot path — the scoring loop's top-K keeper is
    /// enumeration-order-independent, so it can skip the sort.
    ///
    /// Cells of the query window are classified by their min/max Manhattan
    /// distance to `from`: cells entirely inside the ball are bulk-appended
    /// without per-pin distance checks, cells entirely outside are skipped,
    /// and only boundary cells pay a per-pin check.
    pub fn within_radius_unordered(
        &self,
        view: &SplitView,
        from: Point,
        radius: i64,
        exclude: u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let cell = self.grid.cell_size();
        let b = self.grid.bounds();
        let nx = self.grid.nx();
        let (cx0, cy0) = self
            .grid
            .locate(Point::new(from.x - radius, from.y - radius));
        let (cx1, cy1) = self
            .grid
            .locate(Point::new(from.x + radius, from.y + radius));
        // `exclude` can only ever appear in its home cell, so every other
        // fully-inside cell is appended with a plain copy.
        let exclude_cell = view
            .vpins()
            .get(exclude as usize)
            .map(|vp| self.grid.flat_of(vp.loc));
        let ny = self.grid.ny();
        for iy in cy0..=cy1 {
            // Extremal point coordinates inside this cell row/column: cells
            // are low-inclusive and the die edge caps the last partial cell.
            let loy = b.lo.y + iy as i64 * cell;
            let hiy = (loy + cell - 1).min(b.hi.y - 1);
            let dy_min = (loy - from.y).max(from.y - hiy).max(0);
            if dy_min > radius {
                continue;
            }
            let dy_max = (from.y - loy).abs().max((from.y - hiy).abs());
            // Edge cells also hold any out-of-die v-pins (`locate` clamps),
            // whose true location may lie outside the cell rect — only
            // interior cells are eligible for the bulk path.
            let interior_y = iy > 0 && iy + 1 < ny;
            for ix in cx0..=cx1 {
                let lox = b.lo.x + ix as i64 * cell;
                let hix = (lox + cell - 1).min(b.hi.x - 1);
                let dx_min = (lox - from.x).max(from.x - hix).max(0);
                if dx_min + dy_min > radius {
                    continue;
                }
                let flat = iy * nx + ix;
                let bucket = &self.buckets[flat];
                if bucket.is_empty() {
                    continue;
                }
                let dx_max = (from.x - lox).abs().max((from.x - hix).abs());
                if interior_y && ix > 0 && ix + 1 < nx && dx_max + dy_max <= radius {
                    if exclude_cell == Some(flat) {
                        out.extend(bucket.iter().copied().filter(|&j| j != exclude));
                    } else {
                        out.extend_from_slice(bucket);
                    }
                } else {
                    for &j in bucket {
                        if j != exclude && view.vpins()[j as usize].loc.manhattan(from) <= radius {
                            out.push(j);
                        }
                    }
                }
            }
        }
    }

    /// Indices of all v-pins sharing `y` exactly (same top-layer track),
    /// excluding `exclude`, in ascending index order (tracks are built by
    /// one pass in index order). Used by the `DiffVpinY = 0`
    /// configurations.
    pub fn same_y(&self, y: i64, exclude: u32, out: &mut Vec<u32>) {
        out.clear();
        if let Some(list) = self.by_y.get(&y) {
            out.extend(list.iter().copied().filter(|&j| j != exclude));
        }
    }

    /// Number of distinct y-tracks occupied by v-pins.
    pub fn num_tracks(&self) -> usize {
        self.by_y.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        let suite = Suite::ispd2011_like(0.02).expect("valid scale");
        suite.split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn cdf_is_sorted_and_covers_all_matches() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let cdf = match_distance_cdf(&refs);
        let expected: usize = vs.iter().map(|v| v.num_vpins() / 2).sum();
        assert_eq!(cdf.len(), expected);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn radius_grows_with_quantile() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let r80 = neighborhood_radius(&refs, 0.8).expect("matches exist");
        let r90 = neighborhood_radius(&refs, 0.9).expect("matches exist");
        let r100 = neighborhood_radius(&refs, 1.0).expect("matches exist");
        assert!(r80 <= r90 && r90 <= r100);
        assert!(r100 > 0);
    }

    #[test]
    fn ninety_percent_of_matches_fall_inside_radius() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let r = neighborhood_radius(&refs, 0.9).expect("matches exist");
        let cdf = match_distance_cdf(&refs);
        let inside = cdf.iter().filter(|&&d| d <= r).count();
        assert!(inside as f64 / cdf.len() as f64 >= 0.9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_is_rejected() {
        let vs = views(8);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let _ = neighborhood_radius(&refs, 0.0);
    }

    #[test]
    fn radius_query_finds_exactly_the_close_vpins() {
        let vs = views(6);
        let v = &vs[0];
        let idx = VpinIndex::new(v, 5_000);
        let mut out = Vec::new();
        let mut unordered = Vec::new();
        for probe in 0..v.num_vpins().min(20) {
            let from = v.vpins()[probe].loc;
            let radius = 40_000;
            idx.within_radius(v, from, radius, probe as u32, &mut out);
            let brute: Vec<u32> = (0..v.num_vpins() as u32)
                .filter(|&j| {
                    j != probe as u32 && v.vpins()[j as usize].loc.manhattan(from) <= radius
                })
                .collect();
            // The sorted-ascending output IS the contract: no normalisation
            // before comparing.
            assert_eq!(out, brute, "probe {probe}");
            // The unordered hot-path variant returns the same set.
            idx.within_radius_unordered(v, from, radius, probe as u32, &mut unordered);
            unordered.sort_unstable();
            assert_eq!(unordered, brute, "probe {probe} (unordered)");
        }
    }

    /// Bit-identity guard for the die-derived safety margin: at the
    /// default suite scale it must equal the `3_500` DBU constant the
    /// previous revision hard-coded — for the full suite and for every
    /// leave-one-out training subset, at every split layer.
    #[test]
    fn margin_is_one_gcell_at_default_scale() {
        assert_margin_at_scale(1.0, 3_500);
    }

    /// The margin tracks the die instead of staying an absolute constant:
    /// the one-g-cell floor holds at a fifth-size die, and a double-size
    /// die doubles it to two g-cells.
    #[test]
    fn margin_scales_with_the_die() {
        assert_margin_at_scale(0.2, 3_500);
        assert_margin_at_scale(2.0, 7_000);
    }

    fn assert_margin_at_scale(scale: f64, margin: i64) {
        let suite = Suite::ispd2011_like(scale).expect("valid scale");
        for layer in [4u8, 6, 8] {
            let vs = suite.split_all(SplitLayer::new(layer).expect("valid"));
            // `skip == vs.len()` keeps every view (the full-suite radius).
            for skip in 0..=vs.len() {
                let refs: Vec<&SplitView> = vs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, v)| v)
                    .collect();
                let cdf = match_distance_cdf(&refs);
                let k = ((cdf.len() as f64 * 0.9).ceil() as usize).clamp(1, cdf.len());
                let cut = cdf[k - 1];
                let r = neighborhood_radius(&refs, 0.9).expect("matches exist");
                assert_eq!(
                    r,
                    cut + cut / 8 + margin,
                    "scale {scale} layer {layer} skip {skip}"
                );
            }
        }
    }

    #[test]
    fn same_y_query_matches_brute_force() {
        let vs = views(8);
        let v = &vs[0];
        let idx = VpinIndex::new(v, 5_000);
        let mut out = Vec::new();
        for probe in 0..v.num_vpins() {
            let y = v.vpins()[probe].loc.y;
            idx.same_y(y, probe as u32, &mut out);
            let brute: Vec<u32> = (0..v.num_vpins() as u32)
                .filter(|&j| j != probe as u32 && v.vpins()[j as usize].loc.y == y)
                .collect();
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(got, brute);
        }
    }

    #[test]
    fn split8_partner_always_on_same_track() {
        let vs = views(8);
        for v in &vs {
            let idx = VpinIndex::new(v, 5_000);
            let mut out = Vec::new();
            for i in 0..v.num_vpins() {
                idx.same_y(v.vpins()[i].loc.y, i as u32, &mut out);
                assert!(
                    out.contains(&(v.true_match(i) as u32)),
                    "partner of {i} must share its M9 track"
                );
            }
        }
    }
}
