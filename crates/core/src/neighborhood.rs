//! Neighborhood modelling for the scalable (`Imp`) configurations
//! (paper Section III-D) and spatial indexing of v-pins.
//!
//! The basic `ML` configuration trains on random negative pairs and tests
//! every pair — quadratic in the v-pin count and dominated by "useless"
//! far-apart pairs. The `Imp` fix: measure the CDF of the `ManhattanVpin`
//! distance of *true* matches over the training designs (Fig. 4), take the
//! 90 % quantile as a neighborhood radius, and restrict both sampling and
//! testing to pairs within that radius.

use sm_layout::geom::{Grid, Point};
use sm_layout::SplitView;
use std::collections::HashMap;

/// Default CDF quantile used to size the neighborhood.
pub const DEFAULT_NEIGHBORHOOD_QUANTILE: f64 = 0.90;

/// Manhattan distances between every true v-pin pair of `views` (each pair
/// counted once), sorted ascending — the empirical CDF of Fig. 4.
pub fn match_distance_cdf(views: &[&SplitView]) -> Vec<i64> {
    let mut d = Vec::new();
    for v in views {
        for i in 0..v.num_vpins() {
            let m = v.true_match(i);
            if i < m {
                d.push(v.distance(i, m));
            }
        }
    }
    d.sort_unstable();
    d
}

/// The neighborhood radius containing `quantile` of true-match distances.
///
/// Returns `None` if the views contain no matches.
///
/// # Panics
///
/// Panics if `quantile` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use sm_attack::neighborhood::neighborhood_radius;
/// use sm_layout::{Suite, SplitLayer};
///
/// let suite = Suite::ispd2011_like(0.02)?;
/// let views = suite.split_all(SplitLayer::new(6)?);
/// let refs: Vec<&_> = views.iter().collect();
/// let r = neighborhood_radius(&refs, 0.9).expect("suite has matches");
/// assert!(r > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn neighborhood_radius(views: &[&SplitView], quantile: f64) -> Option<i64> {
    assert!(
        quantile > 0.0 && quantile <= 1.0,
        "quantile must be in (0, 1]"
    );
    let cdf = match_distance_cdf(views);
    if cdf.is_empty() {
        return None;
    }
    let k = ((cdf.len() as f64 * quantile).ceil() as usize).clamp(1, cdf.len());
    // Round the cut up by a safety margin plus one g-cell, as a practical
    // g-cell-quantized implementation would. Where the distance tail is
    // compressed (the top split layer, whose matches all sit near the die
    // diameter) this absorbs nearly the whole remaining tail — matching
    // the paper's unsaturated layer-8 accuracies — while the long tails of
    // the lower layers stay excluded (the Fig. 9(b)/(c) plateaus).
    Some(cdf[k - 1] + cdf[k - 1] / 8 + 3_500)
}

/// A spatial index over one view's v-pins supporting radius queries and
/// exact same-y (same-track) queries.
#[derive(Debug, Clone)]
pub struct VpinIndex {
    grid: Grid,
    buckets: Vec<Vec<u32>>,
    by_y: HashMap<i64, Vec<u32>>,
}

impl VpinIndex {
    /// Builds the index for `view`, with grid cells of side `cell` DBU.
    ///
    /// # Panics
    ///
    /// Panics if `cell <= 0`.
    pub fn new(view: &SplitView, cell: i64) -> Self {
        let grid = Grid::new(view.die, cell);
        let mut buckets = vec![Vec::new(); grid.len()];
        let mut by_y: HashMap<i64, Vec<u32>> = HashMap::new();
        for (i, vp) in view.vpins().iter().enumerate() {
            buckets[grid.flat_of(vp.loc)].push(i as u32);
            by_y.entry(vp.loc.y).or_default().push(i as u32);
        }
        Self {
            grid,
            buckets,
            by_y,
        }
    }

    /// Builds the index with a cell size matched to `radius` (clamped to a
    /// sane range), the right granularity for subsequent
    /// [`Self::within_radius`] queries.
    pub fn with_radius(view: &SplitView, radius: i64) -> Self {
        let cell = (radius / 2).clamp(1_000, 50_000);
        Self::new(view, cell)
    }

    /// Indices of all v-pins within Manhattan `radius` of `from` (excluding
    /// `exclude`), appended to `out` (cleared first).
    pub fn within_radius(
        &self,
        view: &SplitView,
        from: Point,
        radius: i64,
        exclude: u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let r_cells = (radius / self.grid.cell_size()) as usize + 1;
        for cell in self.grid.window(from, r_cells) {
            for &j in &self.buckets[cell] {
                if j != exclude && view.vpins()[j as usize].loc.manhattan(from) <= radius {
                    out.push(j);
                }
            }
        }
    }

    /// Indices of all v-pins sharing `y` exactly (same top-layer track),
    /// excluding `exclude`. Used by the `DiffVpinY = 0` configurations.
    pub fn same_y(&self, y: i64, exclude: u32, out: &mut Vec<u32>) {
        out.clear();
        if let Some(list) = self.by_y.get(&y) {
            out.extend(list.iter().copied().filter(|&j| j != exclude));
        }
    }

    /// Number of distinct y-tracks occupied by v-pins.
    pub fn num_tracks(&self) -> usize {
        self.by_y.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        let suite = Suite::ispd2011_like(0.02).expect("valid scale");
        suite.split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn cdf_is_sorted_and_covers_all_matches() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let cdf = match_distance_cdf(&refs);
        let expected: usize = vs.iter().map(|v| v.num_vpins() / 2).sum();
        assert_eq!(cdf.len(), expected);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn radius_grows_with_quantile() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let r80 = neighborhood_radius(&refs, 0.8).expect("matches exist");
        let r90 = neighborhood_radius(&refs, 0.9).expect("matches exist");
        let r100 = neighborhood_radius(&refs, 1.0).expect("matches exist");
        assert!(r80 <= r90 && r90 <= r100);
        assert!(r100 > 0);
    }

    #[test]
    fn ninety_percent_of_matches_fall_inside_radius() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let r = neighborhood_radius(&refs, 0.9).expect("matches exist");
        let cdf = match_distance_cdf(&refs);
        let inside = cdf.iter().filter(|&&d| d <= r).count();
        assert!(inside as f64 / cdf.len() as f64 >= 0.9);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_is_rejected() {
        let vs = views(8);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let _ = neighborhood_radius(&refs, 0.0);
    }

    #[test]
    fn radius_query_finds_exactly_the_close_vpins() {
        let vs = views(6);
        let v = &vs[0];
        let idx = VpinIndex::new(v, 5_000);
        let mut out = Vec::new();
        for probe in 0..v.num_vpins().min(20) {
            let from = v.vpins()[probe].loc;
            let radius = 40_000;
            idx.within_radius(v, from, radius, probe as u32, &mut out);
            let brute: Vec<u32> = (0..v.num_vpins() as u32)
                .filter(|&j| {
                    j != probe as u32 && v.vpins()[j as usize].loc.manhattan(from) <= radius
                })
                .collect();
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(got, brute, "probe {probe}");
        }
    }

    #[test]
    fn same_y_query_matches_brute_force() {
        let vs = views(8);
        let v = &vs[0];
        let idx = VpinIndex::new(v, 5_000);
        let mut out = Vec::new();
        for probe in 0..v.num_vpins() {
            let y = v.vpins()[probe].loc.y;
            idx.same_y(y, probe as u32, &mut out);
            let brute: Vec<u32> = (0..v.num_vpins() as u32)
                .filter(|&j| j != probe as u32 && v.vpins()[j as usize].loc.y == y)
                .collect();
            let mut got = out.clone();
            got.sort_unstable();
            assert_eq!(got, brute);
        }
    }

    #[test]
    fn split8_partner_always_on_same_track() {
        let vs = views(8);
        for v in &vs {
            let idx = VpinIndex::new(v, 5_000);
            let mut out = Vec::new();
            for i in 0..v.num_vpins() {
                idx.same_y(v.vpins()[i].loc.y, i as u32, &mut out);
                assert!(
                    out.contains(&(v.true_match(i) as u32)),
                    "partner of {i} must share its M9 track"
                );
            }
        }
    }
}
