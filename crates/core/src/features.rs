//! The 11 pair features of Section III-B and the feature subsets the
//! paper's model configurations use.

use serde::{Deserialize, Serialize};
use sm_layout::VPin;

/// One of the 11 layout features computed for a v-pin pair.
///
/// The discriminant order is the paper's presentation order; the "first 9
/// features" of the `ML-9`/`Imp-9` configurations are discriminants
/// `0..=8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum PairFeature {
    /// `|px₁ − px₂|` — placement-pin x distance.
    DiffPinX = 0,
    /// `|py₁ − py₂|` — placement-pin y distance.
    DiffPinY = 1,
    /// `|px₁ − px₂| + |py₁ − py₂|` — placement-level proximity.
    ManhattanPin = 2,
    /// `|vx₁ − vx₂|` — v-pin x distance.
    DiffVpinX = 3,
    /// `|vy₁ − vy₂|` — v-pin y distance (zero for matches at the top split
    /// layer when M9 is horizontally routed).
    DiffVpinY = 4,
    /// `|vx₁ − vx₂| + |vy₁ − vy₂|` — v-pin proximity, the single most
    /// discriminative feature in the paper's ranking.
    ManhattanVpin = 5,
    /// `W₁ + W₂` — known below-split wirelength of the would-be net.
    TotalWirelength = 6,
    /// `InArea₁ + InArea₂ + OutArea₁ + OutArea₂` — total connected cell area.
    TotalArea = 7,
    /// `(OutArea₁ + OutArea₂) − (InArea₁ + InArea₂)` — driver-vs-load area.
    DiffArea = 8,
    /// `PC₁ + PC₂` — placement congestion.
    PlacementCongestion = 9,
    /// `RC₁ + RC₂` — routing congestion.
    RoutingCongestion = 10,
}

/// All 11 features in paper order.
pub const ALL_FEATURES: [PairFeature; 11] = [
    PairFeature::DiffPinX,
    PairFeature::DiffPinY,
    PairFeature::ManhattanPin,
    PairFeature::DiffVpinX,
    PairFeature::DiffVpinY,
    PairFeature::ManhattanVpin,
    PairFeature::TotalWirelength,
    PairFeature::TotalArea,
    PairFeature::DiffArea,
    PairFeature::PlacementCongestion,
    PairFeature::RoutingCongestion,
];

impl PairFeature {
    /// Short display name matching the paper's feature names.
    pub fn name(self) -> &'static str {
        match self {
            PairFeature::DiffPinX => "DiffPinX",
            PairFeature::DiffPinY => "DiffPinY",
            PairFeature::ManhattanPin => "ManhattanPin",
            PairFeature::DiffVpinX => "DiffVpinX",
            PairFeature::DiffVpinY => "DiffVpinY",
            PairFeature::ManhattanVpin => "ManhattanVpin",
            PairFeature::TotalWirelength => "TotalWirelength",
            PairFeature::TotalArea => "TotalArea",
            PairFeature::DiffArea => "DiffArea",
            PairFeature::PlacementCongestion => "PlacementCongestion",
            PairFeature::RoutingCongestion => "RoutingCongestion",
        }
    }

    /// Computes this feature's value for the pair `(a, b)`.
    pub fn compute(self, a: &VPin, b: &VPin) -> f64 {
        match self {
            PairFeature::DiffPinX => (a.pin_loc.x - b.pin_loc.x).abs() as f64,
            PairFeature::DiffPinY => (a.pin_loc.y - b.pin_loc.y).abs() as f64,
            PairFeature::ManhattanPin => a.pin_loc.manhattan(b.pin_loc) as f64,
            PairFeature::DiffVpinX => (a.loc.x - b.loc.x).abs() as f64,
            PairFeature::DiffVpinY => (a.loc.y - b.loc.y).abs() as f64,
            PairFeature::ManhattanVpin => a.loc.manhattan(b.loc) as f64,
            PairFeature::TotalWirelength => (a.wirelength + b.wirelength) as f64,
            PairFeature::TotalArea => (a.in_area + a.out_area + b.in_area + b.out_area) as f64,
            PairFeature::DiffArea => ((a.out_area + b.out_area) - (a.in_area + b.in_area)) as f64,
            PairFeature::PlacementCongestion => a.pc + b.pc,
            PairFeature::RoutingCongestion => a.rc + b.rc,
        }
    }
}

impl std::fmt::Display for PairFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered selection of pair features, defining a model configuration's
/// input space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    features: Vec<PairFeature>,
}

impl FeatureSet {
    /// The "9-feature" set of `ML-9`/`Imp-9`: the first nine features
    /// (everything except the two congestion measurements).
    pub fn nine() -> Self {
        Self {
            features: ALL_FEATURES[..9].to_vec(),
        }
    }

    /// The "7-feature" set of `Imp-7`: the nine-feature set minus the two
    /// least important features (`TotalWirelength`, `TotalArea`).
    pub fn seven() -> Self {
        Self {
            features: ALL_FEATURES[..9]
                .iter()
                .copied()
                .filter(|f| !matches!(f, PairFeature::TotalWirelength | PairFeature::TotalArea))
                .collect(),
        }
    }

    /// All 11 features (`Imp-11`).
    pub fn eleven() -> Self {
        Self {
            features: ALL_FEATURES.to_vec(),
        }
    }

    /// A custom selection (useful for ablations).
    pub fn custom(features: Vec<PairFeature>) -> Self {
        Self { features }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The selected features in order.
    pub fn features(&self) -> &[PairFeature] {
        &self.features
    }

    /// Computes the selected features for pair `(a, b)` into `out`
    /// (cleared first). Taking a buffer avoids an allocation in the scoring
    /// hot loop.
    pub fn compute_into(&self, a: &VPin, b: &VPin, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.features.iter().map(|f| f.compute(a, b)));
    }

    /// Convenience allocation-returning variant of [`Self::compute_into`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_attack::features::FeatureSet;
    /// use sm_layout::{Suite, SplitLayer};
    ///
    /// let view = Suite::ispd2011_like(0.02)?.benchmarks()[0]
    ///     .split(SplitLayer::new(6)?);
    /// let fs = FeatureSet::eleven();
    /// let x = fs.compute(&view.vpins()[0], &view.vpins()[1]);
    /// assert_eq!(x.len(), 11);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compute(&self, a: &VPin, b: &VPin) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.features.len());
        self.compute_into(a, b, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::geom::Point;

    fn vpin(x: i64, y: i64, px: i64, py: i64, w: i64, ia: i64, oa: i64) -> VPin {
        VPin {
            loc: Point::new(x, y),
            pin_loc: Point::new(px, py),
            wirelength: w,
            in_area: ia,
            out_area: oa,
            pc: 1.5,
            rc: 2.5,
        }
    }

    #[test]
    fn feature_values_match_definitions() {
        let a = vpin(10, 20, 1, 2, 100, 50, 0);
        let b = vpin(13, 24, 5, 2, 200, 0, 70);
        assert_eq!(PairFeature::DiffVpinX.compute(&a, &b), 3.0);
        assert_eq!(PairFeature::DiffVpinY.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::ManhattanVpin.compute(&a, &b), 7.0);
        assert_eq!(PairFeature::DiffPinX.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::DiffPinY.compute(&a, &b), 0.0);
        assert_eq!(PairFeature::ManhattanPin.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::TotalWirelength.compute(&a, &b), 300.0);
        assert_eq!(PairFeature::TotalArea.compute(&a, &b), 120.0);
        assert_eq!(PairFeature::DiffArea.compute(&a, &b), 70.0 - 50.0);
        assert_eq!(PairFeature::PlacementCongestion.compute(&a, &b), 3.0);
        assert_eq!(PairFeature::RoutingCongestion.compute(&a, &b), 5.0);
    }

    #[test]
    fn features_are_symmetric_in_the_pair() {
        let a = vpin(10, 20, 1, 2, 100, 50, 0);
        let b = vpin(-3, 8, 5, -9, 200, 0, 70);
        for f in ALL_FEATURES {
            assert_eq!(
                f.compute(&a, &b),
                f.compute(&b, &a),
                "{f} must be symmetric"
            );
        }
    }

    #[test]
    fn set_sizes_match_their_names() {
        assert_eq!(FeatureSet::seven().len(), 7);
        assert_eq!(FeatureSet::nine().len(), 9);
        assert_eq!(FeatureSet::eleven().len(), 11);
    }

    #[test]
    fn seven_drops_exactly_the_two_least_important() {
        let seven = FeatureSet::seven();
        assert!(!seven.features().contains(&PairFeature::TotalWirelength));
        assert!(!seven.features().contains(&PairFeature::TotalArea));
        assert!(seven.features().contains(&PairFeature::DiffArea));
        assert!(!seven.features().contains(&PairFeature::PlacementCongestion));
    }

    #[test]
    fn nine_excludes_congestion() {
        let nine = FeatureSet::nine();
        assert!(!nine.features().contains(&PairFeature::PlacementCongestion));
        assert!(!nine.features().contains(&PairFeature::RoutingCongestion));
    }

    #[test]
    fn compute_into_reuses_buffer() {
        let a = vpin(0, 0, 0, 0, 1, 1, 0);
        let b = vpin(1, 1, 1, 1, 1, 0, 1);
        let fs = FeatureSet::seven();
        let mut buf = vec![999.0; 32];
        fs.compute_into(&a, &b, &mut buf);
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            ALL_FEATURES.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 11);
    }
}
