//! The 11 pair features of Section III-B and the feature subsets the
//! paper's model configurations use.

use serde::{Deserialize, Serialize};
use sm_layout::VPin;

/// One of the 11 layout features computed for a v-pin pair.
///
/// The discriminant order is the paper's presentation order; the "first 9
/// features" of the `ML-9`/`Imp-9` configurations are discriminants
/// `0..=8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(usize)]
pub enum PairFeature {
    /// `|px₁ − px₂|` — placement-pin x distance.
    DiffPinX = 0,
    /// `|py₁ − py₂|` — placement-pin y distance.
    DiffPinY = 1,
    /// `|px₁ − px₂| + |py₁ − py₂|` — placement-level proximity.
    ManhattanPin = 2,
    /// `|vx₁ − vx₂|` — v-pin x distance.
    DiffVpinX = 3,
    /// `|vy₁ − vy₂|` — v-pin y distance (zero for matches at the top split
    /// layer when M9 is horizontally routed).
    DiffVpinY = 4,
    /// `|vx₁ − vx₂| + |vy₁ − vy₂|` — v-pin proximity, the single most
    /// discriminative feature in the paper's ranking.
    ManhattanVpin = 5,
    /// `W₁ + W₂` — known below-split wirelength of the would-be net.
    TotalWirelength = 6,
    /// `InArea₁ + InArea₂ + OutArea₁ + OutArea₂` — total connected cell area.
    TotalArea = 7,
    /// `(OutArea₁ + OutArea₂) − (InArea₁ + InArea₂)` — driver-vs-load area.
    DiffArea = 8,
    /// `PC₁ + PC₂` — placement congestion.
    PlacementCongestion = 9,
    /// `RC₁ + RC₂` — routing congestion.
    RoutingCongestion = 10,
}

/// All 11 features in paper order.
pub const ALL_FEATURES: [PairFeature; 11] = [
    PairFeature::DiffPinX,
    PairFeature::DiffPinY,
    PairFeature::ManhattanPin,
    PairFeature::DiffVpinX,
    PairFeature::DiffVpinY,
    PairFeature::ManhattanVpin,
    PairFeature::TotalWirelength,
    PairFeature::TotalArea,
    PairFeature::DiffArea,
    PairFeature::PlacementCongestion,
    PairFeature::RoutingCongestion,
];

impl PairFeature {
    /// Short display name matching the paper's feature names.
    pub fn name(self) -> &'static str {
        match self {
            PairFeature::DiffPinX => "DiffPinX",
            PairFeature::DiffPinY => "DiffPinY",
            PairFeature::ManhattanPin => "ManhattanPin",
            PairFeature::DiffVpinX => "DiffVpinX",
            PairFeature::DiffVpinY => "DiffVpinY",
            PairFeature::ManhattanVpin => "ManhattanVpin",
            PairFeature::TotalWirelength => "TotalWirelength",
            PairFeature::TotalArea => "TotalArea",
            PairFeature::DiffArea => "DiffArea",
            PairFeature::PlacementCongestion => "PlacementCongestion",
            PairFeature::RoutingCongestion => "RoutingCongestion",
        }
    }

    /// Computes this feature's value for the pair `(a, b)`.
    pub fn compute(self, a: &VPin, b: &VPin) -> f64 {
        match self {
            PairFeature::DiffPinX => (a.pin_loc.x - b.pin_loc.x).abs() as f64,
            PairFeature::DiffPinY => (a.pin_loc.y - b.pin_loc.y).abs() as f64,
            PairFeature::ManhattanPin => a.pin_loc.manhattan(b.pin_loc) as f64,
            PairFeature::DiffVpinX => (a.loc.x - b.loc.x).abs() as f64,
            PairFeature::DiffVpinY => (a.loc.y - b.loc.y).abs() as f64,
            PairFeature::ManhattanVpin => a.loc.manhattan(b.loc) as f64,
            PairFeature::TotalWirelength => (a.wirelength + b.wirelength) as f64,
            PairFeature::TotalArea => (a.in_area + a.out_area + b.in_area + b.out_area) as f64,
            PairFeature::DiffArea => ((a.out_area + b.out_area) - (a.in_area + b.in_area)) as f64,
            PairFeature::PlacementCongestion => a.pc + b.pc,
            PairFeature::RoutingCongestion => a.rc + b.rc,
        }
    }
}

impl std::fmt::Display for PairFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered selection of pair features, defining a model configuration's
/// input space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    features: Vec<PairFeature>,
}

impl FeatureSet {
    /// The "9-feature" set of `ML-9`/`Imp-9`: the first nine features
    /// (everything except the two congestion measurements).
    pub fn nine() -> Self {
        Self {
            features: ALL_FEATURES[..9].to_vec(),
        }
    }

    /// The "7-feature" set of `Imp-7`: the nine-feature set minus the two
    /// least important features (`TotalWirelength`, `TotalArea`).
    pub fn seven() -> Self {
        Self {
            features: ALL_FEATURES[..9]
                .iter()
                .copied()
                .filter(|f| !matches!(f, PairFeature::TotalWirelength | PairFeature::TotalArea))
                .collect(),
        }
    }

    /// All 11 features (`Imp-11`).
    pub fn eleven() -> Self {
        Self {
            features: ALL_FEATURES.to_vec(),
        }
    }

    /// A custom selection (useful for ablations).
    pub fn custom(features: Vec<PairFeature>) -> Self {
        Self { features }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The selected features in order.
    pub fn features(&self) -> &[PairFeature] {
        &self.features
    }

    /// Computes the selected features for pair `(a, b)` into `out`
    /// (cleared first). Taking a buffer avoids an allocation in the scoring
    /// hot loop.
    pub fn compute_into(&self, a: &VPin, b: &VPin, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.features.iter().map(|f| f.compute(a, b)));
    }

    /// Convenience allocation-returning variant of [`Self::compute_into`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sm_attack::features::FeatureSet;
    /// use sm_layout::{Suite, SplitLayer};
    ///
    /// let view = Suite::ispd2011_like(0.02)?.benchmarks()[0]
    ///     .split(SplitLayer::new(6)?);
    /// let fs = FeatureSet::eleven();
    /// let x = fs.compute(&view.vpins()[0], &view.vpins()[1]);
    /// assert_eq!(x.len(), 11);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compute(&self, a: &VPin, b: &VPin) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.features.len());
        self.compute_into(a, b, &mut out);
        out
    }
}

/// Structure-of-arrays pair-feature kernel: the batched fast path behind
/// [`FeatureSet::compute_into`].
///
/// Construction hoists every per-v-pin quantity the 11 features read —
/// pin/v-pin coordinates, in/out cell areas, below-split wirelength, and
/// the two congestion terms — out of the [`VPin`] structs into per-view
/// column arrays, once per scoring call, and pre-resolves the feature set
/// into a fixed slot plan (which output column each feature lands in).
/// [`PairKernel::fill_batch`] then walks the batch row by row: each
/// candidate's column entries are loaded exactly once, shared
/// subexpressions feed every feature that reads them (the Manhattan
/// features reuse the Diff deltas, the area features share one load pair),
/// and the row's values store contiguously — no per-pair `match`, no
/// re-gathering a column per feature.
///
/// Every slot performs the exact integer-then-cast arithmetic of
/// [`PairFeature::compute`], so filled rows are bit-for-bit identical to
/// the reference path.
#[derive(Debug, Clone)]
pub struct PairKernel {
    plan: Vec<PairFeature>,
    slots: FeatureSlots,
    /// `(from, to)` column copies patching duplicate plan entries: the slot
    /// map keeps one column per feature, so repeated selections (possible
    /// via [`FeatureSet::custom`]) are duplicated after the fused pass.
    dups: Vec<(usize, usize)>,
    pin_x: Vec<i64>,
    pin_y: Vec<i64>,
    vx: Vec<i64>,
    vy: Vec<i64>,
    wl: Vec<i64>,
    in_area: Vec<i64>,
    out_area: Vec<i64>,
    pc: Vec<f64>,
    rc: Vec<f64>,
    drives: Vec<bool>,
}

/// Output column of each feature in a [`PairKernel`]'s row, or `None` when
/// the feature set does not select it.
#[derive(Debug, Clone, Copy, Default)]
struct FeatureSlots {
    diff_pin_x: Option<usize>,
    diff_pin_y: Option<usize>,
    manhattan_pin: Option<usize>,
    diff_vpin_x: Option<usize>,
    diff_vpin_y: Option<usize>,
    manhattan_vpin: Option<usize>,
    total_wirelength: Option<usize>,
    total_area: Option<usize>,
    diff_area: Option<usize>,
    placement_congestion: Option<usize>,
    routing_congestion: Option<usize>,
}

impl FeatureSlots {
    fn resolve(plan: &[PairFeature]) -> Self {
        let mut s = Self::default();
        for (c, feature) in plan.iter().enumerate() {
            let slot = match feature {
                PairFeature::DiffPinX => &mut s.diff_pin_x,
                PairFeature::DiffPinY => &mut s.diff_pin_y,
                PairFeature::ManhattanPin => &mut s.manhattan_pin,
                PairFeature::DiffVpinX => &mut s.diff_vpin_x,
                PairFeature::DiffVpinY => &mut s.diff_vpin_y,
                PairFeature::ManhattanVpin => &mut s.manhattan_vpin,
                PairFeature::TotalWirelength => &mut s.total_wirelength,
                PairFeature::TotalArea => &mut s.total_area,
                PairFeature::DiffArea => &mut s.diff_area,
                PairFeature::PlacementCongestion => &mut s.placement_congestion,
                PairFeature::RoutingCongestion => &mut s.routing_congestion,
            };
            *slot = Some(c);
        }
        s
    }
}

impl PairKernel {
    /// Extracts the SoA columns of `vpins` and pre-resolves `features`
    /// into the evaluation plan.
    pub fn new(vpins: &[VPin], features: &FeatureSet) -> Self {
        let plan = features.features().to_vec();
        let slots = FeatureSlots::resolve(&plan);
        let resolved = |f: PairFeature| match f {
            PairFeature::DiffPinX => slots.diff_pin_x,
            PairFeature::DiffPinY => slots.diff_pin_y,
            PairFeature::ManhattanPin => slots.manhattan_pin,
            PairFeature::DiffVpinX => slots.diff_vpin_x,
            PairFeature::DiffVpinY => slots.diff_vpin_y,
            PairFeature::ManhattanVpin => slots.manhattan_vpin,
            PairFeature::TotalWirelength => slots.total_wirelength,
            PairFeature::TotalArea => slots.total_area,
            PairFeature::DiffArea => slots.diff_area,
            PairFeature::PlacementCongestion => slots.placement_congestion,
            PairFeature::RoutingCongestion => slots.routing_congestion,
        };
        let dups = plan
            .iter()
            .enumerate()
            .filter_map(|(c, &f)| {
                let from = resolved(f).expect("every planned feature resolves");
                (from != c).then_some((from, c))
            })
            .collect();
        Self {
            plan,
            slots,
            dups,
            pin_x: vpins.iter().map(|v| v.pin_loc.x).collect(),
            pin_y: vpins.iter().map(|v| v.pin_loc.y).collect(),
            vx: vpins.iter().map(|v| v.loc.x).collect(),
            vy: vpins.iter().map(|v| v.loc.y).collect(),
            wl: vpins.iter().map(|v| v.wirelength).collect(),
            in_area: vpins.iter().map(|v| v.in_area).collect(),
            out_area: vpins.iter().map(|v| v.out_area).collect(),
            pc: vpins.iter().map(|v| v.pc).collect(),
            rc: vpins.iter().map(|v| v.rc).collect(),
            drives: vpins.iter().map(VPin::drives).collect(),
        }
    }

    /// Per-v-pin driver flags (`VPin::drives`), one byte per pin — the
    /// legality filter reads this instead of dereferencing whole `VPin`
    /// structs per candidate.
    pub fn drives(&self) -> &[bool] {
        &self.drives
    }

    /// Number of feature columns per row (the batch's row stride).
    pub fn num_features(&self) -> usize {
        self.plan.len()
    }

    /// Number of v-pins the kernel was built over.
    pub fn num_vpins(&self) -> usize {
        self.pin_x.len()
    }

    /// Fills `out` with one row per candidate in `cands`, each pairing
    /// `target` with that candidate, row-major with stride
    /// [`Self::num_features`]. `out` is cleared and resized; reusing one
    /// buffer across batches keeps the scoring loop allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `target` or any candidate is out of range.
    pub fn fill_batch(&self, target: u32, cands: &[u32], out: &mut Vec<f64>) {
        let nf = self.plan.len();
        let t = target as usize;
        out.clear();
        out.resize(cands.len() * nf, 0.0);
        let s = &self.slots;
        let (t_pin_x, t_pin_y) = (self.pin_x[t], self.pin_y[t]);
        let (t_vx, t_vy) = (self.vx[t], self.vy[t]);
        let t_wl = self.wl[t];
        let (t_in, t_out) = (self.in_area[t], self.out_area[t]);
        let t_area = t_in + t_out;
        let (t_pc, t_rc) = (self.pc[t], self.rc[t]);
        for (row, &j) in out.chunks_exact_mut(nf.max(1)).zip(cands) {
            let ju = j as usize;
            // Each delta is computed once and feeds every feature reading
            // it; the integer sums and single final casts are exactly
            // `PairFeature::compute`'s, keeping the rows bit-identical.
            let dpx = (t_pin_x - self.pin_x[ju]).abs();
            let dpy = (t_pin_y - self.pin_y[ju]).abs();
            let dvx = (t_vx - self.vx[ju]).abs();
            let dvy = (t_vy - self.vy[ju]).abs();
            let (j_in, j_out) = (self.in_area[ju], self.out_area[ju]);
            if let Some(c) = s.diff_pin_x {
                row[c] = dpx as f64;
            }
            if let Some(c) = s.diff_pin_y {
                row[c] = dpy as f64;
            }
            if let Some(c) = s.manhattan_pin {
                row[c] = (dpx + dpy) as f64;
            }
            if let Some(c) = s.diff_vpin_x {
                row[c] = dvx as f64;
            }
            if let Some(c) = s.diff_vpin_y {
                row[c] = dvy as f64;
            }
            if let Some(c) = s.manhattan_vpin {
                row[c] = (dvx + dvy) as f64;
            }
            if let Some(c) = s.total_wirelength {
                row[c] = (t_wl + self.wl[ju]) as f64;
            }
            if let Some(c) = s.total_area {
                // Reference order: ((a.in + a.out) + b.in) + b.out.
                row[c] = (t_area + j_in + j_out) as f64;
            }
            if let Some(c) = s.diff_area {
                row[c] = ((t_out + j_out) - (t_in + j_in)) as f64;
            }
            if let Some(c) = s.placement_congestion {
                row[c] = t_pc + self.pc[ju];
            }
            if let Some(c) = s.routing_congestion {
                row[c] = t_rc + self.rc[ju];
            }
            for &(from, to) in &self.dups {
                row[to] = row[from];
            }
        }
    }

    /// Single-pair convenience over [`Self::fill_batch`] (parity tests and
    /// one-off queries).
    pub fn fill_pair(&self, a: u32, b: u32, out: &mut Vec<f64>) {
        self.fill_batch(a, &[b], out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::geom::Point;

    fn vpin(x: i64, y: i64, px: i64, py: i64, w: i64, ia: i64, oa: i64) -> VPin {
        VPin {
            loc: Point::new(x, y),
            pin_loc: Point::new(px, py),
            wirelength: w,
            in_area: ia,
            out_area: oa,
            pc: 1.5,
            rc: 2.5,
        }
    }

    #[test]
    fn feature_values_match_definitions() {
        let a = vpin(10, 20, 1, 2, 100, 50, 0);
        let b = vpin(13, 24, 5, 2, 200, 0, 70);
        assert_eq!(PairFeature::DiffVpinX.compute(&a, &b), 3.0);
        assert_eq!(PairFeature::DiffVpinY.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::ManhattanVpin.compute(&a, &b), 7.0);
        assert_eq!(PairFeature::DiffPinX.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::DiffPinY.compute(&a, &b), 0.0);
        assert_eq!(PairFeature::ManhattanPin.compute(&a, &b), 4.0);
        assert_eq!(PairFeature::TotalWirelength.compute(&a, &b), 300.0);
        assert_eq!(PairFeature::TotalArea.compute(&a, &b), 120.0);
        assert_eq!(PairFeature::DiffArea.compute(&a, &b), 70.0 - 50.0);
        assert_eq!(PairFeature::PlacementCongestion.compute(&a, &b), 3.0);
        assert_eq!(PairFeature::RoutingCongestion.compute(&a, &b), 5.0);
    }

    #[test]
    fn features_are_symmetric_in_the_pair() {
        let a = vpin(10, 20, 1, 2, 100, 50, 0);
        let b = vpin(-3, 8, 5, -9, 200, 0, 70);
        for f in ALL_FEATURES {
            assert_eq!(
                f.compute(&a, &b),
                f.compute(&b, &a),
                "{f} must be symmetric"
            );
        }
    }

    #[test]
    fn set_sizes_match_their_names() {
        assert_eq!(FeatureSet::seven().len(), 7);
        assert_eq!(FeatureSet::nine().len(), 9);
        assert_eq!(FeatureSet::eleven().len(), 11);
    }

    #[test]
    fn seven_drops_exactly_the_two_least_important() {
        let seven = FeatureSet::seven();
        assert!(!seven.features().contains(&PairFeature::TotalWirelength));
        assert!(!seven.features().contains(&PairFeature::TotalArea));
        assert!(seven.features().contains(&PairFeature::DiffArea));
        assert!(!seven.features().contains(&PairFeature::PlacementCongestion));
    }

    #[test]
    fn nine_excludes_congestion() {
        let nine = FeatureSet::nine();
        assert!(!nine.features().contains(&PairFeature::PlacementCongestion));
        assert!(!nine.features().contains(&PairFeature::RoutingCongestion));
    }

    #[test]
    fn compute_into_reuses_buffer() {
        let a = vpin(0, 0, 0, 0, 1, 1, 0);
        let b = vpin(1, 1, 1, 1, 1, 0, 1);
        let fs = FeatureSet::seven();
        let mut buf = vec![999.0; 32];
        fs.compute_into(&a, &b, &mut buf);
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn pair_kernel_matches_compute_into_bitwise() {
        let vpins = vec![
            vpin(10, 20, 1, 2, 100, 50, 0),
            vpin(13, 24, 5, 2, 200, 0, 70),
            vpin(-3, 8, 5, -9, 7, 31, 12),
            vpin(0, 0, 0, 0, 0, 0, 0),
        ];
        for fs in [
            FeatureSet::seven(),
            FeatureSet::nine(),
            FeatureSet::eleven(),
        ] {
            let kernel = PairKernel::new(&vpins, &fs);
            assert_eq!(kernel.num_features(), fs.len());
            assert_eq!(kernel.num_vpins(), 4);
            let cands: Vec<u32> = (0..4).collect();
            let mut batch = Vec::new();
            let mut reference = Vec::new();
            for t in 0..4u32 {
                kernel.fill_batch(t, &cands, &mut batch);
                for (r, &j) in cands.iter().enumerate() {
                    fs.compute_into(&vpins[t as usize], &vpins[j as usize], &mut reference);
                    let row = &batch[r * fs.len()..(r + 1) * fs.len()];
                    for (col, (got, want)) in row.iter().zip(&reference).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "target {t} cand {j} col {col}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fill_pair_is_one_row_of_fill_batch() {
        let vpins = vec![vpin(1, 2, 3, 4, 5, 6, 7), vpin(8, 9, 10, 11, 12, 13, 14)];
        let fs = FeatureSet::eleven();
        let kernel = PairKernel::new(&vpins, &fs);
        let mut row = Vec::new();
        kernel.fill_pair(0, 1, &mut row);
        assert_eq!(row, fs.compute(&vpins[0], &vpins[1]));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            ALL_FEATURES.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 11);
    }
}
