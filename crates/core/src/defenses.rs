//! Defence strategies beyond the paper's y-noise obfuscation.
//!
//! Section III-I demonstrates one obfuscation (Gaussian y-noise,
//! [`crate::obfuscate`]); the related work it cites spans a wider design
//! space — routing perturbation [14], wire lifting [8], obfuscated cells
//! [7] and dummy structures [16]. This module implements representative
//! members of each family as `SplitView -> SplitView` transforms so they
//! can be evaluated against the identical attack pipeline:
//!
//! - [`xy_noise`] — routing perturbation in *both* axes (stronger than the
//!   paper's y-only noise but breaks the top-layer direction convention,
//!   so it is only applicable below the top split layer).
//! - [`decoy_pairs`] — dummy BEOL connections: inserted v-pin pairs that
//!   carry realistic features but belong to no functional net, diluting
//!   every list of candidates.
//! - [`wirelength_scramble`] — dummy below-split detours randomising the
//!   `W` feature (and with it `TotalWirelength`).
//! - [`area_camouflage`] — camouflaged drive strengths: reported cell
//!   areas are quantised to a single size class, starving the
//!   `TotalArea`/`DiffArea` features.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_layout::geom::Point;
use sm_layout::{SplitView, VPin};

/// Applies Gaussian noise with `sd_fraction` of the die size to **both**
/// coordinates of every v-pin (routing perturbation, cf. [14]).
///
/// # Panics
///
/// Panics if the view cannot be reassembled (cannot happen for inputs that
/// were valid views).
pub fn xy_noise(view: &SplitView, sd_fraction: f64, seed: u64) -> SplitView {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sdx = sd_fraction * view.die.width() as f64;
    let sdy = sd_fraction * view.die.height() as f64;
    let vpins: Vec<VPin> = view
        .vpins()
        .iter()
        .map(|vp| {
            let mut out = *vp;
            out.loc = view.die.clamp(Point::new(
                vp.loc.x + (gauss(&mut rng) * sdx) as i64,
                vp.loc.y + (gauss(&mut rng) * sdy) as i64,
            ));
            out
        })
        .collect();
    rebuild(view, vpins)
}

/// Inserts `fraction · n` dummy v-pin *pairs* (dummy BEOL nets). Each decoy
/// pair clones the geometry statistics of a randomly chosen real pair with
/// jittered positions, so no single feature gives it away.
///
/// # Panics
///
/// Panics if `fraction` is negative.
pub fn decoy_pairs(view: &SplitView, fraction: f64, seed: u64) -> SplitView {
    assert!(fraction >= 0.0, "decoy fraction must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = view.num_vpins();
    let extra_pairs = ((fraction * n as f64) / 2.0).round() as usize;
    let mut vpins = view.vpins().to_vec();
    let mut partner: Vec<u32> = (0..n).map(|i| view.true_match(i) as u32).collect();
    for _ in 0..extra_pairs {
        // Clone a template pair and displace it.
        let t = rng.gen_range(0..n);
        let m = view.true_match(t);
        let dx = rng.gen_range(-view.die.width() / 4..=view.die.width() / 4);
        let dy = rng.gen_range(-view.die.height() / 4..=view.die.height() / 4);
        let mut a = view.vpins()[t];
        let mut b = view.vpins()[m];
        // Each endpoint additionally gets independent jitter so the decoy
        // pair is not a recognisable rigid copy of a real pair.
        let wiggle = (view.die.width() / 64).max(1);
        for vp in [&mut a, &mut b] {
            let jx = rng.gen_range(-wiggle..=wiggle);
            let jy = rng.gen_range(-wiggle..=wiggle);
            vp.loc = view
                .die
                .clamp(Point::new(vp.loc.x + dx + jx, vp.loc.y + dy + jy));
            vp.pin_loc = view
                .die
                .clamp(Point::new(vp.pin_loc.x + dx + jx, vp.pin_loc.y + dy + jy));
            vp.wirelength = (vp.wirelength as f64 * rng.gen_range(0.8..1.25)) as i64;
        }
        let ia = vpins.len() as u32;
        vpins.push(a);
        vpins.push(b);
        partner.push(ia + 1);
        partner.push(ia);
    }
    SplitView::from_parts(view.name.clone(), view.split, view.die, vpins, partner)
        .expect("decoy construction preserves the matching invariants")
}

/// Multiplies every v-pin's below-split wirelength by a random factor in
/// `[1, 1 + strength]` (dummy detours inserted by the defender's router).
pub fn wirelength_scramble(view: &SplitView, strength: f64, seed: u64) -> SplitView {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vpins: Vec<VPin> = view
        .vpins()
        .iter()
        .map(|vp| {
            let mut out = *vp;
            let f = 1.0 + rng.gen_range(0.0..=strength.max(0.0));
            out.wirelength = (vp.wirelength as f64 * f) as i64;
            out
        })
        .collect();
    rebuild(view, vpins)
}

/// Replaces every connected-cell area with the median size class
/// (camouflaged drive strengths, cf. [7]): `InArea`/`OutArea` keep their
/// direction information but lose their magnitudes.
pub fn area_camouflage(view: &SplitView) -> SplitView {
    let mut in_areas: Vec<i64> = view
        .vpins()
        .iter()
        .map(|v| v.in_area)
        .filter(|&a| a > 0)
        .collect();
    in_areas.sort_unstable();
    let unit = in_areas.get(in_areas.len() / 2).copied().unwrap_or(1);
    let vpins: Vec<VPin> = view
        .vpins()
        .iter()
        .map(|vp| {
            let mut out = *vp;
            out.in_area = if vp.in_area > 0 { unit } else { 0 };
            out.out_area = if vp.out_area > 0 { unit } else { 0 };
            out
        })
        .collect();
    rebuild(view, vpins)
}

/// Rebuilds a view with modified v-pins and the original matching.
fn rebuild(view: &SplitView, vpins: Vec<VPin>) -> SplitView {
    let partner: Vec<u32> = (0..view.num_vpins())
        .map(|i| view.true_match(i) as u32)
        .collect();
    SplitView::from_parts(view.name.clone(), view.split, view.die, vpins, partner)
        .expect("transforms preserve the matching invariants")
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn view() -> SplitView {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(6).expect("valid"))
            .remove(0)
    }

    #[test]
    fn xy_noise_moves_both_axes_but_keeps_truth() {
        let v = view();
        let noisy = xy_noise(&v, 0.01, 3);
        let moved_x = (0..v.num_vpins())
            .filter(|&i| noisy.vpins()[i].loc.x != v.vpins()[i].loc.x)
            .count();
        let moved_y = (0..v.num_vpins())
            .filter(|&i| noisy.vpins()[i].loc.y != v.vpins()[i].loc.y)
            .count();
        assert!(moved_x > v.num_vpins() / 2);
        assert!(moved_y > v.num_vpins() / 2);
        for i in 0..v.num_vpins() {
            assert_eq!(noisy.true_match(i), v.true_match(i));
        }
    }

    #[test]
    fn decoys_extend_the_view_with_valid_pairs() {
        let v = view();
        let defended = decoy_pairs(&v, 0.5, 4);
        let expected = v.num_vpins() + 2 * ((0.5 * v.num_vpins() as f64) / 2.0).round() as usize;
        assert_eq!(defended.num_vpins(), expected);
        // All pairs, including decoys, satisfy the matching invariant.
        for i in 0..defended.num_vpins() {
            let m = defended.true_match(i);
            assert_eq!(defended.true_match(m), i);
            assert!(defended.is_legal_pair(i, m));
        }
        // Original v-pins keep their original partners.
        for i in 0..v.num_vpins() {
            assert_eq!(defended.true_match(i), v.true_match(i));
        }
    }

    #[test]
    fn zero_fraction_decoys_is_identity_on_size() {
        let v = view();
        assert_eq!(decoy_pairs(&v, 0.0, 1).num_vpins(), v.num_vpins());
    }

    #[test]
    fn wirelength_scramble_only_touches_w() {
        let v = view();
        let s = wirelength_scramble(&v, 2.0, 5);
        let mut changed = 0;
        for i in 0..v.num_vpins() {
            assert_eq!(s.vpins()[i].loc, v.vpins()[i].loc);
            assert!(s.vpins()[i].wirelength >= v.vpins()[i].wirelength);
            if s.vpins()[i].wirelength != v.vpins()[i].wirelength {
                changed += 1;
            }
        }
        assert!(changed > v.num_vpins() / 2);
    }

    #[test]
    fn area_camouflage_flattens_magnitudes_and_keeps_direction() {
        let v = view();
        let c = area_camouflage(&v);
        let distinct: std::collections::HashSet<i64> = c
            .vpins()
            .iter()
            .map(|vp| vp.in_area)
            .filter(|&a| a > 0)
            .collect();
        assert_eq!(distinct.len(), 1, "all load areas collapse to one class");
        for i in 0..v.num_vpins() {
            assert_eq!(c.vpins()[i].drives(), v.vpins()[i].drives());
        }
    }

    #[test]
    fn defended_views_still_support_the_attack() {
        use crate::attack::{AttackConfig, ScoreOptions, TrainedAttack};
        let suite = Suite::ispd2011_like(0.02).expect("valid scale");
        let views = suite.split_all(SplitLayer::new(6).expect("valid"));
        let defended: Vec<SplitView> = views.iter().map(|v| decoy_pairs(v, 0.3, 9)).collect();
        let train: Vec<&SplitView> = defended[1..].iter().collect();
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let scored = model.score(&defended[0], &ScoreOptions::default());
        assert_eq!(scored.slots.len(), defended[0].num_vpins());
    }
}
