//! LoC refinement with domain knowledge — the paper's closing remark made
//! concrete: "the attackers may opt to obtain a larger LoC ... and apply
//! other domain knowledge about the design ... to further refine the LoC".
//!
//! The refinement implemented here is *timing plausibility*: a candidate
//! pair implies a reconstructed net of total length
//! `W₁ + W₂ + d(v₁, v₂)` (below-split fragments plus the missing BEOL
//! connection). Nets much longer than anything the training designs
//! contain would not have met timing, so such candidates can be pruned
//! from the LoC without consulting the classifier.

use sm_layout::SplitView;

use crate::attack::{Cand, ScoredView, VpinScore};

/// A reconstructed-wirelength budget learned from training designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirelengthBudget {
    /// Maximum plausible reconstructed net length in DBU.
    pub max_length: i64,
}

impl WirelengthBudget {
    /// Learns the budget as the `quantile` of the reconstructed lengths of
    /// the *true* pairs in the training views, times a safety margin of
    /// 1.25 (process corners).
    ///
    /// Returns a budget of `i64::MAX` (no pruning) when the views contain
    /// no matches.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `(0, 1]`.
    pub fn learn(views: &[&SplitView], quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "quantile must be in (0, 1]"
        );
        let mut lengths: Vec<i64> = Vec::new();
        for v in views {
            for i in 0..v.num_vpins() {
                let m = v.true_match(i);
                if i < m {
                    lengths.push(reconstructed_length(v, i, m));
                }
            }
        }
        if lengths.is_empty() {
            return Self {
                max_length: i64::MAX,
            };
        }
        lengths.sort_unstable();
        let k = ((lengths.len() as f64 * quantile).ceil() as usize).clamp(1, lengths.len());
        Self {
            max_length: lengths[k - 1] + lengths[k - 1] / 4,
        }
    }

    /// Whether a candidate pair of `view` fits the budget.
    pub fn admits(&self, view: &SplitView, i: usize, j: usize) -> bool {
        reconstructed_length(view, i, j) <= self.max_length
    }
}

/// Total wirelength of the net a candidate pair would reconstruct.
pub fn reconstructed_length(view: &SplitView, i: usize, j: usize) -> i64 {
    view.vpins()[i].wirelength + view.vpins()[j].wirelength + view.distance(i, j)
}

/// Prunes every retained candidate that busts the wirelength budget,
/// returning a refined scoring (per-v-pin top lists shrink; the histogram
/// is rebuilt from the surviving candidates, so LoC sizes reported from
/// the refined view count only plausible candidates).
pub fn timing_prune(scored: &ScoredView, view: &SplitView, budget: WirelengthBudget) -> ScoredView {
    let mut hist = vec![0u64; crate::attack::HIST_BINS];
    let mut pairs = 0u64;
    let slots: Vec<VpinScore> = scored
        .slots
        .iter()
        .map(|slot| {
            let i = slot.vpin as usize;
            let top: Vec<Cand> = slot
                .top
                .iter()
                .filter(|c| budget.admits(view, i, c.index as usize))
                .copied()
                .collect();
            for c in &top {
                hist[crate::attack::hist_bin(c.p)] += 1;
                pairs += 1;
            }
            // The true-match probability survives only if the true pair
            // itself fits the budget (otherwise refinement made it
            // unreachable).
            let m = view.true_match(i);
            let true_prob = slot.true_prob.filter(|_| budget.admits(view, i, m));
            VpinScore {
                vpin: slot.vpin,
                true_prob,
                top,
            }
        })
        .collect();
    ScoredView {
        slots,
        hist,
        num_view_vpins: scored.num_view_vpins,
        pairs_scored: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{AttackConfig, ScoreOptions, TrainedAttack};
    use crate::proximity::proximity_attack;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn budget_admits_nearly_all_true_pairs() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let budget = WirelengthBudget::learn(&refs, 0.99);
        let mut admitted = 0usize;
        let mut total = 0usize;
        for v in &vs {
            for i in 0..v.num_vpins() {
                let m = v.true_match(i);
                if i < m {
                    total += 1;
                    if budget.admits(v, i, m) {
                        admitted += 1;
                    }
                }
            }
        }
        assert!(admitted as f64 / total as f64 > 0.97, "{admitted}/{total}");
    }

    #[test]
    fn pruning_shrinks_tops_and_never_adds() {
        let vs = views(6);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let scored = model.score(&vs[0], &ScoreOptions::default());
        let budget = WirelengthBudget::learn(&train, 0.95);
        let refined = timing_prune(&scored, &vs[0], budget);
        for (a, b) in scored.slots.iter().zip(&refined.slots) {
            assert!(b.top.len() <= a.top.len());
            for c in &b.top {
                assert!(budget.admits(&vs[0], b.vpin as usize, c.index as usize));
            }
        }
        assert!(refined.pairs_scored <= scored.pairs_scored);
    }

    #[test]
    fn degenerate_budget_disables_pruning() {
        let vs = views(8);
        let budget = WirelengthBudget::learn(&[], 0.9);
        assert_eq!(budget.max_length, i64::MAX);
        assert!(budget.admits(&vs[0], 0, 1));
    }

    #[test]
    fn refined_pa_does_not_collapse() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None).expect("train");
        let scored = model.score(&vs[0], &ScoreOptions::default());
        let budget = WirelengthBudget::learn(&train, 0.95);
        let refined = timing_prune(&scored, &vs[0], budget);
        let before = proximity_attack(&scored, &vs[0], 0.02, 1);
        let after = proximity_attack(&refined, &vs[0], 0.02, 1);
        assert_eq!(before.total, after.total);
        // Pruning removes implausibly long candidates; PA should not get
        // dramatically worse (and typically improves).
        assert!(after.rate() + 0.15 >= before.rate());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn invalid_quantile_is_rejected() {
        let vs = views(8);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let _ = WirelengthBudget::learn(&refs, 1.5);
    }
}
