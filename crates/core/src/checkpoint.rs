//! Versioned, checksummed attack checkpoints and the resumable scoring
//! driver.
//!
//! A checkpoint is a two-line UTF-8 file with the same framing
//! discipline as the model artifact store:
//!
//! ```text
//! {"magic":"SPLITMFG-CHECKPOINT","version":1,"checksum":"fnv1a64:<16 hex>"}
//! {"fingerprint":{...},"state":{...}}
//! ```
//!
//! Line 1 is the header (magic, format version, FNV-1a-64 checksum of the
//! payload line's bytes); line 2 the payload: a [`Fingerprint`] of the
//! run the state belongs to, plus the [`RunState`] — either the partial
//! scoring of one view (completed per-v-pin top-K slots, the partial
//! candidate histogram, the pair count and the target cursor) or a
//! cross-validation cursor (completed folds plus the partial
//! [`LocCurveBuilder`] accumulators).
//!
//! ## Resume is bit-identical
//!
//! [`score_resumable`] cuts the target list into deterministic shards
//! ([`sm_ml::parallel::shard_ranges`]) and scores each with
//! `ScoreOptions { targets: Some(shard) }`. Per-target work depends only
//! on the model, the view and `top_k` — and `top_k` is computed from the
//! *view's* v-pin count, never from the target list — so concatenating
//! per-shard slots in target order, adding the per-shard `u64` histograms
//! and summing the pair counts reproduces a whole-view scoring call bit
//! for bit. This is exactly the in-order-merge discipline
//! `sm_ml::parallel::par_chunks` already applies *within* one call,
//! lifted to a boundary that can be persisted: the state at a shard
//! boundary is a pure function of which shards completed, so a process
//! killed anywhere and resumed from its last checkpoint converges to the
//! same bytes as an uninterrupted run (proven by the `chaos_attack`
//! suite and the parity tests in `tests/checkpoint_resume.rs`).
//!
//! Because the fingerprint covers only result-affecting inputs, a resume
//! may legally change `--threads`, `--kernel`, `--enumeration` and
//! `--checkpoint-every` — all proven bit-identical knobs — while a
//! different config, model, view or top-K shape is a typed
//! [`CheckpointError::Mismatch`] refusal.
//!
//! ## Version-bump policy
//!
//! Any change to the serialized shape of [`Fingerprint`], [`RunState`],
//! [`VpinScore`]/[`Cand`], the [`LocCurveBuilder`] accumulators, or the
//! histogram convention requires bumping [`CHECKPOINT_VERSION`]; readers
//! reject other versions with a typed error. Checkpoints are short-lived
//! (they are deleted when a run completes), so no cross-version
//! migration is provided — an old checkpoint after an upgrade is a
//! refusal, and the run restarts from scratch.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sm_layout::SplitView;
use sm_ml::parallel::shard_ranges;

use crate::attack::{ScoreOptions, ScoredView, TrainedAttack, VpinScore, HIST_BINS};
use crate::durable::{atomic_write, fnv1a64};
use crate::error::AttackError;
use crate::loc::LocCurveBuilder;

/// First token of every checkpoint header.
pub const CHECKPOINT_MAGIC: &str = "SPLITMFG-CHECKPOINT";

/// Current checkpoint format version (bump policy: see the module docs).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Default targets per shard between checkpoint writes.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 2048;

/// Typed checkpoint failure. Loading a corrupt, stale or mismatched
/// checkpoint is always one of these — never a panic and never a partial
/// resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the checkpoint.
    Io(std::io::Error),
    /// The file is not a two-line header+payload document, or the header
    /// line is not valid JSON of the expected shape.
    Malformed(String),
    /// The header's magic string is wrong — not a checkpoint.
    BadMagic {
        /// What the header contained instead of [`CHECKPOINT_MAGIC`].
        found: String,
    },
    /// The checkpoint was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// The single version this build supports.
        supported: u32,
    },
    /// The payload bytes do not hash to the header's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: String,
        /// Checksum of the payload actually present.
        found: String,
    },
    /// The payload passed the checksum but does not decode, or decodes
    /// into an internally inconsistent state (cursor past the end, wrong
    /// histogram arity, ...).
    Payload(String),
    /// The checkpoint belongs to a different run: resuming would splice
    /// state from one computation into another.
    Mismatch {
        /// Which fingerprint field disagreed.
        field: &'static str,
        /// The running configuration's value.
        expected: String,
        /// The checkpoint's value.
        found: String,
    },
    /// A checkpoint file already exists and `resume` was not requested;
    /// starting fresh would clobber resumable state.
    Exists(PathBuf),
    /// The requested operation cannot be checkpointed.
    Unsupported(&'static str),
    /// The underlying attack computation failed (training a fold, ...).
    Attack(AttackError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint (magic '{found}')")
            }
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} unsupported (this build reads {supported})"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: header says {expected}, payload hashes to {found}"
            ),
            CheckpointError::Payload(m) => {
                write!(f, "checkpoint payload does not decode: {m}")
            }
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint belongs to a different run: {field} is {found}, \
                 this run has {expected}"
            ),
            CheckpointError::Exists(path) => write!(
                f,
                "checkpoint {} already exists; resume it or delete it to start fresh",
                path.display()
            ),
            CheckpointError::Unsupported(m) => write!(f, "cannot checkpoint: {m}"),
            CheckpointError::Attack(e) => write!(f, "attack: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<AttackError> for CheckpointError {
    fn from(e: AttackError) -> Self {
        CheckpointError::Attack(e)
    }
}

/// Identity of one view as far as resume safety is concerned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewId {
    /// Design name.
    pub name: String,
    /// Number of v-pins (also pins `top_k`, which derives from it).
    pub num_vpins: usize,
}

impl ViewId {
    fn of(view: &SplitView) -> Self {
        Self {
            name: view.name.clone(),
            num_vpins: view.num_vpins(),
        }
    }
}

/// What a checkpoint's state is a function of: everything that affects
/// the *bytes* of the final result. Deliberately excluded — and therefore
/// free to change across a resume — are parallelism, kernel, enumeration
/// and the shard size, all proven bit-identical knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Run kind: `"attack"`, `"pa"`, or `"xval"` — resuming an attack
    /// checkpoint into a pa run is a refusal even with equal configs.
    pub kind: String,
    /// FNV-1a-64 of the serialized [`crate::attack::AttackConfig`].
    pub config_hash: String,
    /// FNV-1a-64 of the serialized [`crate::attack::TrainedParts`], or
    /// `"-"` when no single model spans the run (cross-validation trains
    /// one per fold).
    pub model_hash: String,
    /// The views the run scores, in order.
    pub views: Vec<ViewId>,
    /// [`ScoreOptions::top_fraction`] — changes the retained top-K.
    pub top_fraction: f64,
    /// [`ScoreOptions::top_floor`] — changes the retained top-K.
    pub top_floor: usize,
}

impl Fingerprint {
    /// Fingerprint of a single-view scoring run (`attack` / `pa`).
    #[must_use]
    pub fn for_scoring(
        kind: &str,
        model: &TrainedAttack,
        view: &SplitView,
        options: &ScoreOptions,
    ) -> Self {
        let config =
            serde_json::to_string(model.config()).expect("config serialization is infallible");
        let parts =
            serde_json::to_string(&model.to_parts()).expect("model serialization is infallible");
        Self {
            kind: kind.to_owned(),
            config_hash: fnv1a64(config.as_bytes()),
            model_hash: fnv1a64(parts.as_bytes()),
            views: vec![ViewId::of(view)],
            top_fraction: options.top_fraction,
            top_floor: options.top_floor,
        }
    }

    /// Fingerprint of a cross-validation run over `views` (the model is
    /// per-fold, so only the config is pinned).
    #[must_use]
    pub fn for_xval(
        config: &crate::attack::AttackConfig,
        views: &[SplitView],
        options: &ScoreOptions,
    ) -> Self {
        let config = serde_json::to_string(config).expect("config serialization is infallible");
        Self {
            kind: "xval".to_owned(),
            config_hash: fnv1a64(config.as_bytes()),
            model_hash: "-".to_owned(),
            views: views.iter().map(ViewId::of).collect(),
            top_fraction: options.top_fraction,
            top_floor: options.top_floor,
        }
    }

    /// Verifies a loaded checkpoint's fingerprint against this run's,
    /// reporting the first disagreeing field.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] naming the field.
    pub fn verify(&self, found: &Fingerprint) -> Result<(), CheckpointError> {
        let fail = |field, expected: String, found: String| {
            Err(CheckpointError::Mismatch {
                field,
                expected,
                found,
            })
        };
        if self.kind != found.kind {
            return fail("run kind", self.kind.clone(), found.kind.clone());
        }
        if self.config_hash != found.config_hash {
            return fail(
                "config",
                self.config_hash.clone(),
                found.config_hash.clone(),
            );
        }
        if self.model_hash != found.model_hash {
            return fail("model", self.model_hash.clone(), found.model_hash.clone());
        }
        if self.views != found.views {
            let show = |v: &[ViewId]| {
                v.iter()
                    .map(|v| format!("{}({} v-pins)", v.name, v.num_vpins))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            return fail("views", show(&self.views), show(&found.views));
        }
        if self.top_fraction.to_bits() != found.top_fraction.to_bits() {
            return fail(
                "top_fraction",
                self.top_fraction.to_string(),
                found.top_fraction.to_string(),
            );
        }
        if self.top_floor != found.top_floor {
            return fail(
                "top_floor",
                self.top_floor.to_string(),
                found.top_floor.to_string(),
            );
        }
        Ok(())
    }
}

/// Partial scoring of one view: the first `targets_done` targets are
/// complete, everything else has not started (shards are sequential, so
/// there is no in-between).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoringState {
    /// Targets completed (== `slots.len()`; the resume cursor).
    pub targets_done: usize,
    /// Per-target records of the completed targets, in target order.
    pub slots: Vec<VpinScore>,
    /// Partial candidate histogram (contributions of completed targets).
    pub hist: Vec<u64>,
    /// Candidate pairs evaluated so far.
    pub pairs_scored: u64,
    /// Total v-pins in the view (denominator of LoC fractions).
    pub num_view_vpins: usize,
}

/// Cross-validation cursor: the first `folds_done` folds are complete
/// and folded into the curve accumulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XvalState {
    /// Folds completed (the resume cursor).
    pub folds_done: usize,
    /// Test-design names of the completed folds, in fold order.
    pub fold_names: Vec<String>,
    /// Partial LoC-curve accumulators over the completed folds.
    pub curve: LocCurveBuilder,
}

/// The resumable state a checkpoint carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunState {
    /// Partial scoring of a single view.
    Scoring(ScoringState),
    /// Partial cross-validation sweep.
    Xval(XvalState),
}

/// The checksummed payload line of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Which run this state belongs to.
    pub fingerprint: Fingerprint,
    /// The resumable state.
    pub state: RunState,
}

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    checksum: String,
}

impl Checkpoint {
    /// Serializes to the two-line on-disk format.
    #[must_use]
    pub fn encode(&self) -> String {
        let payload = serde_json::to_string(self).expect("checkpoint serialization is infallible");
        let header = Header {
            magic: CHECKPOINT_MAGIC.to_owned(),
            version: CHECKPOINT_VERSION,
            checksum: fnv1a64(payload.as_bytes()),
        };
        let header = serde_json::to_string(&header).expect("header serialization is infallible");
        format!("{header}\n{payload}\n")
    }

    /// Parses and fully validates the two-line format.
    ///
    /// # Errors
    ///
    /// The first failing check as a typed [`CheckpointError`]: malformed
    /// structure, bad magic, unsupported version, checksum mismatch, or
    /// an undecodable/inconsistent payload.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Malformed("empty file".into()))?;
        let payload_line = lines
            .next()
            .ok_or_else(|| CheckpointError::Malformed("missing payload line".into()))?;
        if lines.next().is_some_and(|l| !l.trim().is_empty()) {
            return Err(CheckpointError::Malformed(
                "unexpected content after payload line".into(),
            ));
        }
        let header: Header = serde_json::from_str(header_line)
            .map_err(|e| CheckpointError::Malformed(format!("header does not parse: {e}")))?;
        if header.magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic {
                found: header.magic,
            });
        }
        if header.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: header.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let found = fnv1a64(payload_line.as_bytes());
        if header.checksum != found {
            return Err(CheckpointError::ChecksumMismatch {
                expected: header.checksum,
                found,
            });
        }
        let checkpoint: Checkpoint = serde_json::from_str(payload_line)
            .map_err(|e| CheckpointError::Payload(e.to_string()))?;
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Internal consistency of the decoded state (checksummed corruption
    /// is already excluded; this catches a payload written by a buggy or
    /// foreign producer).
    fn validate(&self) -> Result<(), CheckpointError> {
        match &self.state {
            RunState::Scoring(s) => {
                if s.slots.len() != s.targets_done {
                    return Err(CheckpointError::Payload(format!(
                        "cursor says {} targets done but {} slots are recorded",
                        s.targets_done,
                        s.slots.len()
                    )));
                }
                if s.hist.len() != HIST_BINS {
                    return Err(CheckpointError::Payload(format!(
                        "histogram has {} bins, this build uses {HIST_BINS}",
                        s.hist.len()
                    )));
                }
                let total: usize = self.fingerprint.views.first().map_or(0, |v| v.num_vpins);
                if s.targets_done > total {
                    return Err(CheckpointError::Payload(format!(
                        "cursor {} is past the view's {total} v-pins",
                        s.targets_done
                    )));
                }
            }
            RunState::Xval(x) => {
                if x.fold_names.len() != x.folds_done {
                    return Err(CheckpointError::Payload(format!(
                        "cursor says {} folds done but {} fold names are recorded",
                        x.folds_done,
                        x.fold_names.len()
                    )));
                }
                if x.folds_done > self.fingerprint.views.len() {
                    return Err(CheckpointError::Payload(format!(
                        "cursor {} is past the run's {} folds",
                        x.folds_done,
                        self.fingerprint.views.len()
                    )));
                }
                if x.folds_done == 0 || x.curve.num_views() != x.folds_done {
                    return Err(CheckpointError::Payload(format!(
                        "curve accumulators cover {} views, cursor says {}",
                        x.curve.num_views(),
                        x.folds_done
                    )));
                }
            }
        }
        Ok(())
    }

    /// Writes the checkpoint crash-durably (tmp + fsync + rename +
    /// parent-dir fsync, fail-point site family `checkpoint`).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        atomic_write(path, self.encode().as_bytes(), "checkpoint").map_err(CheckpointError::Io)
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure (including a missing
    /// file), otherwise the typed validation errors of
    /// [`Checkpoint::decode`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)?;
        Self::decode(&text)
    }
}

/// Where and how often a resumable driver checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path (created/replaced atomically, deleted on
    /// completion).
    pub path: PathBuf,
    /// Targets per shard between checkpoint writes (folds always
    /// checkpoint once per fold). Clamped to at least 1. May differ
    /// between the interrupted and the resuming process.
    pub every: usize,
}

/// Outcome of a resumable scoring run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreOutcome {
    /// The run finished; the checkpoint file has been removed.
    Complete(ScoredView),
    /// The run stopped at a shard boundary after `should_stop` turned
    /// true; the final checkpoint is on disk.
    Interrupted {
        /// Targets completed and persisted.
        targets_done: usize,
        /// Total targets of the run.
        num_targets: usize,
    },
}

/// How a resumable driver should start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// Start from scratch; an existing checkpoint file is a typed
    /// [`CheckpointError::Exists`] refusal (never silently clobbered).
    Fresh,
    /// Resume from the checkpoint file if present (fingerprint-verified),
    /// start fresh if absent.
    IfPresent,
}

/// Scores `view` like [`TrainedAttack::score`], checkpointing after every
/// [`CheckpointSpec::every`] targets and stopping cleanly at the next
/// shard boundary once `should_stop` returns true.
///
/// The result is bit-identical to an uninterrupted
/// `model.score(view, options)` call, for any interleaving of kills and
/// resumes and any `every` (see the module docs for the argument and
/// `tests/checkpoint_resume.rs` for the proof).
///
/// # Errors
///
/// Typed [`CheckpointError`]s: i/o, a corrupt checkpoint (refused, never
/// partially applied), a fingerprint mismatch, or
/// [`CheckpointError::Exists`] when `resume` is [`Resume::Fresh`] but a
/// checkpoint file is present. `options.targets` must be `None` — the
/// driver owns the target cursor — otherwise
/// [`CheckpointError::Unsupported`].
pub fn score_resumable(
    model: &TrainedAttack,
    view: &SplitView,
    options: &ScoreOptions,
    spec: &CheckpointSpec,
    resume: Resume,
    should_stop: &dyn Fn() -> bool,
) -> Result<ScoreOutcome, CheckpointError> {
    score_resumable_as("attack", model, view, options, spec, resume, should_stop)
}

/// [`score_resumable`] with an explicit run kind (`"attack"` / `"pa"`),
/// so a proximity-attack checkpoint can never resume a plain attack run.
#[allow(clippy::too_many_arguments)]
pub fn score_resumable_as(
    kind: &str,
    model: &TrainedAttack,
    view: &SplitView,
    options: &ScoreOptions,
    spec: &CheckpointSpec,
    resume: Resume,
    should_stop: &dyn Fn() -> bool,
) -> Result<ScoreOutcome, CheckpointError> {
    if options.targets.is_some() {
        return Err(CheckpointError::Unsupported(
            "explicit score targets (the resumable driver owns the target cursor)",
        ));
    }
    let fingerprint = Fingerprint::for_scoring(kind, model, view, options);
    let n = view.num_vpins();
    let mut state = match (resume, spec.path.exists()) {
        (Resume::Fresh, true) => return Err(CheckpointError::Exists(spec.path.clone())),
        (_, false) => ScoringState {
            targets_done: 0,
            slots: Vec::new(),
            hist: vec![0u64; HIST_BINS],
            pairs_scored: 0,
            num_view_vpins: n,
        },
        (Resume::IfPresent, true) => {
            let checkpoint = Checkpoint::load(&spec.path)?;
            fingerprint.verify(&checkpoint.fingerprint)?;
            match checkpoint.state {
                RunState::Scoring(s) => s,
                RunState::Xval(_) => {
                    return Err(CheckpointError::Mismatch {
                        field: "state kind",
                        expected: "scoring".into(),
                        found: "xval".into(),
                    })
                }
            }
        }
    };
    for range in shard_ranges(n, spec.every) {
        if range.end <= state.targets_done {
            continue; // shard fully completed before the interruption
        }
        // A resume with a different `every` may land mid-shard; realign
        // the shard start to the persisted cursor.
        let start = state.targets_done;
        let targets: Vec<u32> = (start as u32..range.end as u32).collect();
        if !targets.is_empty() {
            let part = model.score(
                view,
                &ScoreOptions {
                    targets: Some(targets),
                    ..options.clone()
                },
            );
            state.targets_done = range.end;
            state.slots.extend(part.slots);
            for (acc, add) in state.hist.iter_mut().zip(&part.hist) {
                *acc += add;
            }
            state.pairs_scored += part.pairs_scored;
        }
        Checkpoint {
            fingerprint: fingerprint.clone(),
            state: RunState::Scoring(state.clone()),
        }
        .save(&spec.path)?;
        if state.targets_done < n && should_stop() {
            return Ok(ScoreOutcome::Interrupted {
                targets_done: state.targets_done,
                num_targets: n,
            });
        }
    }
    match std::fs::remove_file(&spec.path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(CheckpointError::Io(e)),
    }
    Ok(ScoreOutcome::Complete(ScoredView {
        slots: state.slots,
        hist: state.hist,
        num_view_vpins: state.num_view_vpins,
        pairs_scored: state.pairs_scored,
    }))
}
