//! Graceful-interruption flag: a process-wide "please stop at the next
//! safe boundary" bit, settable from a Unix signal handler.
//!
//! The resumable drivers in [`crate::checkpoint`] and [`crate::xval`]
//! poll [`requested`] at shard/fold boundaries; the CLI installs
//! SIGTERM/SIGINT handlers with [`install_handlers`] so an operator's
//! `kill <pid>` (or a scheduler's preemption notice) drains the in-flight
//! shard, writes a final checkpoint, and exits cleanly instead of losing
//! the run.
//!
//! The handler only performs an atomic store — the one thing that is
//! async-signal-safe — and everything else happens on the normal control
//! path. Registration uses the raw libc `signal` symbol (std already
//! links libc; no external crate needed).

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// SIGINT signal number (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGTERM signal number (polite kill).
pub const SIGTERM: i32 = 15;

/// Has an interrupt been requested (by a signal or [`trigger`])?
#[must_use]
pub fn requested() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Requests an interrupt from ordinary code — what the signal handler
/// does, callable directly by tests and in-process drivers.
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; a real process exits after draining).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

extern "C" fn on_signal(_sig: i32) {
    // Only an atomic store: async-signal-safe by construction.
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs [`trigger`]-equivalent handlers for SIGTERM and SIGINT.
/// Idempotent; later installations simply re-register the same handler.
pub fn install_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
