//! Error types for the attack framework.

use sm_layout::LayoutError;
use sm_ml::TrainError;

/// Errors produced while training or running the attack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AttackError {
    /// No training views were supplied.
    NoTrainingData,
    /// Sample generation found no usable v-pin pairs (e.g. everything was
    /// filtered by the neighborhood or the DiffVpinY limit).
    NoSamples,
    /// The underlying model failed to train.
    Train(TrainError),
    /// A layout-level failure.
    Layout(LayoutError),
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::NoTrainingData => write!(f, "no training views supplied"),
            AttackError::NoSamples => {
                write!(f, "sample generation produced no usable v-pin pairs")
            }
            AttackError::Train(e) => write!(f, "training failed: {e}"),
            AttackError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Train(e) => Some(e),
            AttackError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TrainError> for AttackError {
    fn from(e: TrainError) -> Self {
        AttackError::Train(e)
    }
}

impl From<LayoutError> for AttackError {
    fn from(e: LayoutError) -> Self {
        AttackError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_roundtrip() {
        let e: AttackError = TrainError::EmptyDataset.into();
        assert!(e.to_string().contains("training failed"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&AttackError::NoTrainingData).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
