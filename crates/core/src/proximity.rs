//! Proximity attack with validation-based PA-LoC sizing (Section III-H).
//!
//! The proximity attack picks, for each target v-pin, the *nearest* v-pin
//! inside its PA-LoC — the top-probability candidates, sized per target as
//! a fraction of the benchmark's v-pin count. The right fraction is a
//! bias/variance trade-off (too small misses the match, too large admits a
//! nearer non-match), so it is chosen by validating candidate fractions on
//! held-out v-pins of the training designs.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sm_layout::SplitView;
use sm_ml::parallel::par_map;
use sm_ml::Parallelism;

use crate::attack::{AttackConfig, ScoreOptions, ScoredView, TrainOptions, TrainedAttack};
use crate::error::AttackError;

/// The PA-LoC fractions validated by default.
pub const DEFAULT_PA_FRACTIONS: [f64; 6] = [0.001, 0.002, 0.005, 0.01, 0.02, 0.05];

/// Fraction of training v-pins used for model fitting during validation
/// (the rest validate), per the paper's 80/20 protocol.
pub const PA_VALIDATION_TRAIN_FRACTION: f64 = 0.8;

/// Outcome of a proximity attack over a set of target v-pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaOutcome {
    /// Targets whose selected candidate was the true match.
    pub successes: usize,
    /// Targets attacked.
    pub total: usize,
}

impl PaOutcome {
    /// Success rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.successes as f64 / self.total as f64
        }
    }
}

impl std::fmt::Display for PaOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} ({:.2}%)",
            self.successes,
            self.total,
            100.0 * self.rate()
        )
    }
}

/// Runs the proximity attack on a scored view with PA-LoC size
/// `fraction × (total v-pins)` per target (Eq. (4)): the nearest candidate
/// in the PA-LoC wins, ties broken by higher probability, then randomly.
///
/// # Examples
///
/// ```
/// use sm_attack::attack::{AttackConfig, ScoreOptions, TrainedAttack};
/// use sm_attack::proximity::proximity_attack;
/// use sm_layout::{SplitLayer, Suite};
///
/// let suite = Suite::ispd2011_like(0.02)?;
/// let views = suite.split_all(SplitLayer::new(8)?);
/// let train: Vec<&_> = views[1..].iter().collect();
/// let model = TrainedAttack::train(&AttackConfig::imp9(), &train, None)?;
/// let scored = model.score(&views[0], &ScoreOptions::default());
/// let outcome = proximity_attack(&scored, &views[0], 0.02, 7);
/// assert_eq!(outcome.total, views[0].num_vpins());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn proximity_attack(
    scored: &ScoredView,
    view: &SplitView,
    fraction: f64,
    seed: u64,
) -> PaOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = ((fraction * scored.num_view_vpins as f64).round() as usize).max(1);
    let mut successes = 0usize;
    for slot in &scored.slots {
        let pa_loc = &slot.top[..k.min(slot.top.len())];
        if pa_loc.is_empty() {
            continue;
        }
        // Nearest candidate; ties by probability; then random.
        let best_d = pa_loc.iter().map(|c| c.dist).min().expect("non-empty");
        let best_p = pa_loc
            .iter()
            .filter(|c| c.dist == best_d)
            .map(|c| c.p)
            .fold(f64::NEG_INFINITY, f64::max);
        let finalists: Vec<u32> = pa_loc
            .iter()
            .filter(|c| c.dist == best_d && c.p == best_p)
            .map(|c| c.index)
            .collect();
        let choice = finalists[rng.gen_range(0..finalists.len())];
        if choice as usize == view.true_match(slot.vpin as usize) {
            successes += 1;
        }
    }
    PaOutcome {
        successes,
        total: scored.slots.len(),
    }
}

/// Proximity attack with the PA-LoC defined by a fixed probability
/// threshold instead of a per-target size — the conference version's [18]
/// protocol (`t = 0.5`), which the validated-fraction PA improves on.
///
/// The PA-LoC is capped by the candidates retained during scoring
/// ([`crate::attack::ScoreOptions::top_fraction`]), which keeps exactly the
/// highest-probability pairs and therefore never removes a member of a
/// threshold-defined LoC below that cap.
pub fn pa_at_threshold(scored: &ScoredView, view: &SplitView, t: f64, seed: u64) -> PaOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut successes = 0usize;
    for slot in &scored.slots {
        let end = slot.top.partition_point(|c| c.p >= t);
        let pa_loc = &slot.top[..end];
        if pa_loc.is_empty() {
            continue;
        }
        let best_d = pa_loc.iter().map(|c| c.dist).min().expect("non-empty");
        let best_p = pa_loc
            .iter()
            .filter(|c| c.dist == best_d)
            .map(|c| c.p)
            .fold(f64::NEG_INFINITY, f64::max);
        let finalists: Vec<u32> = pa_loc
            .iter()
            .filter(|c| c.dist == best_d && c.p == best_p)
            .map(|c| c.index)
            .collect();
        let choice = finalists[rng.gen_range(0..finalists.len())];
        if choice as usize == view.true_match(slot.vpin as usize) {
            successes += 1;
        }
    }
    PaOutcome {
        successes,
        total: scored.slots.len(),
    }
}

/// Result of the PA-LoC fraction validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaValidation {
    /// The fraction with the best validation success rate.
    pub best_fraction: f64,
    /// Mean validation success rate per candidate fraction, in input order.
    pub rates: Vec<(f64, f64)>,
}

/// Validates PA-LoC fractions on the training designs (Section III-H):
/// 80 % of each training design's v-pins feed the model, the remaining
/// 20 % are attacked at each candidate fraction, and the fraction with the
/// best mean success rate wins.
///
/// # Errors
///
/// Propagates training failures; returns [`AttackError::NoTrainingData`]
/// for an empty view list.
///
/// # Panics
///
/// Panics if `fractions` is empty.
pub fn validate_pa_fraction(
    config: &AttackConfig,
    training_views: &[&SplitView],
    fractions: &[f64],
    seed: u64,
) -> Result<PaValidation, AttackError> {
    validate_pa_fraction_opt(
        config,
        training_views,
        fractions,
        seed,
        TrainOptions::default(),
    )
}

/// [`validate_pa_fraction`] with explicit [`TrainOptions`] for the
/// validation model's training pass. The options never change the
/// validation outcome, only training wall-clock.
///
/// # Errors
///
/// Same contract as [`validate_pa_fraction`].
///
/// # Panics
///
/// Panics if `fractions` is empty.
pub fn validate_pa_fraction_opt(
    config: &AttackConfig,
    training_views: &[&SplitView],
    fractions: &[f64],
    seed: u64,
    train_options: TrainOptions,
) -> Result<PaValidation, AttackError> {
    assert!(
        !fractions.is_empty(),
        "need at least one candidate fraction"
    );
    if training_views.is_empty() {
        return Err(AttackError::NoTrainingData);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let masks: Vec<Vec<bool>> = training_views
        .iter()
        .map(|v| {
            (0..v.num_vpins())
                .map(|_| rng.gen_bool(PA_VALIDATION_TRAIN_FRACTION))
                .collect()
        })
        .collect();
    let model = TrainedAttack::train_opt(config, training_views, Some(&masks), train_options)?;

    // Each training view is scored and attacked independently, so the
    // per-view evaluation parallelises per `config.parallelism`; the inner
    // scoring stays sequential to avoid nesting thread pools. Per-view
    // rate vectors are accumulated in view order, keeping the floating
    // sums bit-identical to a sequential run.
    let max_fraction = fractions.iter().copied().fold(0.0, f64::max);
    let per_view: Vec<Vec<f64>> = par_map(config.parallelism, training_views.len(), |vi| {
        let view = training_views[vi];
        let targets: Vec<u32> = masks[vi]
            .iter()
            .enumerate()
            .filter(|(_, selected)| !**selected)
            .map(|(i, _)| i as u32)
            .collect();
        if targets.is_empty() {
            return vec![0.0; fractions.len()];
        }
        let scored = model.score(
            view,
            &ScoreOptions {
                top_fraction: (max_fraction * 1.05).max(0.01),
                targets: Some(targets),
                parallelism: Parallelism::Sequential,
                // Inherits the default compiled kernel, spatial
                // enumeration and top floor; PA validation sees the same
                // bit-identical scores either way.
                ..ScoreOptions::default()
            },
        );
        fractions
            .iter()
            .enumerate()
            .map(|(fi, &f)| proximity_attack(&scored, view, f, seed ^ fi as u64).rate())
            .collect()
    });
    let mut sum_rates = vec![0.0f64; fractions.len()];
    for rates in &per_view {
        for (fi, r) in rates.iter().enumerate() {
            sum_rates[fi] += r;
        }
    }
    let n = training_views.len() as f64;
    let rates: Vec<(f64, f64)> = fractions
        .iter()
        .zip(&sum_rates)
        .map(|(&f, &s)| (f, s / n))
        .collect();
    let best_fraction = rates
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(f, _)| f)
        .expect("fractions non-empty");
    Ok(PaValidation {
        best_fraction,
        rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{Cand, VpinScore, HIST_BINS};
    use sm_layout::{SplitLayer, Suite};

    fn synthetic_scored(top: Vec<Vec<Cand>>, n_view: usize) -> ScoredView {
        let slots = top
            .into_iter()
            .enumerate()
            .map(|(i, t)| VpinScore {
                vpin: i as u32,
                true_prob: None,
                top: t,
            })
            .collect();
        ScoredView {
            slots,
            hist: vec![0; HIST_BINS],
            num_view_vpins: n_view,
            pairs_scored: 0,
        }
    }

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn pa_picks_nearest_in_pa_loc() {
        // v-pin 0's true match is v-pin 1 at distance 10; a non-match sits
        // at distance 5 but with lower probability, *outside* the top-1
        // PA-LoC.
        let suite = views(8);
        let view = &suite[0];
        let truth = view.true_match(0) as u32;
        let top = vec![vec![
            Cand {
                p: 0.99,
                index: truth,
                dist: 10,
            },
            Cand {
                p: 0.40,
                index: (truth + 1) % view.num_vpins() as u32,
                dist: 5,
            },
        ]];
        let scored = synthetic_scored(top, view.num_vpins());
        // Fraction so small the PA-LoC has exactly one entry -> success.
        let win = proximity_attack(&scored, view, 1e-9, 0);
        assert_eq!(win.successes, 1);
        // Large fraction admits the nearer non-match -> failure.
        let lose = proximity_attack(&scored, view, 1.0, 0);
        assert_eq!(lose.successes, 0);
        assert_eq!(lose.total, 1);
    }

    #[test]
    fn pa_tie_breaks_by_probability() {
        let suite = views(8);
        let view = &suite[0];
        let truth = view.true_match(0) as u32;
        let other = (truth + 1) % view.num_vpins() as u32;
        let top = vec![vec![
            Cand {
                p: 0.9,
                index: truth,
                dist: 7,
            },
            Cand {
                p: 0.5,
                index: other,
                dist: 7,
            },
        ]];
        let scored = synthetic_scored(top, view.num_vpins());
        let out = proximity_attack(&scored, view, 1.0, 0);
        assert_eq!(out.successes, 1, "equal distance resolves to higher p");
    }

    #[test]
    fn pa_handles_empty_pa_loc() {
        let suite = views(8);
        let view = &suite[0];
        let scored = synthetic_scored(vec![vec![]], view.num_vpins());
        let out = proximity_attack(&scored, view, 0.01, 0);
        assert_eq!(out.successes, 0);
        assert_eq!(out.total, 1);
    }

    #[test]
    fn outcome_rate_and_display() {
        let o = PaOutcome {
            successes: 1,
            total: 4,
        };
        assert!((o.rate() - 0.25).abs() < 1e-12);
        assert!(o.to_string().contains("25.00%"));
        assert_eq!(
            PaOutcome {
                successes: 0,
                total: 0
            }
            .rate(),
            0.0
        );
    }

    #[test]
    fn validation_returns_a_fraction_from_the_grid() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[..4].iter().collect();
        let grid = [0.01, 0.05];
        let val =
            validate_pa_fraction(&AttackConfig::imp9(), &train, &grid, 3).expect("validation runs");
        assert!(grid.contains(&val.best_fraction));
        assert_eq!(val.rates.len(), 2);
        for (_, r) in &val.rates {
            assert!((0.0..=1.0).contains(r));
        }
    }

    #[test]
    fn validation_requires_training_views() {
        let err = validate_pa_fraction(&AttackConfig::imp9(), &[], &[0.01], 0);
        assert!(matches!(err, Err(AttackError::NoTrainingData)));
    }

    #[test]
    fn end_to_end_pa_beats_zero_on_split8() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let cfg = AttackConfig::imp9().with_y_limit();
        let model = TrainedAttack::train(&cfg, &train, None).expect("train");
        let scored = model.score(&vs[0], &ScoreOptions::default());
        let out = proximity_attack(&scored, &vs[0], 0.02, 1);
        assert!(out.total > 0);
        assert!(
            out.rate() > 0.0,
            "split-8 Y-limited PA should land some hits"
        );
    }
}
