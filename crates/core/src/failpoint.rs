//! Named fail points for crash testing, activated by the `SM_FAILPOINTS`
//! environment variable.
//!
//! A fail point is a named call to [`hit`] placed at an interesting
//! instant of a durable operation (between writing a staging file and
//! renaming it, say). In production the call is a single relaxed atomic
//! load of a lazily-initialised empty table — effectively free. Under
//! test, `SM_FAILPOINTS` arms selected sites with an action:
//!
//! ```text
//! SM_FAILPOINTS=site=action[@count][,site=action[@count]...]
//! ```
//!
//! | action  | effect when the site fires                                  |
//! |---------|-------------------------------------------------------------|
//! | `panic` | `panic!` (unwinds; a thread dies, the process may survive)  |
//! | `abort` | `std::process::abort()` (SIGABRT, no destructors)           |
//! | `exit`  | `std::process::exit(86)` (no destructors past this frame)   |
//! | `kill`  | `SIGKILL` to self — the kernel stops the process mid-write, |
//! |         | the closest a test gets to a power cut                      |
//! | `term`  | `SIGTERM` to self, then *continue* — exercises the graceful |
//! |         | drain path deterministically instead of racing a timer      |
//!
//! `@count` arms the site to fire on exactly its `count`-th hit
//! (1-based, default 1) and never again — so `checkpoint.after_tmp=kill@3`
//! kills the process during the third checkpoint write, leaving the
//! second checkpoint published on disk.
//!
//! The well-known sites are the four stages of
//! [`crate::durable::atomic_write`] (`<prefix>.before_tmp`,
//! `<prefix>.after_tmp`, `<prefix>.after_rename`,
//! `<prefix>.after_dir_sync` for the `checkpoint`, `artifact` and
//! `registry_index` prefixes) plus `registry.after_artifact`, the window
//! between a registry publish's two atomic writes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Panic,
    Abort,
    Exit,
    Kill,
    Term,
}

#[derive(Debug)]
struct Site {
    name: String,
    action: Action,
    /// 1-based hit index the site fires on.
    fire_on: u64,
    hits: AtomicU64,
}

static SITES: OnceLock<Vec<Site>> = OnceLock::new();

/// Parses one `site=action[@count]` clause.
fn parse_clause(clause: &str) -> Result<Site, String> {
    let (name, rhs) = clause
        .split_once('=')
        .ok_or_else(|| format!("'{clause}' is not of the form site=action"))?;
    let (action, count) = match rhs.split_once('@') {
        Some((a, n)) => {
            let n: u64 = n
                .parse()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("'{clause}' has a bad @count (need an integer >= 1)"))?;
            (a, n)
        }
        None => (rhs, 1),
    };
    let action = match action {
        "panic" => Action::Panic,
        "abort" => Action::Abort,
        "exit" => Action::Exit,
        "kill" => Action::Kill,
        "term" => Action::Term,
        other => {
            return Err(format!(
                "'{clause}' has unknown action '{other}' \
                 (known: panic, abort, exit, kill, term)"
            ))
        }
    };
    if name.is_empty() {
        return Err(format!("'{clause}' has an empty site name"));
    }
    Ok(Site {
        name: name.to_owned(),
        action,
        fire_on: count,
        hits: AtomicU64::new(0),
    })
}

fn parse_spec(spec: &str) -> Result<Vec<Site>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(parse_clause)
        .collect()
}

fn sites() -> &'static [Site] {
    SITES.get_or_init(|| match std::env::var("SM_FAILPOINTS") {
        Err(_) => Vec::new(),
        // Fail loud: a typo'd spec silently disarming a chaos test would
        // make the test pass for the wrong reason.
        Ok(spec) => {
            parse_spec(&spec).unwrap_or_else(|e| panic!("SM_FAILPOINTS does not parse: {e}"))
        }
    })
}

/// Sends `sig` to the current process without a libc crate: std already
/// links libc, so the raw symbols are available.
fn raise(sig: i32) {
    extern "C" {
        fn getpid() -> i32;
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(getpid(), sig);
    }
}

/// Marks a named fail point. A no-op unless `SM_FAILPOINTS` arms `site`,
/// in which case the configured action runs on the configured hit.
pub fn hit(site: &str) {
    let sites = sites();
    if sites.is_empty() {
        return;
    }
    for s in sites {
        if s.name != site {
            continue;
        }
        let n = s.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if n != s.fire_on {
            continue;
        }
        eprintln!("failpoint {site} firing (hit {n}): {:?}", s.action);
        match s.action {
            Action::Panic => panic!("failpoint {site} triggered"),
            Action::Abort => std::process::abort(),
            Action::Exit => std::process::exit(86),
            Action::Kill => {
                raise(9); // SIGKILL
                          // The kernel delivers SIGKILL before this returns, but
                          // don't fall through if something is deeply wrong.
                std::process::abort();
            }
            Action::Term => raise(15), // SIGTERM, then continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clauses_parse_into_sites() {
        let sites =
            parse_spec("checkpoint.after_tmp=kill,artifact.before_tmp=panic@3").expect("parses");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].name, "checkpoint.after_tmp");
        assert_eq!(sites[0].action, Action::Kill);
        assert_eq!(sites[0].fire_on, 1);
        assert_eq!(sites[1].name, "artifact.before_tmp");
        assert_eq!(sites[1].action, Action::Panic);
        assert_eq!(sites[1].fire_on, 3);
    }

    #[test]
    fn empty_clauses_and_whitespace_are_tolerated() {
        let sites = parse_spec(" a=abort , ,b=exit@2,").expect("parses");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].action, Action::Abort);
        assert_eq!(sites[1].action, Action::Exit);
        assert!(parse_spec("").expect("parses").is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_offending_clause() {
        for bad in [
            "no-equals",
            "site=",
            "=panic",
            "site=explode",
            "site=kill@0",
            "site=kill@soon",
        ] {
            let err = parse_spec(bad).expect_err("must reject");
            assert!(err.contains(bad.split(',').next().unwrap_or(bad)), "{err}");
        }
    }

    #[test]
    fn unarmed_hits_are_no_ops() {
        // SM_FAILPOINTS is unset in the test environment; any site name
        // must pass through untouched.
        hit("checkpoint.before_tmp");
        hit("not.a.site");
    }
}
