//! The prior-work comparator [5] (Magaña et al., TVLSI 2017): a
//! linear-regression search-neighborhood proximity attack.
//!
//! Reimplemented from its description in the paper (Sections II-B, III-D):
//! a per-v-pin search radius is predicted with simple linear regression on
//! congestion/wirelength features, *all* v-pins inside the window form the
//! LoC, and the proximity attack picks the nearest. Two deliberate
//! infidelities to good methodology are preserved because the paper calls
//! them out as weaknesses of [5]: the regression is fit across **all**
//! designs (no train/test separation) and the model is linear.

use serde::{Deserialize, Serialize};
use sm_layout::SplitView;

use crate::neighborhood::VpinIndex;

/// Features of the radius regression: `[1, PC, RC, W]`.
const BASE_DIM: usize = 4;

/// The fitted prior-work model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorWorkModel {
    beta: [f64; BASE_DIM],
}

/// Aggregate result of evaluating the prior-work attack on one view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Mean LoC size (all v-pins inside the predicted window).
    pub mean_loc: f64,
    /// Fraction of v-pins whose true match fell inside the window.
    pub accuracy: f64,
    /// Mean LoC divided by the view's v-pin count.
    pub loc_fraction: f64,
    /// Proximity-attack success rate (nearest v-pin in window).
    pub pa_rate: f64,
}

impl PriorWorkModel {
    /// Fits the radius regression on every view — including, as in [5],
    /// the design that will later be attacked.
    ///
    /// # Panics
    ///
    /// Panics if the views contain no v-pins.
    pub fn fit(views: &[&SplitView]) -> Self {
        // Least squares: predict the true-match distance from [1, PC, RC, W].
        let mut xtx = [[0.0f64; BASE_DIM]; BASE_DIM];
        let mut xty = [0.0f64; BASE_DIM];
        let mut rows = 0usize;
        for v in views {
            for i in 0..v.num_vpins() {
                let m = v.true_match(i);
                let x = Self::regressors(v, i);
                let y = v.distance(i, m) as f64;
                for a in 0..BASE_DIM {
                    for b in 0..BASE_DIM {
                        xtx[a][b] += x[a] * x[b];
                    }
                    xty[a] += x[a] * y;
                }
                rows += 1;
            }
        }
        assert!(rows > 0, "cannot fit the prior-work model without v-pins");
        // Ridge epsilon for numerical safety.
        for (a, row) in xtx.iter_mut().enumerate() {
            row[a] += 1e-9;
        }
        let beta = solve4(xtx, xty);
        Self { beta }
    }

    fn regressors(view: &SplitView, i: usize) -> [f64; BASE_DIM] {
        let vp = &view.vpins()[i];
        [1.0, vp.pc, vp.rc, vp.wirelength as f64]
    }

    /// Predicted search radius for v-pin `i` of `view`, scaled by `margin`.
    pub fn radius(&self, view: &SplitView, i: usize, margin: f64) -> i64 {
        let x = Self::regressors(view, i);
        let pred: f64 = self.beta.iter().zip(&x).map(|(b, v)| b * v).sum();
        ((pred * margin).max(1.0)) as i64
    }

    /// Evaluates LoC statistics and the proximity attack at the given
    /// window `margin` (1.0 = the regression's own prediction; sweeping it
    /// traces the prior work's trade-off curve in Fig. 9).
    pub fn evaluate(&self, view: &SplitView, margin: f64) -> BaselineResult {
        let n = view.num_vpins();
        if n == 0 {
            return BaselineResult {
                mean_loc: 0.0,
                accuracy: 0.0,
                loc_fraction: 0.0,
                pa_rate: 0.0,
            };
        }
        let index = VpinIndex::new(view, 10_000);
        let mut cands: Vec<u32> = Vec::new();
        let mut total_loc = 0u64;
        let mut hits = 0usize;
        let mut pa_hits = 0usize;
        for i in 0..n {
            let r = self.radius(view, i, margin);
            index.within_radius(view, view.vpins()[i].loc, r, i as u32, &mut cands);
            cands.retain(|&j| view.is_legal_pair(i, j as usize));
            total_loc += cands.len() as u64;
            let m = view.true_match(i);
            if cands.iter().any(|&j| j as usize == m) {
                hits += 1;
            }
            // PA: nearest candidate in the window (first by distance,
            // deterministic tie-break by index).
            if let Some(&nearest) = cands
                .iter()
                .min_by_key(|&&j| (view.distance(i, j as usize), j))
            {
                if nearest as usize == m {
                    pa_hits += 1;
                }
            }
        }
        let mean_loc = total_loc as f64 / n as f64;
        BaselineResult {
            mean_loc,
            accuracy: hits as f64 / n as f64,
            loc_fraction: mean_loc / n as f64,
            pa_rate: pa_hits as f64 / n as f64,
        }
    }

    /// Sweeps window margins, producing the prior work's LoC/accuracy
    /// trade-off points (sorted by growing LoC).
    pub fn sweep(&self, view: &SplitView, margins: &[f64]) -> Vec<BaselineResult> {
        let mut out: Vec<BaselineResult> =
            margins.iter().map(|&m| self.evaluate(view, m)).collect();
        out.sort_by(|a, b| a.mean_loc.total_cmp(&b.mean_loc));
        out
    }

    /// The fitted coefficients `[intercept, PC, RC, W]`.
    pub fn coefficients(&self) -> [f64; BASE_DIM] {
        self.beta
    }
}

/// Solves the 4×4 system `A·x = b` by Gaussian elimination with partial
/// pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> [f64; 4] {
    for col in 0..4 {
        let pivot = (col..4)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue; // singular direction; leave coefficient at 0
        }
        for row in 0..4 {
            if row == col {
                continue;
            }
            let f = a[row][col] / diag;
            let pivot_row = a[col];
            for (av, pv) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *av -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 4];
    for i in 0..4 {
        x[i] = if a[i][i].abs() < 1e-30 {
            0.0
        } else {
            b[i] / a[i][i]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn solve4_recovers_known_solution() {
        let a = [
            [2.0, 0.0, 0.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [1.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 5.0],
        ];
        let x_true = [1.0, -2.0, 3.0, 0.5];
        let b = [
            2.0 * x_true[0],
            3.0 * x_true[1],
            x_true[0] + x_true[2],
            5.0 * x_true[3],
        ];
        let x = solve4(a, b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn fitted_radius_is_positive() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let model = PriorWorkModel::fit(&refs);
        for (i, _) in vs[0].vpins().iter().enumerate().take(50) {
            assert!(model.radius(&vs[0], i, 1.0) >= 1);
        }
    }

    #[test]
    fn larger_margins_grow_loc_and_accuracy() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let model = PriorWorkModel::fit(&refs);
        let small = model.evaluate(&vs[0], 0.5);
        let large = model.evaluate(&vs[0], 3.0);
        assert!(large.mean_loc > small.mean_loc);
        assert!(large.accuracy >= small.accuracy);
    }

    #[test]
    fn accuracy_is_meaningful_at_unit_margin() {
        let vs = views(6);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let model = PriorWorkModel::fit(&refs);
        let r = model.evaluate(&vs[0], 1.5);
        // The regression predicts the *mean* match distance, so a modest
        // margin should catch a sizeable share of matches.
        assert!(r.accuracy > 0.2, "baseline accuracy {:.3}", r.accuracy);
        assert!(r.mean_loc > 0.0);
        assert!((0.0..=1.0).contains(&r.pa_rate));
    }

    #[test]
    fn sweep_is_sorted_by_loc() {
        let vs = views(8);
        let refs: Vec<&SplitView> = vs.iter().collect();
        let model = PriorWorkModel::fit(&refs);
        let pts = model.sweep(&vs[0], &[2.0, 0.5, 1.0, 4.0]);
        assert!(pts.windows(2).all(|w| w[0].mean_loc <= w[1].mean_loc));
    }
}
