//! Two-level pruning (paper Section III-E).
//!
//! The Level-1 model's list of candidates contains, besides the true match,
//! exactly the non-matches Level 1 *cannot* distinguish — which makes them
//! ideal "high-quality" negatives. Two-level pruning therefore tests the
//! Level-1 model on its own training designs, samples one negative per
//! v-pin from the resulting LoC, trains a Level-2 model on those hard
//! negatives (plus all positives), and at attack time applies Level 2 only
//! inside the Level-1 LoC of the target design. Cross-validation stays
//! intact: both levels see only the N−1 training designs.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sm_layout::SplitView;
use sm_ml::{Bagging, Dataset, RandomTreeLearner, RepTreeLearner};

use crate::attack::{
    score_with, AttackConfig, BaseClassifier, CandidateSource, ScoreOptions, ScoredView,
    TrainedAttack,
};
use crate::error::AttackError;
use crate::samples::SampleOptions;

/// Level-1 probability threshold defining the LoC that Level 2 refines.
pub const LEVEL1_THRESHOLD: f64 = 0.5;

/// The outcome of a two-level attack on one test view.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelOutcome {
    /// Level-1 scoring of the test view (equivalent to the plain attack).
    pub level1: ScoredView,
    /// Level-2 scoring, restricted to each v-pin's Level-1 LoC.
    pub level2: ScoredView,
}

/// Trains both levels and attacks `test_view`.
///
/// # Errors
///
/// Propagates training errors from either level; returns
/// [`AttackError::NoSamples`] if Level-1 LoCs yield no usable negatives.
///
/// # Examples
///
/// ```
/// use sm_attack::attack::{AttackConfig, ScoreOptions};
/// use sm_attack::two_level::two_level_attack;
/// use sm_layout::{SplitLayer, Suite};
///
/// let suite = Suite::ispd2011_like(0.02)?;
/// let views = suite.split_all(SplitLayer::new(8)?);
/// let train: Vec<&_> = views[1..].iter().collect();
/// let out = two_level_attack(
///     &AttackConfig::imp11(),
///     &train,
///     &views[0],
///     &ScoreOptions::default(),
/// )?;
/// assert_eq!(out.level1.slots.len(), out.level2.slots.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn two_level_attack(
    config: &AttackConfig,
    training_views: &[&SplitView],
    test_view: &SplitView,
    score_options: &ScoreOptions,
) -> Result<TwoLevelOutcome, AttackError> {
    let level1 = TrainedAttack::train(config, training_views, None)?;

    // --- Build the Level-2 training set from Level-1 LoCs ----------------
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x2e7e1);
    let sample_opts = SampleOptions {
        radius: level1.radius(),
        limit_diff_vpin_y: config.limit_diff_vpin_y,
    };
    let mut l2_data = Dataset::new(config.features.len());
    let mut buf = Vec::with_capacity(config.features.len());
    for view in training_views {
        let scored = level1.score(view, score_options);
        for slot in &scored.slots {
            let i = slot.vpin as usize;
            let m = view.true_match(i);
            if !sample_opts.eligible(view, i, m) {
                continue;
            }
            // All positives, as in Level 1.
            config
                .features
                .compute_into(&view.vpins()[i], &view.vpins()[m], &mut buf);
            l2_data.push(&buf, true).expect("arity matches");
            // One hard negative from the Level-1 LoC.
            let loc: Vec<u32> = slot
                .top
                .iter()
                .filter(|c| c.p >= LEVEL1_THRESHOLD && c.index as usize != m)
                .map(|c| c.index)
                .collect();
            if let Some(&j) = pick(&loc, &mut rng) {
                config
                    .features
                    .compute_into(&view.vpins()[i], &view.vpins()[j as usize], &mut buf);
                l2_data.push(&buf, false).expect("arity matches");
            }
        }
    }
    if l2_data.is_empty() || l2_data.num_positive() == l2_data.len() {
        return Err(AttackError::NoSamples);
    }
    let l2_model = match config.base {
        BaseClassifier::RepTreeBagging { n_trees } => Bagging::fit(
            &l2_data,
            &RepTreeLearner::default(),
            n_trees,
            config.seed ^ 0xb,
        )?,
        BaseClassifier::RandomTreeBagging { n_trees } => Bagging::fit(
            &l2_data,
            &RandomTreeLearner::default(),
            n_trees,
            config.seed ^ 0xb,
        )?,
    };
    let mut l2_config = config.clone();
    l2_config.name = format!("{}-L2", config.name);
    let level2_attack = TrainedAttack::from_parts(crate::attack::TrainedParts {
        config: l2_config,
        model: l2_model,
        radius: level1.radius(),
        num_training_samples: l2_data.len(),
    });

    // --- Attack the target: Level 1, then Level 2 inside its LoC ---------
    let scored1 = level1.score(test_view, score_options);
    let lists: Vec<Vec<u32>> = scored1
        .slots
        .iter()
        .map(|s| {
            s.top
                .iter()
                .filter(|c| c.p >= LEVEL1_THRESHOLD)
                .map(|c| c.index)
                .collect()
        })
        .collect();
    let targets: Vec<u32> = scored1.slots.iter().map(|s| s.vpin).collect();
    // The Level-2 pass scores explicit per-target lists, so the
    // `enumeration` option is moot here: `CandidateSource::Explicit`
    // bypasses candidate enumeration entirely.
    let opts2 = ScoreOptions {
        targets: Some(targets),
        ..score_options.clone()
    };
    let scored2 = score_with(
        &level2_attack,
        test_view,
        &opts2,
        &CandidateSource::Explicit(&lists),
    );

    Ok(TwoLevelOutcome {
        level1: scored1,
        level2: scored2,
    })
}

fn pick<'a, T, R: Rng>(xs: &'a [T], rng: &mut R) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_layout::{SplitLayer, Suite};

    fn views(split: u8) -> Vec<SplitView> {
        Suite::ispd2011_like(0.02)
            .expect("valid scale")
            .split_all(SplitLayer::new(split).expect("valid"))
    }

    #[test]
    fn level2_loc_is_a_subset_of_level1() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let out = two_level_attack(
            &AttackConfig::imp11(),
            &train,
            &vs[0],
            &ScoreOptions::default(),
        )
        .expect("two-level runs");
        for (s1, s2) in out.level1.slots.iter().zip(&out.level2.slots) {
            assert_eq!(s1.vpin, s2.vpin);
            let l1: std::collections::HashSet<u32> = s1
                .top
                .iter()
                .filter(|c| c.p >= LEVEL1_THRESHOLD)
                .map(|c| c.index)
                .collect();
            for c in &s2.top {
                assert!(l1.contains(&c.index), "L2 candidate outside L1 LoC");
            }
        }
    }

    #[test]
    fn level2_prunes_mean_loc_at_default_threshold() {
        let vs = views(8);
        let train: Vec<&SplitView> = vs[1..].iter().collect();
        let out = two_level_attack(
            &AttackConfig::imp11(),
            &train,
            &vs[0],
            &ScoreOptions::default(),
        )
        .expect("two-level runs");
        let l1 = out.level1.mean_loc_at(0.5);
        let l2 = out.level2.mean_loc_at(0.5);
        assert!(
            l2 <= l1 + 1e-9,
            "Level 2 must not grow the candidate list ({l1:.2} -> {l2:.2})"
        );
    }

    #[test]
    fn two_level_fails_cleanly_without_training_views() {
        let vs = views(8);
        let err = two_level_attack(
            &AttackConfig::imp11(),
            &[],
            &vs[0],
            &ScoreOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn pick_is_none_on_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(pick::<u32, _>(&[], &mut rng).is_none());
        assert_eq!(pick(&[42], &mut rng), Some(&42));
    }
}
